//! Streaming Dominating Set — the problem that motivated the
//! KK-algorithm [Khanna–Konrad, ITCS'22] and the special case `m = n` of
//! edge-arrival Set Cover: set `v` is the closed neighborhood `N[v]`, and
//! each graph edge `{u, v}` contributes the stream tuples `(N[u], v)` and
//! `(N[v], u)`.
//!
//! We build a planted-hub graph (a few hubs dominate everything), stream
//! its edges adversarially and randomly, and compare the KK-algorithm
//! against offline greedy and the patch-everything baseline.
//!
//! Run with: `cargo run -p setcover-bench --release --example dominating_set`

use setcover_algos::{greedy_cover, DominatingSetStream, FirstSetSolver, KkSolver};
use setcover_core::solver::run_streaming;
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_gen::dominating::planted_hubs;

fn main() {
    let n = 2000;
    let hubs = 10;
    let noise_edges = 6000;
    let w = planted_hubs(n, hubs, noise_edges, 99);
    let inst = &w.instance;
    println!("{}: N = {} stream tuples", w.label, inst.num_edges());
    println!("planted dominating set size: {hubs}\n");

    let greedy = greedy_cover(inst);
    println!(
        "offline greedy:        {:>5} sets (reference)",
        greedy.size()
    );

    for order in [
        StreamOrder::Uniform(5),
        StreamOrder::Interleaved,
        StreamOrder::GreedyTrap,
    ] {
        let kk = run_streaming(KkSolver::new(inst.m(), inst.n(), 3), stream_of(inst, order));
        kk.cover.verify(inst).expect("valid dominating set");
        println!(
            "kk on {:<16} {:>5} sets, peak space {} words (m = {})",
            format!("{}:", order.name()),
            kk.cover.size(),
            kk.space.peak_words,
            inst.m()
        );
    }

    let fs = run_streaming(
        FirstSetSolver::new(inst.m(), inst.n()),
        stream_of(inst, StreamOrder::Uniform(5)),
    );
    fs.cover.verify(inst).expect("valid");
    println!("first-set baseline:    {:>5} sets", fs.cover.size());

    // The graph-native facade: feed raw graph edges, no set-cover
    // translation in user code. (A dense-ish graph: KK's level rule
    // needs neighborhoods of size ≳ √n to engage.)
    let n_graph = 500usize;
    let mut graph: Vec<(u32, u32)> = (1..n_graph as u32).map(|v| (v / 2, v)).collect();
    let mut x = 1u64;
    for _ in 0..10_000 {
        // Tiny LCG for reproducible chords without pulling in rand here.
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((x >> 33) as u32) % n_graph as u32;
        let b = ((x >> 13) as u32) % n_graph as u32;
        if a != b {
            graph.push((a.min(b), a.max(b)));
        }
    }
    let mut ds = DominatingSetStream::kk(n_graph, 13);
    for &(u, v) in &graph {
        ds.observe_edge(u, v);
    }
    let d = ds.finalize();
    d.verify(n_graph, &graph).expect("valid dominating set");
    println!(
        "\nfacade on a {}-vertex graph ({} edges): {} dominators (vertex 0 dominated by {})",
        n_graph,
        graph.len(),
        d.size(),
        d.dominator_of(0)
    );

    println!(
        "\nEvery streaming output is a verified dominating set; KK stays within its\n\
         Õ(√n)-factor of the planted optimum on every arrival order."
    );
}
