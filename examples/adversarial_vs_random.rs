//! The headline of the paper in one program: with only Õ(m/√n) memory,
//! Algorithm 1 solves edge-arrival Set Cover well **when the stream is in
//! random order** (Theorem 3) — a space budget that Theorem 2 proves is
//! impossible for adversarial orders. The KK-algorithm needs the full
//! Õ(m) budget but is order-robust (Theorem 1).
//!
//! Run with: `cargo run -p setcover-bench --release --example adversarial_vs_random`

use setcover_algos::{KkSolver, RandomOrderConfig, RandomOrderSolver};
use setcover_core::math::isqrt;
use setcover_core::solver::run_streaming;
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_gen::planted::{planted, PlantedConfig};

fn main() {
    let (n, m, opt) = (1024, 65_536, 16);
    let p = planted(&PlantedConfig::exact(n, m, opt), 11);
    let inst = &p.workload.instance;
    println!(
        "planted instance: n = {n}, m = {m}, OPT = {opt}, N = {} edges",
        inst.num_edges()
    );
    println!("√n = {}, m/√n = {}\n", isqrt(n), m / isqrt(n));

    println!(
        "{:<24} {:>10} {:>16} {:>8}",
        "run", "cover", "space (words)", "valid"
    );
    for (label, order) in [
        ("random order", StreamOrder::Uniform(3)),
        ("adversarial interleave", StreamOrder::Interleaved),
    ] {
        // Algorithm 1 at the Õ(m/√n) budget.
        let ro = run_streaming(
            RandomOrderSolver::new(
                inst.m(),
                inst.n(),
                inst.num_edges(),
                RandomOrderConfig::practical(),
                5,
            ),
            stream_of(inst, order),
        );
        let valid = ro.cover.verify(inst).is_ok();
        println!(
            "{:<24} {:>10} {:>16} {:>8}",
            format!("alg-1 / {label}"),
            ro.cover.size(),
            ro.space.algorithmic_peak_words(),
            valid
        );

        // KK at the Õ(m) budget.
        let kk = run_streaming(KkSolver::new(inst.m(), inst.n(), 5), stream_of(inst, order));
        let valid = kk.cover.verify(inst).is_ok();
        println!(
            "{:<24} {:>10} {:>16} {:>8}",
            format!("kk    / {label}"),
            kk.cover.size(),
            kk.space.algorithmic_peak_words(),
            valid
        );
    }

    println!(
        "\nAlgorithm 1 runs in a fraction of KK's memory. Its quality guarantee only\n\
         holds on random orders — Theorem 2 shows *no* algorithm can match it\n\
         adversarially at that budget. Run the `separation` binary for the full sweep."
    );
}
