//! Blog-watch coverage: pick a small reading list of blogs that together
//! cover every topic — the application Saha and Getoor used to motivate
//! streaming coverage problems (paper §1.3, [22]).
//!
//! Each blog (set) covers some topics (elements); (blog, topic) pairs
//! arrive one at a time as crawl results — exactly the edge-arrival
//! model, where a blog's topics dribble in over the whole crawl rather
//! than arriving together. We compare edge-arrival algorithms with the
//! set-arrival threshold algorithm that *needs* grouped input.
//!
//! Run with: `cargo run -p setcover-bench --release --example blog_watch`

use setcover_algos::{
    greedy_cover, AdversarialConfig, AdversarialSolver, KkSolver, SetArrivalThresholdSolver,
};
use setcover_core::solver::run_streaming;
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_gen::coverage::{blog_watch, BlogWatchConfig};

fn main() {
    let cfg = BlogWatchConfig {
        topics: 1500,
        blogs: 8000,
        aggregators: 12,
        niche_topics: 5,
        skew: 1.1,
    };
    let w = blog_watch(&cfg, 7);
    let inst = &w.instance;
    println!("{}: N = {} crawl records", w.label, inst.num_edges());
    println!(
        "a reading list of {} aggregator blogs covers everything\n",
        cfg.aggregators
    );

    let greedy = greedy_cover(inst);
    println!(
        "offline greedy reading list:       {:>5} blogs",
        greedy.size()
    );

    // The realistic crawl order: (blog, topic) records interleaved.
    let crawl = StreamOrder::Uniform(21);

    let kk = run_streaming(KkSolver::new(inst.m(), inst.n(), 1), stream_of(inst, crawl));
    kk.cover.verify(inst).expect("valid");
    println!(
        "kk (edge-arrival):                 {:>5} blogs, {} words",
        kk.cover.size(),
        kk.space.peak_words
    );

    let adv = run_streaming(
        AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::sqrt_n(inst.n()), 2),
        stream_of(inst, crawl),
    );
    adv.cover.verify(inst).expect("valid");
    println!(
        "algorithm 2 (low space):           {:>5} blogs, {} words",
        adv.cover.size(),
        adv.space.peak_words
    );

    // The set-arrival algorithm mis-handles interleaved crawls...
    let sa_interleaved = run_streaming(
        SetArrivalThresholdSolver::new(inst.m(), inst.n()),
        stream_of(inst, crawl),
    );
    sa_interleaved.cover.verify(inst).expect("valid");
    println!(
        "set-arrival alg on crawl order:    {:>5} blogs  <- needs grouped input",
        sa_interleaved.cover.size()
    );

    // ...but is fine when each blog's topics arrive together.
    let sa_grouped = run_streaming(
        SetArrivalThresholdSolver::new(inst.m(), inst.n()),
        stream_of(inst, StreamOrder::SetArrival),
    );
    sa_grouped.cover.verify(inst).expect("valid");
    println!(
        "set-arrival alg on grouped order:  {:>5} blogs",
        sa_grouped.cover.size()
    );

    println!(
        "\nEdge-arrival algorithms handle the realistic interleaved crawl; the classic\n\
         set-arrival algorithm collapses on it — the gap this paper's model addresses."
    );
}
