//! Quickstart: build an edge-arrival Set Cover instance, stream it through
//! the KK-algorithm, and verify the produced cover.
//!
//! Run with: `cargo run -p setcover-bench --release --example quickstart`

use setcover_algos::KkSolver;
use setcover_core::solver::run_streaming;
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_core::{ElemId, InstanceBuilder, SetId};

fn main() {
    // A small instance: 6 sets over a universe of 12 elements.
    // S0 and S1 form the optimal cover; the rest are partial overlaps.
    let mut builder = InstanceBuilder::new(6, 12);
    builder.add_set_elems(0, 0..6); // covers the first half
    builder.add_set_elems(1, 6..12); // covers the second half
    builder.add_set_elems(2, [0, 2, 4]);
    builder.add_set_elems(3, [1, 3, 5]);
    builder.add_set_elems(4, [6, 8, 10]);
    builder.add_set_elems(5, [7, 9, 11]);
    let instance = builder.build().expect("valid instance");

    println!(
        "instance: m = {} sets, n = {} elements, N = {} edges",
        instance.m(),
        instance.n(),
        instance.num_edges()
    );

    // Stream the edges in a uniformly random order (the tuples (S, u)
    // arrive one at a time — the edge-arrival model).
    let stream = stream_of(&instance, StreamOrder::Uniform(42));

    // The KK-algorithm: Õ(√n)-approximation in Õ(m) space (Theorem 1).
    let solver = KkSolver::new(instance.m(), instance.n(), 7);
    let outcome = run_streaming(solver, stream);

    // Every element has a certified covering set.
    outcome
        .cover
        .verify(&instance)
        .expect("cover must be valid");

    println!(
        "cover: {} sets {:?}",
        outcome.cover.size(),
        outcome.cover.sets()
    );
    println!("peak space: {}", outcome.space);
    for u in [ElemId(0), ElemId(7)] {
        let w: SetId = outcome.cover.witness(u).unwrap();
        println!("element {u} is covered by {w}");
    }
    println!(
        "processed {} edges in {:.2?} ({:.1} k edges/s)",
        outcome.edges_processed,
        outcome.elapsed,
        outcome.edges_per_sec() / 1e3
    );
}
