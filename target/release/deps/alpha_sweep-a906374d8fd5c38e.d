/root/repo/target/release/deps/alpha_sweep-a906374d8fd5c38e.d: crates/bench/src/bin/alpha_sweep.rs

/root/repo/target/release/deps/alpha_sweep-a906374d8fd5c38e: crates/bench/src/bin/alpha_sweep.rs

crates/bench/src/bin/alpha_sweep.rs:
