/root/repo/target/release/deps/setcover_core-e90b1ba10d3c7126.d: crates/core/src/lib.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/io.rs crates/core/src/math.rs crates/core/src/obs.rs crates/core/src/rng.rs crates/core/src/solver.rs crates/core/src/space.rs crates/core/src/stream.rs crates/core/src/stream/chaos.rs crates/core/src/stream/guard.rs

/root/repo/target/release/deps/libsetcover_core-e90b1ba10d3c7126.rlib: crates/core/src/lib.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/io.rs crates/core/src/math.rs crates/core/src/obs.rs crates/core/src/rng.rs crates/core/src/solver.rs crates/core/src/space.rs crates/core/src/stream.rs crates/core/src/stream/chaos.rs crates/core/src/stream/guard.rs

/root/repo/target/release/deps/libsetcover_core-e90b1ba10d3c7126.rmeta: crates/core/src/lib.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/io.rs crates/core/src/math.rs crates/core/src/obs.rs crates/core/src/rng.rs crates/core/src/solver.rs crates/core/src/space.rs crates/core/src/stream.rs crates/core/src/stream/chaos.rs crates/core/src/stream/guard.rs

crates/core/src/lib.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/instance.rs:
crates/core/src/io.rs:
crates/core/src/math.rs:
crates/core/src/obs.rs:
crates/core/src/rng.rs:
crates/core/src/solver.rs:
crates/core/src/space.rs:
crates/core/src/stream.rs:
crates/core/src/stream/chaos.rs:
crates/core/src/stream/guard.rs:
