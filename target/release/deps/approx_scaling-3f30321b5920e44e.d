/root/repo/target/release/deps/approx_scaling-3f30321b5920e44e.d: crates/bench/src/bin/approx_scaling.rs Cargo.toml

/root/repo/target/release/deps/libapprox_scaling-3f30321b5920e44e.rmeta: crates/bench/src/bin/approx_scaling.rs Cargo.toml

crates/bench/src/bin/approx_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
