/root/repo/target/release/deps/certificate_validity-7605f672e1975c59.d: crates/bench/../../tests/certificate_validity.rs Cargo.toml

/root/repo/target/release/deps/libcertificate_validity-7605f672e1975c59.rmeta: crates/bench/../../tests/certificate_validity.rs Cargo.toml

crates/bench/../../tests/certificate_validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
