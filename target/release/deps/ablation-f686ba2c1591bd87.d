/root/repo/target/release/deps/ablation-f686ba2c1591bd87.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-f686ba2c1591bd87: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
