/root/repo/target/release/deps/gen_instance-ae54376763392fc9.d: crates/bench/src/bin/gen_instance.rs

/root/repo/target/release/deps/gen_instance-ae54376763392fc9: crates/bench/src/bin/gen_instance.rs

crates/bench/src/bin/gen_instance.rs:
