/root/repo/target/release/deps/robustness-b8fccce6a03b4f11.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-b8fccce6a03b4f11: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
