/root/repo/target/release/deps/table1-8c5e36526373b4cd.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-8c5e36526373b4cd.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
