/root/repo/target/release/deps/invariants-573dec3dfc909680.d: crates/bench/src/bin/invariants.rs Cargo.toml

/root/repo/target/release/deps/libinvariants-573dec3dfc909680.rmeta: crates/bench/src/bin/invariants.rs Cargo.toml

crates/bench/src/bin/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
