/root/repo/target/release/deps/criterion-dc064ea4594921a9.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-dc064ea4594921a9.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-dc064ea4594921a9.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
