/root/repo/target/release/deps/invariants-2d018e73f29eb7ee.d: crates/bench/src/bin/invariants.rs

/root/repo/target/release/deps/invariants-2d018e73f29eb7ee: crates/bench/src/bin/invariants.rs

crates/bench/src/bin/invariants.rs:
