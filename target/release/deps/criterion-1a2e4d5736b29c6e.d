/root/repo/target/release/deps/criterion-1a2e4d5736b29c6e.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-1a2e4d5736b29c6e.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
