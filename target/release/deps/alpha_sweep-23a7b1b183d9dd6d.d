/root/repo/target/release/deps/alpha_sweep-23a7b1b183d9dd6d.d: crates/bench/src/bin/alpha_sweep.rs

/root/repo/target/release/deps/alpha_sweep-23a7b1b183d9dd6d: crates/bench/src/bin/alpha_sweep.rs

crates/bench/src/bin/alpha_sweep.rs:
