/root/repo/target/release/deps/setcover_comm-7e28584fb9aba39d.d: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

/root/repo/target/release/deps/libsetcover_comm-7e28584fb9aba39d.rlib: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

/root/repo/target/release/deps/libsetcover_comm-7e28584fb9aba39d.rmeta: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

crates/comm/src/lib.rs:
crates/comm/src/budgeted.rs:
crates/comm/src/disjointness.rs:
crates/comm/src/party.rs:
crates/comm/src/reduction.rs:
crates/comm/src/simple_protocol.rs:
crates/comm/src/sweep.rs:
