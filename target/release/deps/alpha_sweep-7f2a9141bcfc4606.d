/root/repo/target/release/deps/alpha_sweep-7f2a9141bcfc4606.d: crates/bench/src/bin/alpha_sweep.rs Cargo.toml

/root/repo/target/release/deps/libalpha_sweep-7f2a9141bcfc4606.rmeta: crates/bench/src/bin/alpha_sweep.rs Cargo.toml

crates/bench/src/bin/alpha_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
