/root/repo/target/release/deps/gen_instance-b70c2d1fc7aa39a6.d: crates/bench/src/bin/gen_instance.rs Cargo.toml

/root/repo/target/release/deps/libgen_instance-b70c2d1fc7aa39a6.rmeta: crates/bench/src/bin/gen_instance.rs Cargo.toml

crates/bench/src/bin/gen_instance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
