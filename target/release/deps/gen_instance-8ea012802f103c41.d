/root/repo/target/release/deps/gen_instance-8ea012802f103c41.d: crates/bench/src/bin/gen_instance.rs

/root/repo/target/release/deps/gen_instance-8ea012802f103c41: crates/bench/src/bin/gen_instance.rs

crates/bench/src/bin/gen_instance.rs:
