/root/repo/target/release/deps/concentration-79c5bbd87159bd18.d: crates/bench/src/bin/concentration.rs Cargo.toml

/root/repo/target/release/deps/libconcentration-79c5bbd87159bd18.rmeta: crates/bench/src/bin/concentration.rs Cargo.toml

crates/bench/src/bin/concentration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
