/root/repo/target/release/deps/rand-346137217549ddab.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

/root/repo/target/release/deps/rand-346137217549ddab: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
crates/rand/src/seq.rs:
