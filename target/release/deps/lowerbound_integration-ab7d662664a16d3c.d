/root/repo/target/release/deps/lowerbound_integration-ab7d662664a16d3c.d: crates/bench/../../tests/lowerbound_integration.rs

/root/repo/target/release/deps/lowerbound_integration-ab7d662664a16d3c: crates/bench/../../tests/lowerbound_integration.rs

crates/bench/../../tests/lowerbound_integration.rs:
