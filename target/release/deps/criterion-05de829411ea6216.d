/root/repo/target/release/deps/criterion-05de829411ea6216.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-05de829411ea6216: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
