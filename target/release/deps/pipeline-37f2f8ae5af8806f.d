/root/repo/target/release/deps/pipeline-37f2f8ae5af8806f.d: crates/bench/../../tests/pipeline.rs

/root/repo/target/release/deps/pipeline-37f2f8ae5af8806f: crates/bench/../../tests/pipeline.rs

crates/bench/../../tests/pipeline.rs:
