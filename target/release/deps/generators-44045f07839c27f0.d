/root/repo/target/release/deps/generators-44045f07839c27f0.d: crates/bench/benches/generators.rs Cargo.toml

/root/repo/target/release/deps/libgenerators-44045f07839c27f0.rmeta: crates/bench/benches/generators.rs Cargo.toml

crates/bench/benches/generators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
