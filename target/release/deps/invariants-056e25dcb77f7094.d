/root/repo/target/release/deps/invariants-056e25dcb77f7094.d: crates/bench/src/bin/invariants.rs

/root/repo/target/release/deps/invariants-056e25dcb77f7094: crates/bench/src/bin/invariants.rs

crates/bench/src/bin/invariants.rs:
