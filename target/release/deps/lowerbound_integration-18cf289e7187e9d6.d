/root/repo/target/release/deps/lowerbound_integration-18cf289e7187e9d6.d: crates/bench/../../tests/lowerbound_integration.rs Cargo.toml

/root/repo/target/release/deps/liblowerbound_integration-18cf289e7187e9d6.rmeta: crates/bench/../../tests/lowerbound_integration.rs Cargo.toml

crates/bench/../../tests/lowerbound_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
