/root/repo/target/release/deps/setcover_comm-122a0f90c2f03bae.d: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

/root/repo/target/release/deps/setcover_comm-122a0f90c2f03bae: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

crates/comm/src/lib.rs:
crates/comm/src/budgeted.rs:
crates/comm/src/disjointness.rs:
crates/comm/src/party.rs:
crates/comm/src/reduction.rs:
crates/comm/src/simple_protocol.rs:
crates/comm/src/sweep.rs:
