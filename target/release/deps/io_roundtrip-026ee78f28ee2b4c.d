/root/repo/target/release/deps/io_roundtrip-026ee78f28ee2b4c.d: crates/bench/../../tests/io_roundtrip.rs Cargo.toml

/root/repo/target/release/deps/libio_roundtrip-026ee78f28ee2b4c.rmeta: crates/bench/../../tests/io_roundtrip.rs Cargo.toml

crates/bench/../../tests/io_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
