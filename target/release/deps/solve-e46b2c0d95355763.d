/root/repo/target/release/deps/solve-e46b2c0d95355763.d: crates/bench/src/bin/solve.rs Cargo.toml

/root/repo/target/release/deps/libsolve-e46b2c0d95355763.rmeta: crates/bench/src/bin/solve.rs Cargo.toml

crates/bench/src/bin/solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
