/root/repo/target/release/deps/separation-31df54c893ef2ff2.d: crates/bench/src/bin/separation.rs Cargo.toml

/root/repo/target/release/deps/libseparation-31df54c893ef2ff2.rmeta: crates/bench/src/bin/separation.rs Cargo.toml

crates/bench/src/bin/separation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
