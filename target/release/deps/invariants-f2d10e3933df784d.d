/root/repo/target/release/deps/invariants-f2d10e3933df784d.d: crates/bench/src/bin/invariants.rs Cargo.toml

/root/repo/target/release/deps/libinvariants-f2d10e3933df784d.rmeta: crates/bench/src/bin/invariants.rs Cargo.toml

crates/bench/src/bin/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
