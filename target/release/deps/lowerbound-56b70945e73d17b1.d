/root/repo/target/release/deps/lowerbound-56b70945e73d17b1.d: crates/bench/src/bin/lowerbound.rs Cargo.toml

/root/repo/target/release/deps/liblowerbound-56b70945e73d17b1.rmeta: crates/bench/src/bin/lowerbound.rs Cargo.toml

crates/bench/src/bin/lowerbound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
