/root/repo/target/release/deps/separation-d7650ce91593bada.d: crates/bench/src/bin/separation.rs Cargo.toml

/root/repo/target/release/deps/libseparation-d7650ce91593bada.rmeta: crates/bench/src/bin/separation.rs Cargo.toml

crates/bench/src/bin/separation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
