/root/repo/target/release/deps/components-17963adc52e4975e.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/release/deps/libcomponents-17963adc52e4975e.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
