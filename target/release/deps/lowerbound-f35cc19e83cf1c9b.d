/root/repo/target/release/deps/lowerbound-f35cc19e83cf1c9b.d: crates/bench/src/bin/lowerbound.rs

/root/repo/target/release/deps/lowerbound-f35cc19e83cf1c9b: crates/bench/src/bin/lowerbound.rs

crates/bench/src/bin/lowerbound.rs:
