/root/repo/target/release/deps/solve-f3e0763fdc06736c.d: crates/bench/src/bin/solve.rs

/root/repo/target/release/deps/solve-f3e0763fdc06736c: crates/bench/src/bin/solve.rs

crates/bench/src/bin/solve.rs:
