/root/repo/target/release/deps/setcover_gen-c7c4034d4b6de5d8.d: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs Cargo.toml

/root/repo/target/release/deps/libsetcover_gen-c7c4034d4b6de5d8.rmeta: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/coverage.rs:
crates/gen/src/dominating.rs:
crates/gen/src/hard.rs:
crates/gen/src/lowerbound.rs:
crates/gen/src/planted.rs:
crates/gen/src/uniform.rs:
crates/gen/src/web.rs:
crates/gen/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
