/root/repo/target/release/deps/separation-28c21438abfcf606.d: crates/bench/src/bin/separation.rs

/root/repo/target/release/deps/separation-28c21438abfcf606: crates/bench/src/bin/separation.rs

crates/bench/src/bin/separation.rs:
