/root/repo/target/release/deps/ablation-1eb5ca94c3b022fa.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-1eb5ca94c3b022fa: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
