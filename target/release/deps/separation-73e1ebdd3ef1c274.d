/root/repo/target/release/deps/separation-73e1ebdd3ef1c274.d: crates/bench/src/bin/separation.rs

/root/repo/target/release/deps/separation-73e1ebdd3ef1c274: crates/bench/src/bin/separation.rs

crates/bench/src/bin/separation.rs:
