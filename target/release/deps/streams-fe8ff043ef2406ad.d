/root/repo/target/release/deps/streams-fe8ff043ef2406ad.d: crates/bench/benches/streams.rs

/root/repo/target/release/deps/streams-fe8ff043ef2406ad: crates/bench/benches/streams.rs

crates/bench/benches/streams.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
