/root/repo/target/release/deps/robustness-17385a63677c08ee.d: crates/bench/../../tests/robustness.rs Cargo.toml

/root/repo/target/release/deps/librobustness-17385a63677c08ee.rmeta: crates/bench/../../tests/robustness.rs Cargo.toml

crates/bench/../../tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
