/root/repo/target/release/deps/table1-b4d6a7778a75041a.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-b4d6a7778a75041a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
