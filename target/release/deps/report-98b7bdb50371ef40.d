/root/repo/target/release/deps/report-98b7bdb50371ef40.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-98b7bdb50371ef40: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
