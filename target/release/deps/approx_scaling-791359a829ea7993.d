/root/repo/target/release/deps/approx_scaling-791359a829ea7993.d: crates/bench/src/bin/approx_scaling.rs Cargo.toml

/root/repo/target/release/deps/libapprox_scaling-791359a829ea7993.rmeta: crates/bench/src/bin/approx_scaling.rs Cargo.toml

crates/bench/src/bin/approx_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
