/root/repo/target/release/deps/space_accounting-1307f288ae1c0c3d.d: crates/bench/../../tests/space_accounting.rs Cargo.toml

/root/repo/target/release/deps/libspace_accounting-1307f288ae1c0c3d.rmeta: crates/bench/../../tests/space_accounting.rs Cargo.toml

crates/bench/../../tests/space_accounting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
