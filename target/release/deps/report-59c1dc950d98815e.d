/root/repo/target/release/deps/report-59c1dc950d98815e.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-59c1dc950d98815e: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
