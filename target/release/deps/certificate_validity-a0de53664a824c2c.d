/root/repo/target/release/deps/certificate_validity-a0de53664a824c2c.d: crates/bench/../../tests/certificate_validity.rs

/root/repo/target/release/deps/certificate_validity-a0de53664a824c2c: crates/bench/../../tests/certificate_validity.rs

crates/bench/../../tests/certificate_validity.rs:
