/root/repo/target/release/deps/approx_scaling-5f8b9205b0462e64.d: crates/bench/src/bin/approx_scaling.rs

/root/repo/target/release/deps/approx_scaling-5f8b9205b0462e64: crates/bench/src/bin/approx_scaling.rs

crates/bench/src/bin/approx_scaling.rs:
