/root/repo/target/release/deps/algorithms-6298e7ecf826bb5f.d: crates/bench/benches/algorithms.rs Cargo.toml

/root/repo/target/release/deps/libalgorithms-6298e7ecf826bb5f.rmeta: crates/bench/benches/algorithms.rs Cargo.toml

crates/bench/benches/algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
