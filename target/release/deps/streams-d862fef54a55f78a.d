/root/repo/target/release/deps/streams-d862fef54a55f78a.d: crates/bench/benches/streams.rs

/root/repo/target/release/deps/streams-d862fef54a55f78a: crates/bench/benches/streams.rs

crates/bench/benches/streams.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
