/root/repo/target/release/deps/ablation-11b10c014b78f584.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-11b10c014b78f584.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
