/root/repo/target/release/deps/gen_instance-25a3b8fd4398fcb2.d: crates/bench/src/bin/gen_instance.rs Cargo.toml

/root/repo/target/release/deps/libgen_instance-25a3b8fd4398fcb2.rmeta: crates/bench/src/bin/gen_instance.rs Cargo.toml

crates/bench/src/bin/gen_instance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
