/root/repo/target/release/deps/concentration-82e641dfb583981c.d: crates/bench/src/bin/concentration.rs

/root/repo/target/release/deps/concentration-82e641dfb583981c: crates/bench/src/bin/concentration.rs

crates/bench/src/bin/concentration.rs:
