/root/repo/target/release/deps/par_determinism-6960bf01bccfb8a6.d: crates/bench/../../tests/par_determinism.rs Cargo.toml

/root/repo/target/release/deps/libpar_determinism-6960bf01bccfb8a6.rmeta: crates/bench/../../tests/par_determinism.rs Cargo.toml

crates/bench/../../tests/par_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
