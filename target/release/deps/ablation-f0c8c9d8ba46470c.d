/root/repo/target/release/deps/ablation-f0c8c9d8ba46470c.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-f0c8c9d8ba46470c.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
