/root/repo/target/release/deps/criterion-86fb7e1851e65618.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-86fb7e1851e65618.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
