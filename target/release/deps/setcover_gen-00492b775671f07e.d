/root/repo/target/release/deps/setcover_gen-00492b775671f07e.d: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

/root/repo/target/release/deps/libsetcover_gen-00492b775671f07e.rlib: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

/root/repo/target/release/deps/libsetcover_gen-00492b775671f07e.rmeta: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

crates/gen/src/lib.rs:
crates/gen/src/coverage.rs:
crates/gen/src/dominating.rs:
crates/gen/src/hard.rs:
crates/gen/src/lowerbound.rs:
crates/gen/src/planted.rs:
crates/gen/src/uniform.rs:
crates/gen/src/web.rs:
crates/gen/src/zipf.rs:
