/root/repo/target/release/deps/rand-7e989ef2c0982081.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

/root/repo/target/release/deps/librand-7e989ef2c0982081.rlib: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

/root/repo/target/release/deps/librand-7e989ef2c0982081.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
crates/rand/src/seq.rs:
