/root/repo/target/release/deps/pipeline-f1ce63045b67c70e.d: crates/bench/../../tests/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libpipeline-f1ce63045b67c70e.rmeta: crates/bench/../../tests/pipeline.rs Cargo.toml

crates/bench/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
