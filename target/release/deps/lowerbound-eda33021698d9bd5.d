/root/repo/target/release/deps/lowerbound-eda33021698d9bd5.d: crates/bench/src/bin/lowerbound.rs

/root/repo/target/release/deps/lowerbound-eda33021698d9bd5: crates/bench/src/bin/lowerbound.rs

crates/bench/src/bin/lowerbound.rs:
