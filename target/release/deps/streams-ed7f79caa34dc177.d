/root/repo/target/release/deps/streams-ed7f79caa34dc177.d: crates/bench/benches/streams.rs Cargo.toml

/root/repo/target/release/deps/libstreams-ed7f79caa34dc177.rmeta: crates/bench/benches/streams.rs Cargo.toml

crates/bench/benches/streams.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
