/root/repo/target/release/deps/report-5efdcfd1d0d3b41a.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/release/deps/libreport-5efdcfd1d0d3b41a.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
