/root/repo/target/release/deps/io_roundtrip-6c90854ba77f0080.d: crates/bench/../../tests/io_roundtrip.rs

/root/repo/target/release/deps/io_roundtrip-6c90854ba77f0080: crates/bench/../../tests/io_roundtrip.rs

crates/bench/../../tests/io_roundtrip.rs:
