/root/repo/target/release/deps/rand-0cdfd529b8e9c2c2.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs Cargo.toml

/root/repo/target/release/deps/librand-0cdfd529b8e9c2c2.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs Cargo.toml

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
crates/rand/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
