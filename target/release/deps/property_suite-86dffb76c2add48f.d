/root/repo/target/release/deps/property_suite-86dffb76c2add48f.d: crates/bench/../../tests/property_suite.rs

/root/repo/target/release/deps/property_suite-86dffb76c2add48f: crates/bench/../../tests/property_suite.rs

crates/bench/../../tests/property_suite.rs:
