/root/repo/target/release/deps/concentration-d720408016993693.d: crates/bench/src/bin/concentration.rs

/root/repo/target/release/deps/concentration-d720408016993693: crates/bench/src/bin/concentration.rs

crates/bench/src/bin/concentration.rs:
