/root/repo/target/release/deps/par_determinism-3c46f4068c7e24c6.d: crates/bench/../../tests/par_determinism.rs

/root/repo/target/release/deps/par_determinism-3c46f4068c7e24c6: crates/bench/../../tests/par_determinism.rs

crates/bench/../../tests/par_determinism.rs:
