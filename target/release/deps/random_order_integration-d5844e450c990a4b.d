/root/repo/target/release/deps/random_order_integration-d5844e450c990a4b.d: crates/bench/../../tests/random_order_integration.rs

/root/repo/target/release/deps/random_order_integration-d5844e450c990a4b: crates/bench/../../tests/random_order_integration.rs

crates/bench/../../tests/random_order_integration.rs:
