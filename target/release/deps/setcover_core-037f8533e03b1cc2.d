/root/repo/target/release/deps/setcover_core-037f8533e03b1cc2.d: crates/core/src/lib.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/io.rs crates/core/src/math.rs crates/core/src/rng.rs crates/core/src/solver.rs crates/core/src/space.rs crates/core/src/stream.rs

/root/repo/target/release/deps/setcover_core-037f8533e03b1cc2: crates/core/src/lib.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/io.rs crates/core/src/math.rs crates/core/src/rng.rs crates/core/src/solver.rs crates/core/src/space.rs crates/core/src/stream.rs

crates/core/src/lib.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/instance.rs:
crates/core/src/io.rs:
crates/core/src/math.rs:
crates/core/src/rng.rs:
crates/core/src/solver.rs:
crates/core/src/space.rs:
crates/core/src/stream.rs:
