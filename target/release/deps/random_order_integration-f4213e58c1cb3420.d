/root/repo/target/release/deps/random_order_integration-f4213e58c1cb3420.d: crates/bench/../../tests/random_order_integration.rs Cargo.toml

/root/repo/target/release/deps/librandom_order_integration-f4213e58c1cb3420.rmeta: crates/bench/../../tests/random_order_integration.rs Cargo.toml

crates/bench/../../tests/random_order_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
