/root/repo/target/release/deps/space_accounting-be0b68d9fb237698.d: crates/bench/../../tests/space_accounting.rs

/root/repo/target/release/deps/space_accounting-be0b68d9fb237698: crates/bench/../../tests/space_accounting.rs

crates/bench/../../tests/space_accounting.rs:
