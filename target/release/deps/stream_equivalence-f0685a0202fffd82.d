/root/repo/target/release/deps/stream_equivalence-f0685a0202fffd82.d: crates/bench/../../tests/stream_equivalence.rs

/root/repo/target/release/deps/stream_equivalence-f0685a0202fffd82: crates/bench/../../tests/stream_equivalence.rs

crates/bench/../../tests/stream_equivalence.rs:
