/root/repo/target/release/deps/concentration-cd9e6f38c420a4de.d: crates/bench/src/bin/concentration.rs Cargo.toml

/root/repo/target/release/deps/libconcentration-cd9e6f38c420a4de.rmeta: crates/bench/src/bin/concentration.rs Cargo.toml

crates/bench/src/bin/concentration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
