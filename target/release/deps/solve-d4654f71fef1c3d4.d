/root/repo/target/release/deps/solve-d4654f71fef1c3d4.d: crates/bench/src/bin/solve.rs Cargo.toml

/root/repo/target/release/deps/libsolve-d4654f71fef1c3d4.rmeta: crates/bench/src/bin/solve.rs Cargo.toml

crates/bench/src/bin/solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
