/root/repo/target/release/deps/property_suite-9c6adcbdf9992b16.d: crates/bench/../../tests/property_suite.rs Cargo.toml

/root/repo/target/release/deps/libproperty_suite-9c6adcbdf9992b16.rmeta: crates/bench/../../tests/property_suite.rs Cargo.toml

crates/bench/../../tests/property_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
