/root/repo/target/release/deps/lowerbound-d7e5439d60f04c39.d: crates/bench/src/bin/lowerbound.rs Cargo.toml

/root/repo/target/release/deps/liblowerbound-d7e5439d60f04c39.rmeta: crates/bench/src/bin/lowerbound.rs Cargo.toml

crates/bench/src/bin/lowerbound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
