/root/repo/target/release/deps/solve-4f876533fc04c4d4.d: crates/bench/src/bin/solve.rs

/root/repo/target/release/deps/solve-4f876533fc04c4d4: crates/bench/src/bin/solve.rs

crates/bench/src/bin/solve.rs:
