/root/repo/target/release/deps/approx_scaling-56d221587d216a0f.d: crates/bench/src/bin/approx_scaling.rs

/root/repo/target/release/deps/approx_scaling-56d221587d216a0f: crates/bench/src/bin/approx_scaling.rs

crates/bench/src/bin/approx_scaling.rs:
