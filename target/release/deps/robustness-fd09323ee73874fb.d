/root/repo/target/release/deps/robustness-fd09323ee73874fb.d: crates/bench/../../tests/robustness.rs

/root/repo/target/release/deps/robustness-fd09323ee73874fb: crates/bench/../../tests/robustness.rs

crates/bench/../../tests/robustness.rs:
