/root/repo/target/release/deps/stream_equivalence-35ceebf2738dbb11.d: crates/bench/../../tests/stream_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libstream_equivalence-35ceebf2738dbb11.rmeta: crates/bench/../../tests/stream_equivalence.rs Cargo.toml

crates/bench/../../tests/stream_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
