/root/repo/target/release/deps/rand-c58e9f16402dbb40.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs Cargo.toml

/root/repo/target/release/deps/librand-c58e9f16402dbb40.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs Cargo.toml

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
crates/rand/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
