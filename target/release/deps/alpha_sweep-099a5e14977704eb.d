/root/repo/target/release/deps/alpha_sweep-099a5e14977704eb.d: crates/bench/src/bin/alpha_sweep.rs Cargo.toml

/root/repo/target/release/deps/libalpha_sweep-099a5e14977704eb.rmeta: crates/bench/src/bin/alpha_sweep.rs Cargo.toml

crates/bench/src/bin/alpha_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
