/root/repo/target/release/deps/table1-9f366afe4989daff.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-9f366afe4989daff: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
