/root/repo/target/release/deps/report-07ec3f1020b86629.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/release/deps/libreport-07ec3f1020b86629.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
