/root/repo/target/release/librand.rlib: /root/repo/crates/rand/src/lib.rs /root/repo/crates/rand/src/rngs.rs /root/repo/crates/rand/src/seq.rs
