/root/repo/target/release/examples/quickstart-2cdb43599a688111.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2cdb43599a688111: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
