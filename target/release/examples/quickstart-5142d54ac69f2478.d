/root/repo/target/release/examples/quickstart-5142d54ac69f2478.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-5142d54ac69f2478.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
