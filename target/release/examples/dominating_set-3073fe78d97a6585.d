/root/repo/target/release/examples/dominating_set-3073fe78d97a6585.d: crates/bench/../../examples/dominating_set.rs Cargo.toml

/root/repo/target/release/examples/libdominating_set-3073fe78d97a6585.rmeta: crates/bench/../../examples/dominating_set.rs Cargo.toml

crates/bench/../../examples/dominating_set.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
