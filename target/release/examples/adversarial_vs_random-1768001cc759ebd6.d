/root/repo/target/release/examples/adversarial_vs_random-1768001cc759ebd6.d: crates/bench/../../examples/adversarial_vs_random.rs Cargo.toml

/root/repo/target/release/examples/libadversarial_vs_random-1768001cc759ebd6.rmeta: crates/bench/../../examples/adversarial_vs_random.rs Cargo.toml

crates/bench/../../examples/adversarial_vs_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
