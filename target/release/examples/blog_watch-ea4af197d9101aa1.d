/root/repo/target/release/examples/blog_watch-ea4af197d9101aa1.d: crates/bench/../../examples/blog_watch.rs

/root/repo/target/release/examples/blog_watch-ea4af197d9101aa1: crates/bench/../../examples/blog_watch.rs

crates/bench/../../examples/blog_watch.rs:
