/root/repo/target/release/examples/guard_prof-27def7f9559ce818.d: crates/bench/examples/guard_prof.rs

/root/repo/target/release/examples/guard_prof-27def7f9559ce818: crates/bench/examples/guard_prof.rs

crates/bench/examples/guard_prof.rs:
