/root/repo/target/release/examples/blog_watch-d16aa7b5a1f49e94.d: crates/bench/../../examples/blog_watch.rs Cargo.toml

/root/repo/target/release/examples/libblog_watch-d16aa7b5a1f49e94.rmeta: crates/bench/../../examples/blog_watch.rs Cargo.toml

crates/bench/../../examples/blog_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
