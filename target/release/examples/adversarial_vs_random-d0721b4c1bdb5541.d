/root/repo/target/release/examples/adversarial_vs_random-d0721b4c1bdb5541.d: crates/bench/../../examples/adversarial_vs_random.rs

/root/repo/target/release/examples/adversarial_vs_random-d0721b4c1bdb5541: crates/bench/../../examples/adversarial_vs_random.rs

crates/bench/../../examples/adversarial_vs_random.rs:
