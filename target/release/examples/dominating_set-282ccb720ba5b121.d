/root/repo/target/release/examples/dominating_set-282ccb720ba5b121.d: crates/bench/../../examples/dominating_set.rs

/root/repo/target/release/examples/dominating_set-282ccb720ba5b121: crates/bench/../../examples/dominating_set.rs

crates/bench/../../examples/dominating_set.rs:
