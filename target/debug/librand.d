/root/repo/target/debug/librand.rlib: /root/repo/crates/rand/src/lib.rs /root/repo/crates/rand/src/rngs.rs /root/repo/crates/rand/src/seq.rs
