/root/repo/target/debug/deps/pipeline-84a2e5439d98ce29.d: crates/bench/../../tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-84a2e5439d98ce29.rmeta: crates/bench/../../tests/pipeline.rs

crates/bench/../../tests/pipeline.rs:
