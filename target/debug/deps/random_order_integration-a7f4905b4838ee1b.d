/root/repo/target/debug/deps/random_order_integration-a7f4905b4838ee1b.d: crates/bench/../../tests/random_order_integration.rs Cargo.toml

/root/repo/target/debug/deps/librandom_order_integration-a7f4905b4838ee1b.rmeta: crates/bench/../../tests/random_order_integration.rs Cargo.toml

crates/bench/../../tests/random_order_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
