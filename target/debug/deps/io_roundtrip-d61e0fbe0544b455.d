/root/repo/target/debug/deps/io_roundtrip-d61e0fbe0544b455.d: crates/bench/../../tests/io_roundtrip.rs

/root/repo/target/debug/deps/io_roundtrip-d61e0fbe0544b455: crates/bench/../../tests/io_roundtrip.rs

crates/bench/../../tests/io_roundtrip.rs:
