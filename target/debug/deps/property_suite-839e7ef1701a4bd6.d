/root/repo/target/debug/deps/property_suite-839e7ef1701a4bd6.d: crates/bench/../../tests/property_suite.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_suite-839e7ef1701a4bd6.rmeta: crates/bench/../../tests/property_suite.rs Cargo.toml

crates/bench/../../tests/property_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
