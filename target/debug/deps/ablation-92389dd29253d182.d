/root/repo/target/debug/deps/ablation-92389dd29253d182.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-92389dd29253d182: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
