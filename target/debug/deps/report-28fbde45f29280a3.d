/root/repo/target/debug/deps/report-28fbde45f29280a3.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-28fbde45f29280a3: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
