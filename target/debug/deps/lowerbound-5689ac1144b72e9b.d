/root/repo/target/debug/deps/lowerbound-5689ac1144b72e9b.d: crates/bench/src/bin/lowerbound.rs

/root/repo/target/debug/deps/liblowerbound-5689ac1144b72e9b.rmeta: crates/bench/src/bin/lowerbound.rs

crates/bench/src/bin/lowerbound.rs:
