/root/repo/target/debug/deps/table1-186da152fcf49a96.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-186da152fcf49a96: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
