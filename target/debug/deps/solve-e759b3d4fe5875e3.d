/root/repo/target/debug/deps/solve-e759b3d4fe5875e3.d: crates/bench/src/bin/solve.rs

/root/repo/target/debug/deps/solve-e759b3d4fe5875e3: crates/bench/src/bin/solve.rs

crates/bench/src/bin/solve.rs:
