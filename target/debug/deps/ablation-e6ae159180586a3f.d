/root/repo/target/debug/deps/ablation-e6ae159180586a3f.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-e6ae159180586a3f.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
