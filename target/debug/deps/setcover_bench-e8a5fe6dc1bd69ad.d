/root/repo/target/debug/deps/setcover_bench-e8a5fe6dc1bd69ad.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/alpha_sweep.rs crates/bench/src/experiments/approx_scaling.rs crates/bench/src/experiments/concentration.rs crates/bench/src/experiments/invariants.rs crates/bench/src/experiments/lowerbound.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/separation.rs crates/bench/src/experiments/table1.rs crates/bench/src/harness.rs crates/bench/src/obs.rs crates/bench/src/par.rs crates/bench/src/stats.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libsetcover_bench-e8a5fe6dc1bd69ad.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/alpha_sweep.rs crates/bench/src/experiments/approx_scaling.rs crates/bench/src/experiments/concentration.rs crates/bench/src/experiments/invariants.rs crates/bench/src/experiments/lowerbound.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/separation.rs crates/bench/src/experiments/table1.rs crates/bench/src/harness.rs crates/bench/src/obs.rs crates/bench/src/par.rs crates/bench/src/stats.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/alpha_sweep.rs:
crates/bench/src/experiments/approx_scaling.rs:
crates/bench/src/experiments/concentration.rs:
crates/bench/src/experiments/invariants.rs:
crates/bench/src/experiments/lowerbound.rs:
crates/bench/src/experiments/robustness.rs:
crates/bench/src/experiments/separation.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/harness.rs:
crates/bench/src/obs.rs:
crates/bench/src/par.rs:
crates/bench/src/stats.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
