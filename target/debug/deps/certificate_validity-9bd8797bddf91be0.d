/root/repo/target/debug/deps/certificate_validity-9bd8797bddf91be0.d: crates/bench/../../tests/certificate_validity.rs

/root/repo/target/debug/deps/certificate_validity-9bd8797bddf91be0: crates/bench/../../tests/certificate_validity.rs

crates/bench/../../tests/certificate_validity.rs:
