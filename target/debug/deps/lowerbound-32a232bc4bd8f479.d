/root/repo/target/debug/deps/lowerbound-32a232bc4bd8f479.d: crates/bench/src/bin/lowerbound.rs

/root/repo/target/debug/deps/liblowerbound-32a232bc4bd8f479.rmeta: crates/bench/src/bin/lowerbound.rs

crates/bench/src/bin/lowerbound.rs:
