/root/repo/target/debug/deps/space_accounting-8c201fa924aaf061.d: crates/bench/../../tests/space_accounting.rs

/root/repo/target/debug/deps/space_accounting-8c201fa924aaf061: crates/bench/../../tests/space_accounting.rs

crates/bench/../../tests/space_accounting.rs:
