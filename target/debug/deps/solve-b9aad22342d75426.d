/root/repo/target/debug/deps/solve-b9aad22342d75426.d: crates/bench/src/bin/solve.rs Cargo.toml

/root/repo/target/debug/deps/libsolve-b9aad22342d75426.rmeta: crates/bench/src/bin/solve.rs Cargo.toml

crates/bench/src/bin/solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
