/root/repo/target/debug/deps/property_suite-cb3e72621fd862a1.d: crates/bench/../../tests/property_suite.rs

/root/repo/target/debug/deps/libproperty_suite-cb3e72621fd862a1.rmeta: crates/bench/../../tests/property_suite.rs

crates/bench/../../tests/property_suite.rs:
