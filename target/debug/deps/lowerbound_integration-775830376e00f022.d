/root/repo/target/debug/deps/lowerbound_integration-775830376e00f022.d: crates/bench/../../tests/lowerbound_integration.rs

/root/repo/target/debug/deps/lowerbound_integration-775830376e00f022: crates/bench/../../tests/lowerbound_integration.rs

crates/bench/../../tests/lowerbound_integration.rs:
