/root/repo/target/debug/deps/components-7630f0a81e744041.d: crates/bench/benches/components.rs

/root/repo/target/debug/deps/components-7630f0a81e744041: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
