/root/repo/target/debug/deps/approx_scaling-4fe135f9f9dffdb6.d: crates/bench/src/bin/approx_scaling.rs

/root/repo/target/debug/deps/libapprox_scaling-4fe135f9f9dffdb6.rmeta: crates/bench/src/bin/approx_scaling.rs

crates/bench/src/bin/approx_scaling.rs:
