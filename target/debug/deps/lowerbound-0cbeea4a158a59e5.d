/root/repo/target/debug/deps/lowerbound-0cbeea4a158a59e5.d: crates/bench/src/bin/lowerbound.rs

/root/repo/target/debug/deps/lowerbound-0cbeea4a158a59e5: crates/bench/src/bin/lowerbound.rs

crates/bench/src/bin/lowerbound.rs:
