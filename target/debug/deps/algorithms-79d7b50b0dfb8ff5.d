/root/repo/target/debug/deps/algorithms-79d7b50b0dfb8ff5.d: crates/bench/benches/algorithms.rs

/root/repo/target/debug/deps/algorithms-79d7b50b0dfb8ff5: crates/bench/benches/algorithms.rs

crates/bench/benches/algorithms.rs:
