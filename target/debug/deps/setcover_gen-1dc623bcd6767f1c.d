/root/repo/target/debug/deps/setcover_gen-1dc623bcd6767f1c.d: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

/root/repo/target/debug/deps/libsetcover_gen-1dc623bcd6767f1c.rmeta: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

crates/gen/src/lib.rs:
crates/gen/src/coverage.rs:
crates/gen/src/dominating.rs:
crates/gen/src/hard.rs:
crates/gen/src/lowerbound.rs:
crates/gen/src/planted.rs:
crates/gen/src/uniform.rs:
crates/gen/src/web.rs:
crates/gen/src/zipf.rs:
