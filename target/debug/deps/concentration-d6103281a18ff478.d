/root/repo/target/debug/deps/concentration-d6103281a18ff478.d: crates/bench/src/bin/concentration.rs

/root/repo/target/debug/deps/libconcentration-d6103281a18ff478.rmeta: crates/bench/src/bin/concentration.rs

crates/bench/src/bin/concentration.rs:
