/root/repo/target/debug/deps/report-d68de47d08986261.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/libreport-d68de47d08986261.rmeta: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
