/root/repo/target/debug/deps/obs-dcc1a0be4080696a.d: crates/bench/../../tests/obs.rs

/root/repo/target/debug/deps/obs-dcc1a0be4080696a: crates/bench/../../tests/obs.rs

crates/bench/../../tests/obs.rs:
