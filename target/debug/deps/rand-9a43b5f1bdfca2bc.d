/root/repo/target/debug/deps/rand-9a43b5f1bdfca2bc.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

/root/repo/target/debug/deps/librand-9a43b5f1bdfca2bc.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
crates/rand/src/seq.rs:
