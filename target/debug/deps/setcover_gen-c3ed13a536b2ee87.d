/root/repo/target/debug/deps/setcover_gen-c3ed13a536b2ee87.d: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

/root/repo/target/debug/deps/libsetcover_gen-c3ed13a536b2ee87.rmeta: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

crates/gen/src/lib.rs:
crates/gen/src/coverage.rs:
crates/gen/src/dominating.rs:
crates/gen/src/hard.rs:
crates/gen/src/lowerbound.rs:
crates/gen/src/planted.rs:
crates/gen/src/uniform.rs:
crates/gen/src/web.rs:
crates/gen/src/zipf.rs:
