/root/repo/target/debug/deps/robustness-d71b5913f591a9b6.d: crates/bench/src/bin/robustness.rs

/root/repo/target/debug/deps/librobustness-d71b5913f591a9b6.rmeta: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
