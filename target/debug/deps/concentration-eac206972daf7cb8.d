/root/repo/target/debug/deps/concentration-eac206972daf7cb8.d: crates/bench/src/bin/concentration.rs

/root/repo/target/debug/deps/concentration-eac206972daf7cb8: crates/bench/src/bin/concentration.rs

crates/bench/src/bin/concentration.rs:
