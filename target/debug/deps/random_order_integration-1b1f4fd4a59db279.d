/root/repo/target/debug/deps/random_order_integration-1b1f4fd4a59db279.d: crates/bench/../../tests/random_order_integration.rs

/root/repo/target/debug/deps/random_order_integration-1b1f4fd4a59db279: crates/bench/../../tests/random_order_integration.rs

crates/bench/../../tests/random_order_integration.rs:
