/root/repo/target/debug/deps/par_determinism-ed058562732dd1c5.d: crates/bench/../../tests/par_determinism.rs

/root/repo/target/debug/deps/par_determinism-ed058562732dd1c5: crates/bench/../../tests/par_determinism.rs

crates/bench/../../tests/par_determinism.rs:
