/root/repo/target/debug/deps/gen_instance-e0cffe4de7bd9afc.d: crates/bench/src/bin/gen_instance.rs

/root/repo/target/debug/deps/libgen_instance-e0cffe4de7bd9afc.rmeta: crates/bench/src/bin/gen_instance.rs

crates/bench/src/bin/gen_instance.rs:
