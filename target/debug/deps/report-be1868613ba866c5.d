/root/repo/target/debug/deps/report-be1868613ba866c5.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-be1868613ba866c5: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
