/root/repo/target/debug/deps/components-0b70f93f42d3113e.d: crates/bench/benches/components.rs

/root/repo/target/debug/deps/libcomponents-0b70f93f42d3113e.rmeta: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
