/root/repo/target/debug/deps/lowerbound_integration-4f99f9a4682dd653.d: crates/bench/../../tests/lowerbound_integration.rs Cargo.toml

/root/repo/target/debug/deps/liblowerbound_integration-4f99f9a4682dd653.rmeta: crates/bench/../../tests/lowerbound_integration.rs Cargo.toml

crates/bench/../../tests/lowerbound_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
