/root/repo/target/debug/deps/generators-4214d698d3e892eb.d: crates/bench/benches/generators.rs

/root/repo/target/debug/deps/libgenerators-4214d698d3e892eb.rmeta: crates/bench/benches/generators.rs

crates/bench/benches/generators.rs:
