/root/repo/target/debug/deps/concentration-b2f1cf4bc6fe0fbc.d: crates/bench/src/bin/concentration.rs Cargo.toml

/root/repo/target/debug/deps/libconcentration-b2f1cf4bc6fe0fbc.rmeta: crates/bench/src/bin/concentration.rs Cargo.toml

crates/bench/src/bin/concentration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
