/root/repo/target/debug/deps/alpha_sweep-1da7a6783c6c5b18.d: crates/bench/src/bin/alpha_sweep.rs

/root/repo/target/debug/deps/alpha_sweep-1da7a6783c6c5b18: crates/bench/src/bin/alpha_sweep.rs

crates/bench/src/bin/alpha_sweep.rs:
