/root/repo/target/debug/deps/invariants-ec754204109c7f61.d: crates/bench/src/bin/invariants.rs

/root/repo/target/debug/deps/invariants-ec754204109c7f61: crates/bench/src/bin/invariants.rs

crates/bench/src/bin/invariants.rs:
