/root/repo/target/debug/deps/algorithms-c989d9e1b36f9d78.d: crates/bench/benches/algorithms.rs

/root/repo/target/debug/deps/algorithms-c989d9e1b36f9d78: crates/bench/benches/algorithms.rs

crates/bench/benches/algorithms.rs:
