/root/repo/target/debug/deps/stream_equivalence-938004a557cd2ca0.d: crates/bench/../../tests/stream_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libstream_equivalence-938004a557cd2ca0.rmeta: crates/bench/../../tests/stream_equivalence.rs Cargo.toml

crates/bench/../../tests/stream_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
