/root/repo/target/debug/deps/approx_scaling-ecc8109424e32a58.d: crates/bench/src/bin/approx_scaling.rs

/root/repo/target/debug/deps/approx_scaling-ecc8109424e32a58: crates/bench/src/bin/approx_scaling.rs

crates/bench/src/bin/approx_scaling.rs:
