/root/repo/target/debug/deps/concentration-6279dfb5054efeeb.d: crates/bench/src/bin/concentration.rs Cargo.toml

/root/repo/target/debug/deps/libconcentration-6279dfb5054efeeb.rmeta: crates/bench/src/bin/concentration.rs Cargo.toml

crates/bench/src/bin/concentration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
