/root/repo/target/debug/deps/separation-79db90d8912c3778.d: crates/bench/src/bin/separation.rs Cargo.toml

/root/repo/target/debug/deps/libseparation-79db90d8912c3778.rmeta: crates/bench/src/bin/separation.rs Cargo.toml

crates/bench/src/bin/separation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
