/root/repo/target/debug/deps/robustness-a284ebb5eb5bc6e5.d: crates/bench/../../tests/robustness.rs

/root/repo/target/debug/deps/robustness-a284ebb5eb5bc6e5: crates/bench/../../tests/robustness.rs

crates/bench/../../tests/robustness.rs:
