/root/repo/target/debug/deps/solve-d32d825f1d2fc08e.d: crates/bench/src/bin/solve.rs

/root/repo/target/debug/deps/libsolve-d32d825f1d2fc08e.rmeta: crates/bench/src/bin/solve.rs

crates/bench/src/bin/solve.rs:
