/root/repo/target/debug/deps/setcover_comm-32a90923d9b7ae04.d: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

/root/repo/target/debug/deps/libsetcover_comm-32a90923d9b7ae04.rmeta: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

crates/comm/src/lib.rs:
crates/comm/src/budgeted.rs:
crates/comm/src/disjointness.rs:
crates/comm/src/party.rs:
crates/comm/src/reduction.rs:
crates/comm/src/simple_protocol.rs:
crates/comm/src/sweep.rs:
