/root/repo/target/debug/deps/robustness-23ddc6ef0aadb3fe.d: crates/bench/../../tests/robustness.rs

/root/repo/target/debug/deps/librobustness-23ddc6ef0aadb3fe.rmeta: crates/bench/../../tests/robustness.rs

crates/bench/../../tests/robustness.rs:
