/root/repo/target/debug/deps/robustness-6f72e19d4b301e76.d: crates/bench/src/bin/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-6f72e19d4b301e76.rmeta: crates/bench/src/bin/robustness.rs Cargo.toml

crates/bench/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
