/root/repo/target/debug/deps/approx_scaling-914d8830cdb70c16.d: crates/bench/src/bin/approx_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libapprox_scaling-914d8830cdb70c16.rmeta: crates/bench/src/bin/approx_scaling.rs Cargo.toml

crates/bench/src/bin/approx_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
