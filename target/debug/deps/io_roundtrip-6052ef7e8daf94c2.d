/root/repo/target/debug/deps/io_roundtrip-6052ef7e8daf94c2.d: crates/bench/../../tests/io_roundtrip.rs

/root/repo/target/debug/deps/io_roundtrip-6052ef7e8daf94c2: crates/bench/../../tests/io_roundtrip.rs

crates/bench/../../tests/io_roundtrip.rs:
