/root/repo/target/debug/deps/components-8b4e24e3f96fd93f.d: crates/bench/benches/components.rs

/root/repo/target/debug/deps/components-8b4e24e3f96fd93f: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
