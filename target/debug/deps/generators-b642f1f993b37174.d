/root/repo/target/debug/deps/generators-b642f1f993b37174.d: crates/bench/benches/generators.rs

/root/repo/target/debug/deps/generators-b642f1f993b37174: crates/bench/benches/generators.rs

crates/bench/benches/generators.rs:
