/root/repo/target/debug/deps/table1-a37bc4018166f55a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-a37bc4018166f55a.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
