/root/repo/target/debug/deps/approx_scaling-144e818504bb1444.d: crates/bench/src/bin/approx_scaling.rs

/root/repo/target/debug/deps/approx_scaling-144e818504bb1444: crates/bench/src/bin/approx_scaling.rs

crates/bench/src/bin/approx_scaling.rs:
