/root/repo/target/debug/deps/invariants-0092f16b29f23256.d: crates/bench/src/bin/invariants.rs

/root/repo/target/debug/deps/libinvariants-0092f16b29f23256.rmeta: crates/bench/src/bin/invariants.rs

crates/bench/src/bin/invariants.rs:
