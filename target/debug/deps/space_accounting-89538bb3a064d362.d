/root/repo/target/debug/deps/space_accounting-89538bb3a064d362.d: crates/bench/../../tests/space_accounting.rs

/root/repo/target/debug/deps/libspace_accounting-89538bb3a064d362.rmeta: crates/bench/../../tests/space_accounting.rs

crates/bench/../../tests/space_accounting.rs:
