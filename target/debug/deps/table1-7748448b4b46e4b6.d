/root/repo/target/debug/deps/table1-7748448b4b46e4b6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-7748448b4b46e4b6.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
