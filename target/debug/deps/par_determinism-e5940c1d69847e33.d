/root/repo/target/debug/deps/par_determinism-e5940c1d69847e33.d: crates/bench/../../tests/par_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libpar_determinism-e5940c1d69847e33.rmeta: crates/bench/../../tests/par_determinism.rs Cargo.toml

crates/bench/../../tests/par_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
