/root/repo/target/debug/deps/io_roundtrip-1406bdd6fe8188a2.d: crates/bench/../../tests/io_roundtrip.rs

/root/repo/target/debug/deps/libio_roundtrip-1406bdd6fe8188a2.rmeta: crates/bench/../../tests/io_roundtrip.rs

crates/bench/../../tests/io_roundtrip.rs:
