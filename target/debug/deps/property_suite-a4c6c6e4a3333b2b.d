/root/repo/target/debug/deps/property_suite-a4c6c6e4a3333b2b.d: crates/bench/../../tests/property_suite.rs

/root/repo/target/debug/deps/property_suite-a4c6c6e4a3333b2b: crates/bench/../../tests/property_suite.rs

crates/bench/../../tests/property_suite.rs:
