/root/repo/target/debug/deps/concentration-3c51d40a45d1043d.d: crates/bench/src/bin/concentration.rs

/root/repo/target/debug/deps/libconcentration-3c51d40a45d1043d.rmeta: crates/bench/src/bin/concentration.rs

crates/bench/src/bin/concentration.rs:
