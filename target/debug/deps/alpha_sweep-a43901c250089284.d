/root/repo/target/debug/deps/alpha_sweep-a43901c250089284.d: crates/bench/src/bin/alpha_sweep.rs

/root/repo/target/debug/deps/alpha_sweep-a43901c250089284: crates/bench/src/bin/alpha_sweep.rs

crates/bench/src/bin/alpha_sweep.rs:
