/root/repo/target/debug/deps/gen_instance-9dab7cb40e88439a.d: crates/bench/src/bin/gen_instance.rs

/root/repo/target/debug/deps/gen_instance-9dab7cb40e88439a: crates/bench/src/bin/gen_instance.rs

crates/bench/src/bin/gen_instance.rs:
