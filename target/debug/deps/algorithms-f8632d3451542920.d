/root/repo/target/debug/deps/algorithms-f8632d3451542920.d: crates/bench/benches/algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithms-f8632d3451542920.rmeta: crates/bench/benches/algorithms.rs Cargo.toml

crates/bench/benches/algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
