/root/repo/target/debug/deps/robustness-6a13fa562aa411dc.d: crates/bench/src/bin/robustness.rs

/root/repo/target/debug/deps/robustness-6a13fa562aa411dc: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
