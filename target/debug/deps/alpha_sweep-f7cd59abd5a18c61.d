/root/repo/target/debug/deps/alpha_sweep-f7cd59abd5a18c61.d: crates/bench/src/bin/alpha_sweep.rs

/root/repo/target/debug/deps/libalpha_sweep-f7cd59abd5a18c61.rmeta: crates/bench/src/bin/alpha_sweep.rs

crates/bench/src/bin/alpha_sweep.rs:
