/root/repo/target/debug/deps/streams-19c0be1d9520ba48.d: crates/bench/benches/streams.rs Cargo.toml

/root/repo/target/debug/deps/libstreams-19c0be1d9520ba48.rmeta: crates/bench/benches/streams.rs Cargo.toml

crates/bench/benches/streams.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
