/root/repo/target/debug/deps/streams-19c0be1d9520ba48.d: crates/bench/benches/streams.rs Cargo.toml

/root/repo/target/debug/deps/libstreams-19c0be1d9520ba48.rmeta: crates/bench/benches/streams.rs Cargo.toml

crates/bench/benches/streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
