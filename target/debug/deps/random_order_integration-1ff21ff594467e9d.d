/root/repo/target/debug/deps/random_order_integration-1ff21ff594467e9d.d: crates/bench/../../tests/random_order_integration.rs

/root/repo/target/debug/deps/librandom_order_integration-1ff21ff594467e9d.rmeta: crates/bench/../../tests/random_order_integration.rs

crates/bench/../../tests/random_order_integration.rs:
