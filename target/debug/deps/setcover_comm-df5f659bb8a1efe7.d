/root/repo/target/debug/deps/setcover_comm-df5f659bb8a1efe7.d: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

/root/repo/target/debug/deps/setcover_comm-df5f659bb8a1efe7: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

crates/comm/src/lib.rs:
crates/comm/src/budgeted.rs:
crates/comm/src/disjointness.rs:
crates/comm/src/party.rs:
crates/comm/src/reduction.rs:
crates/comm/src/simple_protocol.rs:
crates/comm/src/sweep.rs:
