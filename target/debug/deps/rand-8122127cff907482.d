/root/repo/target/debug/deps/rand-8122127cff907482.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

/root/repo/target/debug/deps/rand-8122127cff907482: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
crates/rand/src/seq.rs:
