/root/repo/target/debug/deps/invariants-d17937480850ade9.d: crates/bench/src/bin/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-d17937480850ade9.rmeta: crates/bench/src/bin/invariants.rs Cargo.toml

crates/bench/src/bin/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
