/root/repo/target/debug/deps/property_suite-5c7948906dcaf800.d: crates/bench/../../tests/property_suite.rs

/root/repo/target/debug/deps/property_suite-5c7948906dcaf800: crates/bench/../../tests/property_suite.rs

crates/bench/../../tests/property_suite.rs:
