/root/repo/target/debug/deps/separation-b8d64834c1f0287f.d: crates/bench/src/bin/separation.rs

/root/repo/target/debug/deps/separation-b8d64834c1f0287f: crates/bench/src/bin/separation.rs

crates/bench/src/bin/separation.rs:
