/root/repo/target/debug/deps/gen_instance-49f3d44609b8f047.d: crates/bench/src/bin/gen_instance.rs Cargo.toml

/root/repo/target/debug/deps/libgen_instance-49f3d44609b8f047.rmeta: crates/bench/src/bin/gen_instance.rs Cargo.toml

crates/bench/src/bin/gen_instance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
