/root/repo/target/debug/deps/obs-b558f56f9f81dc90.d: crates/bench/../../tests/obs.rs Cargo.toml

/root/repo/target/debug/deps/libobs-b558f56f9f81dc90.rmeta: crates/bench/../../tests/obs.rs Cargo.toml

crates/bench/../../tests/obs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
