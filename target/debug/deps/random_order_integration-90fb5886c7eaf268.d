/root/repo/target/debug/deps/random_order_integration-90fb5886c7eaf268.d: crates/bench/../../tests/random_order_integration.rs

/root/repo/target/debug/deps/random_order_integration-90fb5886c7eaf268: crates/bench/../../tests/random_order_integration.rs

crates/bench/../../tests/random_order_integration.rs:
