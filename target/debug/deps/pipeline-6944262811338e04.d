/root/repo/target/debug/deps/pipeline-6944262811338e04.d: crates/bench/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-6944262811338e04: crates/bench/../../tests/pipeline.rs

crates/bench/../../tests/pipeline.rs:
