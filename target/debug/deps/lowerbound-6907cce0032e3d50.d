/root/repo/target/debug/deps/lowerbound-6907cce0032e3d50.d: crates/bench/src/bin/lowerbound.rs

/root/repo/target/debug/deps/lowerbound-6907cce0032e3d50: crates/bench/src/bin/lowerbound.rs

crates/bench/src/bin/lowerbound.rs:
