/root/repo/target/debug/deps/invariants-2f1c1a4243c1cc0b.d: crates/bench/src/bin/invariants.rs

/root/repo/target/debug/deps/libinvariants-2f1c1a4243c1cc0b.rmeta: crates/bench/src/bin/invariants.rs

crates/bench/src/bin/invariants.rs:
