/root/repo/target/debug/deps/stream_equivalence-0ad7dc7cc5bb0169.d: crates/bench/../../tests/stream_equivalence.rs

/root/repo/target/debug/deps/stream_equivalence-0ad7dc7cc5bb0169: crates/bench/../../tests/stream_equivalence.rs

crates/bench/../../tests/stream_equivalence.rs:
