/root/repo/target/debug/deps/table1-a852d04dfab942e1.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a852d04dfab942e1: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
