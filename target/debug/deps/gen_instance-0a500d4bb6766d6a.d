/root/repo/target/debug/deps/gen_instance-0a500d4bb6766d6a.d: crates/bench/src/bin/gen_instance.rs Cargo.toml

/root/repo/target/debug/deps/libgen_instance-0a500d4bb6766d6a.rmeta: crates/bench/src/bin/gen_instance.rs Cargo.toml

crates/bench/src/bin/gen_instance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
