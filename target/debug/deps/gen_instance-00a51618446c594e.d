/root/repo/target/debug/deps/gen_instance-00a51618446c594e.d: crates/bench/src/bin/gen_instance.rs

/root/repo/target/debug/deps/libgen_instance-00a51618446c594e.rmeta: crates/bench/src/bin/gen_instance.rs

crates/bench/src/bin/gen_instance.rs:
