/root/repo/target/debug/deps/setcover_algos-2a8899460795532d.d: crates/algos/src/lib.rs crates/algos/src/adversarial.rs crates/algos/src/amplify.rs crates/algos/src/common.rs crates/algos/src/dominating.rs crates/algos/src/element_sampling.rs crates/algos/src/greedy.rs crates/algos/src/kk.rs crates/algos/src/multipass.rs crates/algos/src/packing.rs crates/algos/src/random_order.rs crates/algos/src/set_arrival.rs crates/algos/src/trivial.rs

/root/repo/target/debug/deps/libsetcover_algos-2a8899460795532d.rmeta: crates/algos/src/lib.rs crates/algos/src/adversarial.rs crates/algos/src/amplify.rs crates/algos/src/common.rs crates/algos/src/dominating.rs crates/algos/src/element_sampling.rs crates/algos/src/greedy.rs crates/algos/src/kk.rs crates/algos/src/multipass.rs crates/algos/src/packing.rs crates/algos/src/random_order.rs crates/algos/src/set_arrival.rs crates/algos/src/trivial.rs

crates/algos/src/lib.rs:
crates/algos/src/adversarial.rs:
crates/algos/src/amplify.rs:
crates/algos/src/common.rs:
crates/algos/src/dominating.rs:
crates/algos/src/element_sampling.rs:
crates/algos/src/greedy.rs:
crates/algos/src/kk.rs:
crates/algos/src/multipass.rs:
crates/algos/src/packing.rs:
crates/algos/src/random_order.rs:
crates/algos/src/set_arrival.rs:
crates/algos/src/trivial.rs:
