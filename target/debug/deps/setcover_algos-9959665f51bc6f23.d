/root/repo/target/debug/deps/setcover_algos-9959665f51bc6f23.d: crates/algos/src/lib.rs crates/algos/src/adversarial.rs crates/algos/src/amplify.rs crates/algos/src/common.rs crates/algos/src/dominating.rs crates/algos/src/element_sampling.rs crates/algos/src/greedy.rs crates/algos/src/kk.rs crates/algos/src/multipass.rs crates/algos/src/packing.rs crates/algos/src/random_order.rs crates/algos/src/set_arrival.rs crates/algos/src/trivial.rs Cargo.toml

/root/repo/target/debug/deps/libsetcover_algos-9959665f51bc6f23.rmeta: crates/algos/src/lib.rs crates/algos/src/adversarial.rs crates/algos/src/amplify.rs crates/algos/src/common.rs crates/algos/src/dominating.rs crates/algos/src/element_sampling.rs crates/algos/src/greedy.rs crates/algos/src/kk.rs crates/algos/src/multipass.rs crates/algos/src/packing.rs crates/algos/src/random_order.rs crates/algos/src/set_arrival.rs crates/algos/src/trivial.rs Cargo.toml

crates/algos/src/lib.rs:
crates/algos/src/adversarial.rs:
crates/algos/src/amplify.rs:
crates/algos/src/common.rs:
crates/algos/src/dominating.rs:
crates/algos/src/element_sampling.rs:
crates/algos/src/greedy.rs:
crates/algos/src/kk.rs:
crates/algos/src/multipass.rs:
crates/algos/src/packing.rs:
crates/algos/src/random_order.rs:
crates/algos/src/set_arrival.rs:
crates/algos/src/trivial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
