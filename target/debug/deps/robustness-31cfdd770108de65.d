/root/repo/target/debug/deps/robustness-31cfdd770108de65.d: crates/bench/src/bin/robustness.rs

/root/repo/target/debug/deps/librobustness-31cfdd770108de65.rmeta: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
