/root/repo/target/debug/deps/setcover_bench-90d254e454934ead.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/alpha_sweep.rs crates/bench/src/experiments/approx_scaling.rs crates/bench/src/experiments/concentration.rs crates/bench/src/experiments/invariants.rs crates/bench/src/experiments/lowerbound.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/separation.rs crates/bench/src/experiments/table1.rs crates/bench/src/harness.rs crates/bench/src/obs.rs crates/bench/src/par.rs crates/bench/src/stats.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libsetcover_bench-90d254e454934ead.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/alpha_sweep.rs crates/bench/src/experiments/approx_scaling.rs crates/bench/src/experiments/concentration.rs crates/bench/src/experiments/invariants.rs crates/bench/src/experiments/lowerbound.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/separation.rs crates/bench/src/experiments/table1.rs crates/bench/src/harness.rs crates/bench/src/obs.rs crates/bench/src/par.rs crates/bench/src/stats.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/alpha_sweep.rs:
crates/bench/src/experiments/approx_scaling.rs:
crates/bench/src/experiments/concentration.rs:
crates/bench/src/experiments/invariants.rs:
crates/bench/src/experiments/lowerbound.rs:
crates/bench/src/experiments/robustness.rs:
crates/bench/src/experiments/separation.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/harness.rs:
crates/bench/src/obs.rs:
crates/bench/src/par.rs:
crates/bench/src/stats.rs:
crates/bench/src/table.rs:
