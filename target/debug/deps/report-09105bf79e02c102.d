/root/repo/target/debug/deps/report-09105bf79e02c102.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-09105bf79e02c102.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
