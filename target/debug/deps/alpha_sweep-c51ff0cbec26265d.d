/root/repo/target/debug/deps/alpha_sweep-c51ff0cbec26265d.d: crates/bench/src/bin/alpha_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libalpha_sweep-c51ff0cbec26265d.rmeta: crates/bench/src/bin/alpha_sweep.rs Cargo.toml

crates/bench/src/bin/alpha_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
