/root/repo/target/debug/deps/alpha_sweep-643be3bf7f731e4e.d: crates/bench/src/bin/alpha_sweep.rs

/root/repo/target/debug/deps/libalpha_sweep-643be3bf7f731e4e.rmeta: crates/bench/src/bin/alpha_sweep.rs

crates/bench/src/bin/alpha_sweep.rs:
