/root/repo/target/debug/deps/streams-57c1ad436a0c8453.d: crates/bench/benches/streams.rs

/root/repo/target/debug/deps/streams-57c1ad436a0c8453: crates/bench/benches/streams.rs

crates/bench/benches/streams.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
