/root/repo/target/debug/deps/io_roundtrip-d990c07c90891f87.d: crates/bench/../../tests/io_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libio_roundtrip-d990c07c90891f87.rmeta: crates/bench/../../tests/io_roundtrip.rs Cargo.toml

crates/bench/../../tests/io_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
