/root/repo/target/debug/deps/lowerbound-6fd2f3b921cf156f.d: crates/bench/src/bin/lowerbound.rs Cargo.toml

/root/repo/target/debug/deps/liblowerbound-6fd2f3b921cf156f.rmeta: crates/bench/src/bin/lowerbound.rs Cargo.toml

crates/bench/src/bin/lowerbound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
