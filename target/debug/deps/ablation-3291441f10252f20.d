/root/repo/target/debug/deps/ablation-3291441f10252f20.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-3291441f10252f20.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
