/root/repo/target/debug/deps/pipeline-dad1aa42e23b9f1a.d: crates/bench/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-dad1aa42e23b9f1a: crates/bench/../../tests/pipeline.rs

crates/bench/../../tests/pipeline.rs:
