/root/repo/target/debug/deps/approx_scaling-8dfcacfb33f513d6.d: crates/bench/src/bin/approx_scaling.rs

/root/repo/target/debug/deps/libapprox_scaling-8dfcacfb33f513d6.rmeta: crates/bench/src/bin/approx_scaling.rs

crates/bench/src/bin/approx_scaling.rs:
