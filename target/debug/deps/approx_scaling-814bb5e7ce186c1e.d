/root/repo/target/debug/deps/approx_scaling-814bb5e7ce186c1e.d: crates/bench/src/bin/approx_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libapprox_scaling-814bb5e7ce186c1e.rmeta: crates/bench/src/bin/approx_scaling.rs Cargo.toml

crates/bench/src/bin/approx_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
