/root/repo/target/debug/deps/gen_instance-547f655604221e11.d: crates/bench/src/bin/gen_instance.rs

/root/repo/target/debug/deps/gen_instance-547f655604221e11: crates/bench/src/bin/gen_instance.rs

crates/bench/src/bin/gen_instance.rs:
