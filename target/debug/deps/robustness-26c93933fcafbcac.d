/root/repo/target/debug/deps/robustness-26c93933fcafbcac.d: crates/bench/../../tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-26c93933fcafbcac.rmeta: crates/bench/../../tests/robustness.rs Cargo.toml

crates/bench/../../tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
