/root/repo/target/debug/deps/lowerbound_integration-1a234666b2699e33.d: crates/bench/../../tests/lowerbound_integration.rs

/root/repo/target/debug/deps/lowerbound_integration-1a234666b2699e33: crates/bench/../../tests/lowerbound_integration.rs

crates/bench/../../tests/lowerbound_integration.rs:
