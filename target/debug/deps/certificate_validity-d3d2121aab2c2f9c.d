/root/repo/target/debug/deps/certificate_validity-d3d2121aab2c2f9c.d: crates/bench/../../tests/certificate_validity.rs

/root/repo/target/debug/deps/certificate_validity-d3d2121aab2c2f9c: crates/bench/../../tests/certificate_validity.rs

crates/bench/../../tests/certificate_validity.rs:
