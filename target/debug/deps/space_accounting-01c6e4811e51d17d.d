/root/repo/target/debug/deps/space_accounting-01c6e4811e51d17d.d: crates/bench/../../tests/space_accounting.rs

/root/repo/target/debug/deps/space_accounting-01c6e4811e51d17d: crates/bench/../../tests/space_accounting.rs

crates/bench/../../tests/space_accounting.rs:
