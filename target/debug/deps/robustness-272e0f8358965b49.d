/root/repo/target/debug/deps/robustness-272e0f8358965b49.d: crates/bench/src/bin/robustness.rs

/root/repo/target/debug/deps/robustness-272e0f8358965b49: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
