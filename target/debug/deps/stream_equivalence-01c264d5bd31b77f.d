/root/repo/target/debug/deps/stream_equivalence-01c264d5bd31b77f.d: crates/bench/../../tests/stream_equivalence.rs

/root/repo/target/debug/deps/stream_equivalence-01c264d5bd31b77f: crates/bench/../../tests/stream_equivalence.rs

crates/bench/../../tests/stream_equivalence.rs:
