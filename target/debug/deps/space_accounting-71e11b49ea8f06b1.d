/root/repo/target/debug/deps/space_accounting-71e11b49ea8f06b1.d: crates/bench/../../tests/space_accounting.rs Cargo.toml

/root/repo/target/debug/deps/libspace_accounting-71e11b49ea8f06b1.rmeta: crates/bench/../../tests/space_accounting.rs Cargo.toml

crates/bench/../../tests/space_accounting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
