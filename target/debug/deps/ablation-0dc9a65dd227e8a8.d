/root/repo/target/debug/deps/ablation-0dc9a65dd227e8a8.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-0dc9a65dd227e8a8.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
