/root/repo/target/debug/deps/streams-c89117cb402839b6.d: crates/bench/benches/streams.rs

/root/repo/target/debug/deps/streams-c89117cb402839b6: crates/bench/benches/streams.rs

crates/bench/benches/streams.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
