/root/repo/target/debug/deps/setcover_gen-ae59505d3401d941.d: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libsetcover_gen-ae59505d3401d941.rmeta: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/coverage.rs:
crates/gen/src/dominating.rs:
crates/gen/src/hard.rs:
crates/gen/src/lowerbound.rs:
crates/gen/src/planted.rs:
crates/gen/src/uniform.rs:
crates/gen/src/web.rs:
crates/gen/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
