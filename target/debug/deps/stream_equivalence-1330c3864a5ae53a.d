/root/repo/target/debug/deps/stream_equivalence-1330c3864a5ae53a.d: crates/bench/../../tests/stream_equivalence.rs

/root/repo/target/debug/deps/libstream_equivalence-1330c3864a5ae53a.rmeta: crates/bench/../../tests/stream_equivalence.rs

crates/bench/../../tests/stream_equivalence.rs:
