/root/repo/target/debug/deps/setcover_core-7c2cb2966727be16.d: crates/core/src/lib.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/io.rs crates/core/src/math.rs crates/core/src/obs.rs crates/core/src/rng.rs crates/core/src/solver.rs crates/core/src/space.rs crates/core/src/stream.rs crates/core/src/stream/chaos.rs crates/core/src/stream/guard.rs Cargo.toml

/root/repo/target/debug/deps/libsetcover_core-7c2cb2966727be16.rmeta: crates/core/src/lib.rs crates/core/src/cover.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/io.rs crates/core/src/math.rs crates/core/src/obs.rs crates/core/src/rng.rs crates/core/src/solver.rs crates/core/src/space.rs crates/core/src/stream.rs crates/core/src/stream/chaos.rs crates/core/src/stream/guard.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cover.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/instance.rs:
crates/core/src/io.rs:
crates/core/src/math.rs:
crates/core/src/obs.rs:
crates/core/src/rng.rs:
crates/core/src/solver.rs:
crates/core/src/space.rs:
crates/core/src/stream.rs:
crates/core/src/stream/chaos.rs:
crates/core/src/stream/guard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
