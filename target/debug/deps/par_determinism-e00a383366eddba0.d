/root/repo/target/debug/deps/par_determinism-e00a383366eddba0.d: crates/bench/../../tests/par_determinism.rs

/root/repo/target/debug/deps/par_determinism-e00a383366eddba0: crates/bench/../../tests/par_determinism.rs

crates/bench/../../tests/par_determinism.rs:
