/root/repo/target/debug/deps/components-8058d7d3659dee2d.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-8058d7d3659dee2d.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
