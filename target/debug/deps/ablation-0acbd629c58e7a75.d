/root/repo/target/debug/deps/ablation-0acbd629c58e7a75.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-0acbd629c58e7a75.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
