/root/repo/target/debug/deps/setcover_comm-96df43d1a9fb5261.d: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

/root/repo/target/debug/deps/libsetcover_comm-96df43d1a9fb5261.rmeta: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs

crates/comm/src/lib.rs:
crates/comm/src/budgeted.rs:
crates/comm/src/disjointness.rs:
crates/comm/src/party.rs:
crates/comm/src/reduction.rs:
crates/comm/src/simple_protocol.rs:
crates/comm/src/sweep.rs:
