/root/repo/target/debug/deps/streams-265017f0179e87d8.d: crates/bench/benches/streams.rs

/root/repo/target/debug/deps/libstreams-265017f0179e87d8.rmeta: crates/bench/benches/streams.rs

crates/bench/benches/streams.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
