/root/repo/target/debug/deps/robustness-06e26d6789334194.d: crates/bench/../../tests/robustness.rs

/root/repo/target/debug/deps/robustness-06e26d6789334194: crates/bench/../../tests/robustness.rs

crates/bench/../../tests/robustness.rs:
