/root/repo/target/debug/deps/generators-ed85c05c254dd3f9.d: crates/bench/benches/generators.rs

/root/repo/target/debug/deps/generators-ed85c05c254dd3f9: crates/bench/benches/generators.rs

crates/bench/benches/generators.rs:
