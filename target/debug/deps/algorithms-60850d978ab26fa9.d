/root/repo/target/debug/deps/algorithms-60850d978ab26fa9.d: crates/bench/benches/algorithms.rs

/root/repo/target/debug/deps/libalgorithms-60850d978ab26fa9.rmeta: crates/bench/benches/algorithms.rs

crates/bench/benches/algorithms.rs:
