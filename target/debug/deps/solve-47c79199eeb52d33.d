/root/repo/target/debug/deps/solve-47c79199eeb52d33.d: crates/bench/src/bin/solve.rs

/root/repo/target/debug/deps/libsolve-47c79199eeb52d33.rmeta: crates/bench/src/bin/solve.rs

crates/bench/src/bin/solve.rs:
