/root/repo/target/debug/deps/separation-02c2461dc8000c79.d: crates/bench/src/bin/separation.rs

/root/repo/target/debug/deps/libseparation-02c2461dc8000c79.rmeta: crates/bench/src/bin/separation.rs

crates/bench/src/bin/separation.rs:
