/root/repo/target/debug/deps/report-3cf23927502539b3.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/libreport-3cf23927502539b3.rmeta: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
