/root/repo/target/debug/deps/concentration-149746d61a88c124.d: crates/bench/src/bin/concentration.rs

/root/repo/target/debug/deps/concentration-149746d61a88c124: crates/bench/src/bin/concentration.rs

crates/bench/src/bin/concentration.rs:
