/root/repo/target/debug/deps/separation-634adac411f738a8.d: crates/bench/src/bin/separation.rs Cargo.toml

/root/repo/target/debug/deps/libseparation-634adac411f738a8.rmeta: crates/bench/src/bin/separation.rs Cargo.toml

crates/bench/src/bin/separation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
