/root/repo/target/debug/deps/ablation-4113e382234d5a28.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4113e382234d5a28: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
