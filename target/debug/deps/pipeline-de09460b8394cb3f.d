/root/repo/target/debug/deps/pipeline-de09460b8394cb3f.d: crates/bench/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-de09460b8394cb3f.rmeta: crates/bench/../../tests/pipeline.rs Cargo.toml

crates/bench/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
