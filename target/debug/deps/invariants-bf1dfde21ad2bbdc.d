/root/repo/target/debug/deps/invariants-bf1dfde21ad2bbdc.d: crates/bench/src/bin/invariants.rs

/root/repo/target/debug/deps/invariants-bf1dfde21ad2bbdc: crates/bench/src/bin/invariants.rs

crates/bench/src/bin/invariants.rs:
