/root/repo/target/debug/deps/rand-df10ed73b85bd6bf.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

/root/repo/target/debug/deps/librand-df10ed73b85bd6bf.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs crates/rand/src/seq.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
crates/rand/src/seq.rs:
