/root/repo/target/debug/deps/solve-72677fe5237e6c1d.d: crates/bench/src/bin/solve.rs Cargo.toml

/root/repo/target/debug/deps/libsolve-72677fe5237e6c1d.rmeta: crates/bench/src/bin/solve.rs Cargo.toml

crates/bench/src/bin/solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
