/root/repo/target/debug/deps/separation-2c04d9e2ec92661d.d: crates/bench/src/bin/separation.rs

/root/repo/target/debug/deps/separation-2c04d9e2ec92661d: crates/bench/src/bin/separation.rs

crates/bench/src/bin/separation.rs:
