/root/repo/target/debug/deps/setcover_gen-179baf7ec3cda93b.d: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

/root/repo/target/debug/deps/libsetcover_gen-179baf7ec3cda93b.rlib: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

/root/repo/target/debug/deps/libsetcover_gen-179baf7ec3cda93b.rmeta: crates/gen/src/lib.rs crates/gen/src/coverage.rs crates/gen/src/dominating.rs crates/gen/src/hard.rs crates/gen/src/lowerbound.rs crates/gen/src/planted.rs crates/gen/src/uniform.rs crates/gen/src/web.rs crates/gen/src/zipf.rs

crates/gen/src/lib.rs:
crates/gen/src/coverage.rs:
crates/gen/src/dominating.rs:
crates/gen/src/hard.rs:
crates/gen/src/lowerbound.rs:
crates/gen/src/planted.rs:
crates/gen/src/uniform.rs:
crates/gen/src/web.rs:
crates/gen/src/zipf.rs:
