/root/repo/target/debug/deps/certificate_validity-4b3a96b4d5ebaf1c.d: crates/bench/../../tests/certificate_validity.rs

/root/repo/target/debug/deps/libcertificate_validity-4b3a96b4d5ebaf1c.rmeta: crates/bench/../../tests/certificate_validity.rs

crates/bench/../../tests/certificate_validity.rs:
