/root/repo/target/debug/deps/par_determinism-478a2b2502b16a8d.d: crates/bench/../../tests/par_determinism.rs

/root/repo/target/debug/deps/libpar_determinism-478a2b2502b16a8d.rmeta: crates/bench/../../tests/par_determinism.rs

crates/bench/../../tests/par_determinism.rs:
