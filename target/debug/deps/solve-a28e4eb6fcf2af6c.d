/root/repo/target/debug/deps/solve-a28e4eb6fcf2af6c.d: crates/bench/src/bin/solve.rs

/root/repo/target/debug/deps/solve-a28e4eb6fcf2af6c: crates/bench/src/bin/solve.rs

crates/bench/src/bin/solve.rs:
