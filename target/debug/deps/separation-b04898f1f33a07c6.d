/root/repo/target/debug/deps/separation-b04898f1f33a07c6.d: crates/bench/src/bin/separation.rs

/root/repo/target/debug/deps/libseparation-b04898f1f33a07c6.rmeta: crates/bench/src/bin/separation.rs

crates/bench/src/bin/separation.rs:
