/root/repo/target/debug/deps/lowerbound-e75ab3f4c3f470be.d: crates/bench/src/bin/lowerbound.rs Cargo.toml

/root/repo/target/debug/deps/liblowerbound-e75ab3f4c3f470be.rmeta: crates/bench/src/bin/lowerbound.rs Cargo.toml

crates/bench/src/bin/lowerbound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
