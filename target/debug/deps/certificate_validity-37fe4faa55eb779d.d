/root/repo/target/debug/deps/certificate_validity-37fe4faa55eb779d.d: crates/bench/../../tests/certificate_validity.rs Cargo.toml

/root/repo/target/debug/deps/libcertificate_validity-37fe4faa55eb779d.rmeta: crates/bench/../../tests/certificate_validity.rs Cargo.toml

crates/bench/../../tests/certificate_validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
