/root/repo/target/debug/deps/setcover_comm-de612a07959399e4.d: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsetcover_comm-de612a07959399e4.rmeta: crates/comm/src/lib.rs crates/comm/src/budgeted.rs crates/comm/src/disjointness.rs crates/comm/src/party.rs crates/comm/src/reduction.rs crates/comm/src/simple_protocol.rs crates/comm/src/sweep.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/budgeted.rs:
crates/comm/src/disjointness.rs:
crates/comm/src/party.rs:
crates/comm/src/reduction.rs:
crates/comm/src/simple_protocol.rs:
crates/comm/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
