/root/repo/target/debug/deps/lowerbound_integration-f8902e2766a600a6.d: crates/bench/../../tests/lowerbound_integration.rs

/root/repo/target/debug/deps/liblowerbound_integration-f8902e2766a600a6.rmeta: crates/bench/../../tests/lowerbound_integration.rs

crates/bench/../../tests/lowerbound_integration.rs:
