/root/repo/target/debug/deps/obs-c4e4fc86971c51f1.d: crates/bench/../../tests/obs.rs

/root/repo/target/debug/deps/libobs-c4e4fc86971c51f1.rmeta: crates/bench/../../tests/obs.rs

crates/bench/../../tests/obs.rs:
