/root/repo/target/debug/deps/robustness-62da4bafd001b4fa.d: crates/bench/src/bin/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-62da4bafd001b4fa.rmeta: crates/bench/src/bin/robustness.rs Cargo.toml

crates/bench/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
