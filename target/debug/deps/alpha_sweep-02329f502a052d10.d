/root/repo/target/debug/deps/alpha_sweep-02329f502a052d10.d: crates/bench/src/bin/alpha_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libalpha_sweep-02329f502a052d10.rmeta: crates/bench/src/bin/alpha_sweep.rs Cargo.toml

crates/bench/src/bin/alpha_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
