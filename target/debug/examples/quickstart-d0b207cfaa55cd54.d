/root/repo/target/debug/examples/quickstart-d0b207cfaa55cd54.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d0b207cfaa55cd54.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
