/root/repo/target/debug/examples/blog_watch-7e500468ede359e9.d: crates/bench/../../examples/blog_watch.rs Cargo.toml

/root/repo/target/debug/examples/libblog_watch-7e500468ede359e9.rmeta: crates/bench/../../examples/blog_watch.rs Cargo.toml

crates/bench/../../examples/blog_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
