/root/repo/target/debug/examples/dominating_set-5a4fca99a4130f15.d: crates/bench/../../examples/dominating_set.rs

/root/repo/target/debug/examples/libdominating_set-5a4fca99a4130f15.rmeta: crates/bench/../../examples/dominating_set.rs

crates/bench/../../examples/dominating_set.rs:
