/root/repo/target/debug/examples/quickstart-e2496bdab5075b75.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e2496bdab5075b75: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
