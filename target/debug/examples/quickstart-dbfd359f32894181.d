/root/repo/target/debug/examples/quickstart-dbfd359f32894181.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-dbfd359f32894181.rmeta: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
