/root/repo/target/debug/examples/dominating_set-d9ade548c88592e2.d: crates/bench/../../examples/dominating_set.rs

/root/repo/target/debug/examples/dominating_set-d9ade548c88592e2: crates/bench/../../examples/dominating_set.rs

crates/bench/../../examples/dominating_set.rs:
