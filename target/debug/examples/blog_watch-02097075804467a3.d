/root/repo/target/debug/examples/blog_watch-02097075804467a3.d: crates/bench/../../examples/blog_watch.rs

/root/repo/target/debug/examples/libblog_watch-02097075804467a3.rmeta: crates/bench/../../examples/blog_watch.rs

crates/bench/../../examples/blog_watch.rs:
