/root/repo/target/debug/examples/adversarial_vs_random-f77caf19375aae7e.d: crates/bench/../../examples/adversarial_vs_random.rs

/root/repo/target/debug/examples/libadversarial_vs_random-f77caf19375aae7e.rmeta: crates/bench/../../examples/adversarial_vs_random.rs

crates/bench/../../examples/adversarial_vs_random.rs:
