/root/repo/target/debug/examples/adversarial_vs_random-8c3ea59cac256ff8.d: crates/bench/../../examples/adversarial_vs_random.rs Cargo.toml

/root/repo/target/debug/examples/libadversarial_vs_random-8c3ea59cac256ff8.rmeta: crates/bench/../../examples/adversarial_vs_random.rs Cargo.toml

crates/bench/../../examples/adversarial_vs_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
