/root/repo/target/debug/examples/blog_watch-a7216e5a58ab0926.d: crates/bench/../../examples/blog_watch.rs

/root/repo/target/debug/examples/blog_watch-a7216e5a58ab0926: crates/bench/../../examples/blog_watch.rs

crates/bench/../../examples/blog_watch.rs:
