/root/repo/target/debug/examples/adversarial_vs_random-6d0bf09e54a9fdec.d: crates/bench/../../examples/adversarial_vs_random.rs

/root/repo/target/debug/examples/adversarial_vs_random-6d0bf09e54a9fdec: crates/bench/../../examples/adversarial_vs_random.rs

crates/bench/../../examples/adversarial_vs_random.rs:
