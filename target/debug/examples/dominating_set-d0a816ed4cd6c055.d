/root/repo/target/debug/examples/dominating_set-d0a816ed4cd6c055.d: crates/bench/../../examples/dominating_set.rs Cargo.toml

/root/repo/target/debug/examples/libdominating_set-d0a816ed4cd6c055.rmeta: crates/bench/../../examples/dominating_set.rs Cargo.toml

crates/bench/../../examples/dominating_set.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
