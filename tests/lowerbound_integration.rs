//! Integration tests for the Theorem 2 machinery: the reduction game with
//! both eligible solvers, promise-instance properties at scale, and the
//! simple t-party protocol's guarantees.

use setcover_algos::{AdversarialConfig, AdversarialSolver, KkSolver};
use setcover_comm::disjointness::{DisjCase, DisjointnessInstance};
use setcover_comm::reduction::{run_reduction, ReductionOutcome};
use setcover_comm::simple_protocol::{
    assign_sets_round_robin, run_simple_protocol, split_instance_across_parties,
};
use setcover_gen::lowerbound::{LbFamily, LbFamilyConfig};
use setcover_gen::planted::{planted, PlantedConfig};

fn game(case: DisjCase, seed: u64) -> (ReductionOutcome, DisjointnessInstance) {
    let cfg = LbFamilyConfig {
        n: 4096,
        m: 101,
        t: 8,
    };
    let fam = LbFamily::generate(cfg, seed);
    let disj = DisjointnessInstance::generate(101, 8, case, seed);
    assert!(disj.verify_promise());
    let maxint = fam.max_part_intersection_sampled(400, seed).max(1);
    let out = run_reduction(&fam, &disj, maxint, |m, n| KkSolver::new(m, n, seed));
    (out, disj)
}

#[test]
fn reduction_distinguishes_over_multiple_seeds() {
    // Calibrate on seeds 100.. and evaluate on 0..3: the gap must let a
    // fixed threshold classify all evaluation instances.
    let cal_i = game(DisjCase::UniquelyIntersecting, 100).0.best_estimate;
    let cal_d = game(DisjCase::PairwiseDisjoint, 100).0.best_estimate;
    assert!(cal_i < cal_d, "no gap at calibration: {cal_i} vs {cal_d}");
    let threshold = (cal_i + cal_d) / 2;

    for seed in 0..3u64 {
        let (oi, di) = game(DisjCase::UniquelyIntersecting, seed);
        assert!(
            oi.correct(threshold, DisjCase::UniquelyIntersecting),
            "seed {seed}"
        );
        // The best run is the common index.
        assert_eq!(oi.best_run as u32, di.intersection.unwrap(), "seed {seed}");
        let (od, _) = game(DisjCase::PairwiseDisjoint, seed);
        assert!(
            od.correct(threshold, DisjCase::PairwiseDisjoint),
            "seed {seed}"
        );
    }
}

#[test]
fn reduction_works_with_algorithm_2_as_the_streaming_algorithm() {
    let cfg = LbFamilyConfig {
        n: 4096,
        m: 101,
        t: 8,
    };
    let fam = LbFamily::generate(cfg, 7);
    let maxint = fam.max_part_intersection_sampled(400, 7).max(1);

    let run = |case| {
        let disj = DisjointnessInstance::generate(101, 8, case, 7);
        run_reduction(&fam, &disj, maxint, |m, n| {
            // Algorithm 2 with α = 2√n — the low-space regime.
            AdversarialSolver::new(m, n, AdversarialConfig::sqrt_n(4096), 7)
        })
        .best_estimate
    };
    let inter = run(DisjCase::UniquelyIntersecting);
    let disj = run(DisjCase::PairwiseDisjoint);
    // Algorithm 2 also separates the cases (its D-levels pick the full
    // T_{b*} with high probability once it accumulates promotions).
    assert!(
        inter < disj,
        "algorithm 2 shows no gap: intersecting {inter} vs disjoint {disj}"
    );
}

#[test]
fn family_scales_preserve_lemma1() {
    for (n, m, t) in [(1024usize, 51usize, 4usize), (4096, 101, 8)] {
        let fam = LbFamily::generate(LbFamilyConfig { n, m, t }, 3);
        let max = fam.max_part_intersection_sampled(1500, 9);
        let log_n = setcover_core::math::log2f(n);
        assert!(
            (max as f64) <= 3.0 * log_n,
            "n={n}: max intersection {max} above 3·log₂n = {:.1}",
            3.0 * log_n
        );
    }
}

#[test]
fn simple_protocol_meets_its_bound_on_split_inputs() {
    let p = planted(&PlantedConfig::exact(900, 1800, 10), 5);
    let inst = &p.workload.instance;
    for t in [2usize, 3, 6, 9] {
        let parties = split_instance_across_parties(inst, t);
        let out = run_simple_protocol(inst.n(), &parties);
        // Coverage check.
        let mut covered = vec![false; inst.n()];
        for &s in &out.cover_sets {
            for &u in inst.set(s) {
                covered[u.index()] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "t={t}: not a cover");
        // Ratio bound 2√(nt) per the protocol's analysis.
        let bound = 2.0 * ((inst.n() * t) as f64).sqrt();
        let ratio = out.cover_size() as f64 / 10.0;
        assert!(ratio <= bound, "t={t}: ratio {ratio} above {bound}");
        // Message size Õ(n), not Θ(m).
        assert!(out.messages.max_message_words() <= 4 * inst.n());
    }
}

#[test]
fn simple_protocol_on_whole_set_assignment_acts_like_sqrt_n() {
    let p = planted(&PlantedConfig::exact(400, 800, 10), 6);
    let inst = &p.workload.instance;
    let parties = assign_sets_round_robin(inst, 4);
    let out = run_simple_protocol(inst.n(), &parties);
    let mut covered = vec![false; inst.n()];
    for &s in &out.cover_sets {
        for &u in inst.set(s) {
            covered[u.index()] = true;
        }
    }
    assert!(covered.iter().all(|&c| c));
    // Whole sets are easier than split sets: threshold √(n/t) = 10 and
    // planted sets of size 40 get picked as wholes.
    assert!(out.cover_size() as f64 / 10.0 <= 2.0 * (400f64).sqrt());
}

#[test]
fn message_sizes_reflect_algorithm_state() {
    let cfg = LbFamilyConfig {
        n: 1024,
        m: 51,
        t: 4,
    };
    let fam = LbFamily::generate(cfg, 8);
    let disj = DisjointnessInstance::generate(51, 4, DisjCase::PairwiseDisjoint, 8);
    let maxint = 5;
    let out = run_reduction(&fam, &disj, maxint, |m, n| KkSolver::new(m, n, 9));
    assert_eq!(out.messages.len(), 4);
    // KK forwards Θ(m_instance + n) words at every boundary.
    for h in &out.messages.handoffs {
        assert!(
            h.state_words >= 52,
            "party {} state too small",
            h.from_party
        );
    }
    assert!(out.messages.total_words() >= out.messages.max_message_words());
}
