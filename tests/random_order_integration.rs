//! Integration tests for Algorithm 1 (Theorem 3) beyond unit scope:
//! the N-guessing wrapper, paper-faithful vs practical presets, the
//! |Sol| ≤ n cap, and the Õ(m/√n) space claim at m = Ω̃(n²) scale.

use setcover_algos::{BestOfK, KkSolver, NGuessing, RandomOrderConfig, RandomOrderSolver};
use setcover_core::math::isqrt;
use setcover_core::solver::{run_on_edges, run_streaming};
use setcover_core::space::SpaceComponent;
use setcover_core::stream::{order_edges, stream_of, StreamOrder};
use setcover_core::StreamingSetCover;
use setcover_gen::planted::{planted, PlantedConfig};

#[test]
fn n_guessing_without_knowing_stream_length() {
    let p = planted(&PlantedConfig::exact(144, 2880, 12), 1);
    let inst = &p.workload.instance;
    let out = run_streaming(
        NGuessing::new(inst.m(), inst.n(), RandomOrderConfig::practical(), 3),
        stream_of(inst, StreamOrder::Uniform(4)),
    );
    out.cover.verify(inst).unwrap();
    // Guesses span m/√n .. m·n.
    let g = NGuessing::new(inst.m(), inst.n(), RandomOrderConfig::practical(), 3);
    assert!(g.guesses()[0] <= inst.num_edges());
    assert!(*g.guesses().last().unwrap() >= inst.num_edges());
}

#[test]
fn space_is_m_over_sqrt_n_scale_at_paper_regime() {
    // m = n² / 4 — the Theorem 3 regime m = Ω̃(n²).
    let n = 196;
    let m = n * n / 4;
    let p = planted(&PlantedConfig::exact(n, m, 7), 2);
    let inst = &p.workload.instance;
    let out = run_streaming(
        RandomOrderSolver::new(m, n, inst.num_edges(), RandomOrderConfig::practical(), 5),
        stream_of(inst, StreamOrder::Uniform(6)),
    );
    out.cover.verify(inst).unwrap();
    let batch = m.div_ceil(isqrt(n));
    let counters = out
        .space
        .peak_by_component
        .iter()
        .find(|(c, _)| *c == SpaceComponent::Counters)
        .map(|(_, w)| *w)
        .unwrap();
    // Per-set counters = n (epoch 0, transient) + m/√n (batch).
    assert_eq!(counters, n + batch);
    // Strict sublinearity in m: total algorithmic words ≪ m.
    assert!(
        out.space.algorithmic_peak_words() < m / 2,
        "algorithmic words {} not sublinear in m = {m}",
        out.space.algorithmic_peak_words()
    );
    // And far below what KK uses on the same instance.
    let kk = run_streaming(
        KkSolver::new(m, n, 5),
        stream_of(inst, StreamOrder::Uniform(6)),
    );
    assert!(out.space.algorithmic_peak_words() * 2 < kk.space.algorithmic_peak_words());
}

#[test]
fn paper_faithful_never_promotes_at_laptop_scale() {
    // With the literal log^6 m threshold, no set becomes special, so Sol
    // is exactly the epoch-0 sample — documenting the vacuity DESIGN.md
    // describes (and why the practical preset exists).
    let p = planted(&PlantedConfig::exact(100, 2500, 10), 3);
    let inst = &p.workload.instance;
    let mut solver = RandomOrderSolver::new(
        inst.m(),
        inst.n(),
        inst.num_edges(),
        RandomOrderConfig::paper_faithful().with_probe(),
        7,
    );
    for e in order_edges(inst, StreamOrder::Uniform(8)) {
        solver.process_edge(e);
    }
    let cover = solver.finalize();
    cover.verify(inst).unwrap();
    let probe = solver.take_probe().unwrap();
    let specials: usize = probe.epochs.iter().map(|e| e.specials).sum();
    assert_eq!(specials, 0, "log^6 m thresholds cannot fire at n = 100");
    assert!(probe.epoch0_sampled > 0);
}

#[test]
fn practical_preset_fires_the_machinery_on_large_planted_sets() {
    // Large planted sets among sub-√n decoys: the A^(i) machinery must
    // detect specials under the practical preset.
    let n = 2048;
    let m = 8 * n;
    let sqrt_n = isqrt(n);
    let p = planted(
        &PlantedConfig::exact(n, m, 4).with_decoy_size(sqrt_n / 4, sqrt_n / 2),
        4,
    );
    let inst = &p.workload.instance;
    let mut solver = RandomOrderSolver::new(
        m,
        n,
        inst.num_edges(),
        RandomOrderConfig::practical().with_probe(),
        9,
    );
    for e in order_edges(inst, StreamOrder::Uniform(10)) {
        solver.process_edge(e);
    }
    let cover = solver.finalize();
    cover.verify(inst).unwrap();
    let probe = solver.take_probe().unwrap();
    let specials: usize = probe.epochs.iter().map(|e| e.specials).sum();
    assert!(
        specials > 0,
        "practical preset should detect special sets here"
    );
}

#[test]
fn degenerate_cap_reports_trivial_cover() {
    // Force |Sol| ≥ n by a huge sampling constant: the solver must fall
    // back to the first-set cover per the §4.2 cap, still valid.
    let p = planted(&PlantedConfig::exact(40, 4000, 4), 5);
    let inst = &p.workload.instance;
    let mut cfg = RandomOrderConfig::practical();
    cfg.c = 1e6; // p0 ≈ 1: tries to sample every set
    let out = run_streaming(
        RandomOrderSolver::new(inst.m(), inst.n(), inst.num_edges(), cfg, 6),
        stream_of(inst, StreamOrder::Uniform(7)),
    );
    out.cover.verify(inst).unwrap();
    assert!(out.cover.size() <= inst.n());
}

#[test]
fn best_of_k_improves_random_order_variance() {
    let p = planted(&PlantedConfig::exact(100, 2000, 10), 6);
    let inst = &p.workload.instance;
    let edges = order_edges(inst, StreamOrder::Uniform(11));
    let single = run_on_edges(
        RandomOrderSolver::new(
            inst.m(),
            inst.n(),
            inst.num_edges(),
            RandomOrderConfig::practical(),
            100,
        ),
        &edges,
    );
    let best = run_on_edges(
        BestOfK::new(4, |i| {
            RandomOrderSolver::new(
                inst.m(),
                inst.n(),
                inst.num_edges(),
                RandomOrderConfig::practical(),
                100 + i as u64,
            )
        }),
        &edges,
    );
    best.cover.verify(inst).unwrap();
    assert!(best.cover.size() <= single.cover.size());
}

#[test]
fn schedule_is_exposed_and_consistent() {
    let solver = RandomOrderSolver::new(10_000, 400, 500_000, RandomOrderConfig::practical(), 1);
    let (k, epochs, batches) = solver.schedule();
    assert!(k >= 1);
    assert_eq!(epochs, 3); // practical preset
    assert_eq!(batches, 20); // √400
    assert_eq!(solver.n_estimate(), 500_000);
    for i in 1..=k {
        assert!(solver.subepoch_len(i) >= 1);
    }
    // fill_budget: planned main-phase edges ≈ N/2.
    let planned: usize = (1..=k)
        .map(|i| solver.subepoch_len(i) * batches * epochs as usize)
        .sum();
    assert!(planned <= 500_000 / 2 + 1000);
    assert!(
        planned >= 500_000 / 4,
        "budget should be mostly used, got {planned}"
    );
}
