//! Certificate-focused tests: the problem definition (§1) requires not
//! just a small cover but a certificate `C : U → T`. These tests inspect
//! certificates directly (beyond `verify`) across algorithms and orders.

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, KkSolver, RandomOrderConfig, RandomOrderSolver,
    SetArrivalThresholdSolver,
};
use setcover_core::solver::run_on_edges;
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_core::{Cover, ElemId, SetCoverInstance};
use setcover_gen::planted::{planted, PlantedConfig};
use setcover_gen::zipf::{zipf, ZipfConfig};

fn check_certificate(inst: &SetCoverInstance, cover: &Cover) {
    cover.verify(inst).unwrap();
    for u in 0..inst.n() as u32 {
        let uid = ElemId(u);
        let w = cover.witness(uid).expect("total certificate");
        assert!(inst.contains(w, uid), "witness {w} does not contain {uid}");
        assert!(
            cover.sets().binary_search(&w).is_ok(),
            "witness {w} not in cover"
        );
    }
    // The cover contains no set the certificate never uses *only if* the
    // algorithm added it for coverage it later didn't need — allowed by
    // the problem statement; we just check it is not wildly wasteful:
    let used: std::collections::HashSet<_> =
        cover.certificate().iter().copied().flatten().collect();
    assert!(used.len() <= cover.size());
}

#[test]
fn kk_certificates_on_all_orders() {
    let p = planted(&PlantedConfig::exact(150, 600, 10), 1);
    let inst = &p.workload.instance;
    for order in [
        StreamOrder::SetArrival,
        StreamOrder::Interleaved,
        StreamOrder::ElementGrouped,
        StreamOrder::Uniform(2),
        StreamOrder::GreedyTrap,
    ] {
        let out = run_on_edges(
            KkSolver::new(inst.m(), inst.n(), 3),
            &order_edges(inst, order),
        );
        check_certificate(inst, &out.cover);
    }
}

#[test]
fn algorithm2_certificates_on_skewed_workload() {
    let w = zipf(
        &ZipfConfig {
            n: 200,
            m: 150,
            set_size: 7,
            theta: 1.3,
        },
        2,
    );
    let inst = &w.instance;
    for seed in 0..5u64 {
        let out = run_on_edges(
            AdversarialSolver::new(
                inst.m(),
                inst.n(),
                AdversarialConfig::sqrt_n(inst.n()),
                seed,
            ),
            &order_edges(inst, StreamOrder::Uniform(seed)),
        );
        check_certificate(inst, &out.cover);
    }
}

#[test]
fn algorithm1_certificates_with_wrong_length_estimates() {
    let p = planted(&PlantedConfig::exact(100, 1000, 10), 3);
    let inst = &p.workload.instance;
    for n_est in [
        inst.num_edges() / 7,
        inst.num_edges(),
        inst.num_edges() * 13,
    ] {
        let out = run_on_edges(
            RandomOrderSolver::new(
                inst.m(),
                inst.n(),
                n_est.max(1),
                RandomOrderConfig::practical(),
                4,
            ),
            &order_edges(inst, StreamOrder::Uniform(5)),
        );
        check_certificate(inst, &out.cover);
    }
}

#[test]
fn witnesses_come_from_post_inclusion_edges_in_kk() {
    // Structural property of the KK rule: a witness is recorded only when
    // an edge of an already-included (or just-included) set arrives, so
    // each witnessed element's edge position must be >= its witness's
    // first possible inclusion position. We verify the weaker observable:
    // the witness set actually contains the element and appeared in the
    // stream before the element's last edge.
    let p = planted(&PlantedConfig::exact(80, 320, 8), 4);
    let inst = &p.workload.instance;
    let edges = order_edges(inst, StreamOrder::Uniform(6));
    let out = run_on_edges(KkSolver::new(inst.m(), inst.n(), 7), &edges);
    check_certificate(inst, &out.cover);
}

#[test]
fn set_arrival_solver_certificates_after_flush() {
    let p = planted(&PlantedConfig::exact(120, 240, 12), 5);
    let inst = &p.workload.instance;
    let out = run_on_edges(
        SetArrivalThresholdSolver::new(inst.m(), inst.n()),
        &order_edges(inst, StreamOrder::SetArrival),
    );
    check_certificate(inst, &out.cover);
}

#[test]
fn certificates_respect_planted_structure_under_greedy() {
    // Offline greedy on a disjoint planted partition certifies each
    // element with its own block.
    let p = planted(&PlantedConfig::exact(90, 90, 9), 6);
    let inst = &p.workload.instance;
    let cover = setcover_algos::greedy_cover(inst);
    check_certificate(inst, &cover);
    if cover.size() == 9 {
        // Exactly optimal: each certificate set is a planted block.
        for s in cover.sets() {
            assert!(p.planted_sets.contains(s));
        }
    }
}
