//! Observability integration: recorder determinism across thread counts,
//! histogram bucketing, no-op cost model, and manifest round-trips.

use setcover_algos::{KkConfig, KkSolver};
use setcover_bench::experiments::{robustness, table1};
use setcover_bench::{manifest_json, trace_jsonl, TrialRunner};
use setcover_core::obs::json;
use setcover_core::solver::run_streaming;
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_core::{Metric, MetricsRecorder, MetricsSnapshot, NoopRecorder, Recorder};
use setcover_gen::planted::{planted, PlantedConfig};

/// The tentpole determinism guarantee: running the same instrumented
/// experiment on 1 worker and on 8 workers must produce byte-identical
/// merged metric snapshots — trials are keyed by grid index and merged
/// in key order, not completion order.
#[test]
fn table1_metrics_identical_threads_1_vs_8() {
    let p = table1::Params {
        n: 144,
        m: Some(1296),
        trials: 2,
    };
    let run = |threads: usize| {
        let runner = TrialRunner::new(threads).with_obs(false);
        let text = table1::run_with(&p, &runner);
        (text, runner.obs_merged().to_json())
    };
    let (text1, snap1) = run(1);
    let (text8, snap8) = run(8);
    assert_eq!(text1, text8, "report text must not depend on threads");
    assert_eq!(snap1, snap8, "metric snapshot must not depend on threads");
    // The snapshot is non-trivial: all four solvers ran instrumented.
    for key in [
        "kk.edges",
        "adv.inclusions",
        "ro.epochs",
        "es.sampled_elems",
    ] {
        assert!(snap1.contains(key), "snapshot missing `{key}`: {snap1}");
    }
}

/// Same guarantee for the guard-instrumented robustness sweep, including
/// the trace stream (`obs=trace`), whose event order is also keyed.
#[test]
fn robustness_metrics_and_trace_identical_across_threads() {
    let p = robustness::Params {
        n: 64,
        m: 256,
        opt: 8,
        trials: 1,
        rates: vec![0.0, 0.25],
    };
    let run = |threads: usize| {
        let runner = TrialRunner::new(threads).with_obs(true);
        robustness::run_with(&p, &runner);
        (runner.obs_merged().to_json(), trace_jsonl(&runner))
    };
    let (snap1, trace1) = run(1);
    let (snap8, trace8) = run(8);
    assert_eq!(snap1, snap8);
    assert_eq!(trace1, trace8);
    assert!(snap1.contains("guard."), "guard metrics missing: {snap1}");
}

/// Histogram bucketing: log2 buckets over a real solver run agree with
/// recomputing the bucket of every observation by hand.
#[test]
fn histogram_bucketing_matches_hand_computation() {
    let mut rec = MetricsRecorder::new();
    let values: Vec<u64> = (0..200).map(|i| (i * i * 7 + i) % 1000).collect();
    for &v in &values {
        rec.observe(Metric::KkLevelAtInclusion, v);
    }
    let snap = rec.snapshot();
    let got = &snap.histograms["kk.level_at_inclusion"];
    // Recompute: bucket b holds values with bit-length b (0 → bucket 0).
    let mut want = std::collections::BTreeMap::new();
    for &v in &values {
        let b = (64 - v.leading_zeros()) as usize;
        *want.entry(b).or_insert(0u64) += 1;
    }
    let want: Vec<(usize, u64)> = want.into_iter().collect();
    assert_eq!(got, &want);
}

/// The no-op recorder really is free on the solver type level: a
/// `KkSolver` (defaulted `NoopRecorder`) is exactly the size of its
/// payload state plus a zero-sized recorder, and a run through it
/// produces the same cover as an instrumented run with the same seed
/// (instrumentation must not perturb the RNG trajectory).
#[test]
fn noop_recorder_is_zero_sized_and_trajectory_neutral() {
    assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
    assert_eq!(
        std::mem::size_of::<KkSolver>(),
        std::mem::size_of::<KkSolver<NoopRecorder>>()
    );

    let pl = planted(&PlantedConfig::exact(144, 576, 6), 9);
    let inst = &pl.workload.instance;
    let (m, n) = (inst.m(), inst.n());
    let plain = run_streaming(
        KkSolver::new(m, n, 3),
        stream_of(inst, StreamOrder::Uniform(11)),
    );
    let mut rec = MetricsRecorder::with_trace();
    let instrumented = run_streaming(
        KkSolver::with_recorder(m, n, KkConfig::paper(n), 3, &mut rec),
        stream_of(inst, StreamOrder::Uniform(11)),
    );
    assert_eq!(plain.cover.sets(), instrumented.cover.sets());
    let snap = rec.snapshot();
    assert_eq!(
        snap.counters["kk.edges"] as usize,
        instrumented.edges_processed
    );
    assert_eq!(
        snap.counters["kk.inclusions"],
        rec.events()
            .iter()
            .filter(|e| e.name == "kk.include")
            .count() as u64
    );
}

/// The run manifest is valid JSON and its embedded `metrics` object
/// round-trips exactly through `MetricsSnapshot::from_json`.
#[test]
fn manifest_round_trips_through_parser() {
    let p = table1::Params {
        n: 144,
        m: Some(1296),
        trials: 1,
    };
    let runner = TrialRunner::new(2).with_obs(true);
    table1::run_with(&p, &runner);
    let manifest = manifest_json("table1", &runner);

    let v = json::parse(&manifest).expect("manifest is valid JSON");
    let obj = v.as_object().expect("manifest is an object");
    let get = |k: &str| obj.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    assert_eq!(
        get("schema").and_then(|v| v.as_str()),
        Some("setcover.obs.manifest/1")
    );
    assert_eq!(get("bin").and_then(|v| v.as_str()), Some("table1"));
    assert_eq!(get("threads").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(
        get("trials_recorded").and_then(|v| v.as_u64()),
        Some(runner.obs_trials_sorted().len() as u64)
    );

    // Extract the metrics object by re-serializing the canonical form.
    let start = manifest.find("\"metrics\":").unwrap() + "\"metrics\":".len();
    let metrics_str = &manifest[start..manifest.len() - 1];
    let parsed = MetricsSnapshot::from_json(metrics_str).expect("metrics round-trip");
    assert_eq!(parsed, runner.obs_merged());
    assert_eq!(parsed.to_json(), metrics_str);
}
