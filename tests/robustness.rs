//! Robustness under injected stream faults, end to end.
//!
//! The model promises each edge `(S, u)` arrives exactly once, ids in
//! range, stream complete. Real pipelines break every clause. These
//! tests drive the full chaos → guard → solver pipeline: a seeded
//! [`ChaosStream`] injects a configurable fault mix and ledgers every
//! fault it performs; a [`GuardedStream`] ingests the result under one of
//! three policies; the five streaming solvers consume what survives. The
//! contract under test: solvers may *degrade* (bigger covers, partial
//! coverage) but must stay *correct* — every emitted cover verifies
//! against the delivered sequence, and `Strict` flags exactly the faults
//! the ledger says were injected.

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, ElementSamplingConfig, ElementSamplingSolver, KkSolver,
    MultiPassSieve, RandomOrderConfig, RandomOrderSolver,
};
use setcover_core::math::isqrt;
use setcover_core::rng::derive_seed;
use setcover_core::solver::{run_multipass, run_multipass_streams, run_on_edges, run_streaming};
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_core::{
    ChaosConfig, ChaosStream, Cover, Edge, EdgeStream, FaultKind, GuardConfig, GuardedStream,
    SetCoverInstance, StreamError,
};
use setcover_gen::planted::{planted, PlantedConfig};

/// Pull a guarded stream to completion (or first error), returning the
/// delivered prefix and the error if one fired.
fn drive<S: EdgeStream>(g: &mut GuardedStream<S>) -> (Vec<Edge>, Option<StreamError>) {
    let mut delivered = Vec::new();
    loop {
        match g.try_next_edge() {
            Ok(Some(e)) => delivered.push(e),
            Ok(None) => return (delivered, None),
            Err(e) => return (delivered, Some(e)),
        }
    }
}

/// Run all five streaming solvers over the same delivered sequence.
fn run_all_solvers(
    m: usize,
    n: usize,
    delivered: &[Edge],
    seed: u64,
) -> Vec<(&'static str, Cover)> {
    let nn = delivered.len().max(1);
    let alpha = (isqrt(n) as f64 / 2.0).max(1.0);
    vec![
        (
            "kk",
            run_on_edges(KkSolver::new(m, n, seed), delivered).cover,
        ),
        (
            "adversarial",
            run_on_edges(
                AdversarialSolver::new(m, n, AdversarialConfig::sqrt_n(n), seed),
                delivered,
            )
            .cover,
        ),
        (
            "random-order",
            run_on_edges(
                RandomOrderSolver::new(m, n, nn, RandomOrderConfig::practical(), seed),
                delivered,
            )
            .cover,
        ),
        (
            "element-sampling",
            run_on_edges(
                ElementSamplingSolver::new(
                    m,
                    n,
                    ElementSamplingConfig::for_alpha(alpha, m, 1.0),
                    seed,
                ),
                delivered,
            )
            .cover,
        ),
        (
            "multipass-sieve",
            run_multipass(MultiPassSieve::new(m, n, 3), delivered).cover,
        ),
    ]
}

fn chaos_over(
    inst: &SetCoverInstance,
    order_seed: u64,
    cfg: ChaosConfig,
) -> ChaosStream<impl EdgeStream + '_> {
    ChaosStream::new(
        stream_of(inst, StreamOrder::Uniform(order_seed)),
        inst.m(),
        inst.n(),
        cfg,
    )
}

/// Acceptance criterion: the same `(instance, order, chaos config, seed)`
/// yields a byte-identical fault ledger *and* delivered sequence, and a
/// different chaos seed yields a different trajectory.
#[test]
fn chaos_replay_is_byte_identical() {
    let p = planted(&PlantedConfig::exact(200, 800, 10), 21);
    let inst = &p.workload.instance;
    let mut cfg = ChaosConfig::clean(0xC0FFEE);
    cfg.dup_adjacent = 0.05;
    cfg.dup_delayed = 0.05;
    cfg.drop = 0.05;
    cfg.corrupt_set = 0.02;
    cfg.corrupt_elem = 0.02;
    cfg.reorder = 0.03;

    let (d1, l1) = chaos_over(inst, 5, cfg).drain();
    let (d2, l2) = chaos_over(inst, 5, cfg).drain();
    assert_eq!(d1, d2, "delivered sequence must replay byte-identically");
    assert_eq!(l1, l2, "fault ledger must replay byte-identically");
    assert!(!l1.is_empty(), "this mix must actually inject faults");

    let mut reseeded = cfg;
    reseeded.seed ^= 1;
    let (d3, l3) = chaos_over(inst, 5, reseeded).drain();
    assert!(
        d3 != d1 || l3.records() != l1.records(),
        "a different chaos seed must perturb the trajectory"
    );
}

/// All five streaming solvers × the full fault matrix (every
/// [`FaultKind`]), ingested through a `Repair` guard: no panics, no
/// invalid covers — every cover verifies against the delivered sequence.
#[test]
fn all_solvers_survive_the_full_fault_matrix() {
    let p = planted(&PlantedConfig::exact(128, 512, 8), 22);
    let inst = &p.workload.instance;
    for (ki, &kind) in FaultKind::ALL.iter().enumerate() {
        let cfg = ChaosConfig::uniform(kind, 0.2, derive_seed(0xFEED, ki as u64));
        let chaos = chaos_over(inst, 7 + ki as u64, cfg);
        let mut guard = GuardedStream::new(chaos, inst.m(), inst.n(), GuardConfig::repair());
        let (delivered, err) = drive(&mut guard);
        assert!(
            err.is_none(),
            "Repair must never fail the stream ({}): {err:?}",
            kind.name()
        );
        let rep = guard.report();
        assert_eq!(
            rep.edges_in,
            rep.edges_ok + rep.edges_repaired,
            "under Repair every pulled edge is either delivered or repaired ({})",
            kind.name()
        );
        assert_eq!(rep.edges_rejected, 0, "Repair rejects nothing");
        assert_eq!(
            delivered.len(),
            rep.edges_ok,
            "Repair delivers exactly the clean edges ({})",
            kind.name()
        );
        // Repaired output honors the id contract the solvers rely on.
        assert!(
            delivered
                .iter()
                .all(|e| e.set.index() < inst.m() && e.elem.index() < inst.n()),
            "Repair must strip out-of-range ids ({})",
            kind.name()
        );
        for (name, cover) in run_all_solvers(inst.m(), inst.n(), &delivered, 3) {
            cover
                .verify_delivered(inst.n(), &delivered)
                .unwrap_or_else(|e| {
                    panic!(
                        "{name} emitted an invalid cover under {} at rate 0.2: {e}",
                        kind.name()
                    )
                });
        }
    }
}

/// Property test (64 seeded cases): `Strict` flags *exactly* the faults
/// the [`ChaosStream`]'s ledger says were injected — no false accepts
/// (every detectable injected fault surfaces as a positioned error) and
/// no false alarms (clean and reorder-only streams pass untouched).
#[test]
fn strict_flags_exactly_the_injected_faults_across_64_seeds() {
    // `SwapIds` is excluded: a swapped id pair is only detectable when it
    // happens to leave the valid rectangle, so Strict's verdict on it is
    // input-dependent by design. `Reorder` is *in* the cycle precisely
    // because Strict must not flag it (point-wise undetectable).
    const CYCLE: [Option<FaultKind>; 8] = [
        None, // clean control
        Some(FaultKind::DuplicateAdjacent),
        Some(FaultKind::DuplicateDelayed),
        Some(FaultKind::Drop),
        Some(FaultKind::CorruptSet),
        Some(FaultKind::CorruptElem),
        Some(FaultKind::Truncate),
        Some(FaultKind::Reorder),
    ];
    const RATES: [f64; 3] = [0.05, 0.15, 0.3];

    let p = planted(&PlantedConfig::exact(96, 384, 8), 23);
    let inst = &p.workload.instance;
    let nn = inst.num_edges();

    for case in 0..64u64 {
        let kind = CYCLE[(case % 8) as usize];
        let rate = RATES[((case / 8) % 3) as usize];
        let seed = derive_seed(0x0057_17C7, case);
        let cfg = match kind {
            None => ChaosConfig::clean(seed),
            Some(k) => ChaosConfig::uniform(k, rate, seed),
        };
        let chaos = chaos_over(inst, case, cfg);
        let mut guard = GuardedStream::new(
            chaos,
            inst.m(),
            inst.n(),
            GuardConfig::strict().with_dedup_window(128),
        );
        let (delivered, err) = drive(&mut guard);
        let log = guard.inner().log().clone();

        match kind {
            None => {
                assert!(err.is_none(), "case {case}: false alarm on clean stream");
                assert!(log.is_empty(), "case {case}: clean config injected faults");
                assert_eq!(delivered.len(), nn);
            }
            Some(FaultKind::Reorder) => {
                // Reordering is invisible to a point-wise validator.
                assert!(
                    err.is_none(),
                    "case {case}: false alarm on reorder-only stream: {err:?}"
                );
                assert_eq!(delivered.len(), nn, "reorder must not change the count");
            }
            Some(k @ (FaultKind::DuplicateAdjacent | FaultKind::DuplicateDelayed)) => {
                match log.first(k) {
                    None => assert!(err.is_none(), "case {case}: false alarm: {err:?}"),
                    Some(rec) => assert!(
                        matches!(err, Some(StreamError::DuplicateEdge { pos, .. }) if pos == rec.pos),
                        "case {case}: expected DuplicateEdge at {}, got {err:?}",
                        rec.pos
                    ),
                }
            }
            Some(k @ FaultKind::CorruptSet) => match log.first(k) {
                None => assert!(err.is_none(), "case {case}: false alarm: {err:?}"),
                Some(rec) => assert!(
                    matches!(err, Some(StreamError::SetOutOfRange { pos, set, .. })
                        if pos == rec.pos && u64::from(set.0) == rec.detail),
                    "case {case}: expected SetOutOfRange at {} (id {}), got {err:?}",
                    rec.pos,
                    rec.detail
                ),
            },
            Some(k @ FaultKind::CorruptElem) => match log.first(k) {
                None => assert!(err.is_none(), "case {case}: false alarm: {err:?}"),
                Some(rec) => assert!(
                    matches!(err, Some(StreamError::ElemOutOfRange { pos, elem, .. })
                        if pos == rec.pos && u64::from(elem.0) == rec.detail),
                    "case {case}: expected ElemOutOfRange at {} (id {}), got {err:?}",
                    rec.pos,
                    rec.detail
                ),
            },
            Some(FaultKind::Drop) => {
                let drops = log.count(FaultKind::Drop);
                if drops == 0 {
                    assert!(err.is_none(), "case {case}: false alarm: {err:?}");
                } else {
                    assert_eq!(
                        err,
                        Some(StreamError::LengthMismatch {
                            declared: nn,
                            delivered: nn - drops,
                        }),
                        "case {case}: {drops} drops must surface as a length mismatch"
                    );
                    assert_eq!(delivered.len(), nn - drops);
                }
            }
            Some(FaultKind::Truncate) => match log.first(FaultKind::Truncate) {
                None => assert!(err.is_none(), "case {case}: false alarm: {err:?}"),
                Some(rec) => {
                    let cut = rec.detail as usize;
                    assert_eq!(
                        err,
                        Some(StreamError::LengthMismatch {
                            declared: nn,
                            delivered: nn - cut,
                        }),
                        "case {case}: truncation of {cut} edges must surface"
                    );
                    assert_eq!(delivered.len(), nn - cut);
                }
            },
            Some(other) => unreachable!("kind {other:?} not in the cycle"),
        }

        // The exactness property in one line: Strict errs iff the ledger
        // holds at least one Strict-detectable fault.
        let detectable = log.records().iter().any(|r| r.kind != FaultKind::Reorder);
        assert_eq!(
            err.is_some(),
            detectable,
            "case {case} ({kind:?} @ {rate}): Strict must flag exactly the ledger ({} records)",
            log.len()
        );
    }
}

/// Solvers fed a *raw* chaos stream (no guard) with in-range faults —
/// duplicates, drops, reordering, truncation — must still terminate with
/// covers valid for what arrived. A deterministic twin stream supplies
/// the delivered sequence to verify against; multipass replays the same
/// faults each pass through the stream factory.
#[test]
fn unguarded_solvers_survive_in_range_chaos() {
    let p = planted(&PlantedConfig::exact(100, 400, 10), 24);
    let inst = &p.workload.instance;
    let kinds = [
        FaultKind::DuplicateAdjacent,
        FaultKind::DuplicateDelayed,
        FaultKind::Drop,
        FaultKind::Reorder,
        FaultKind::Truncate,
    ];
    for (ki, &kind) in kinds.iter().enumerate() {
        let cfg = ChaosConfig::uniform(kind, 0.25, derive_seed(0xAB, ki as u64));
        let make = || chaos_over(inst, 9, cfg);
        let (delivered, _) = make().drain();

        let kk = run_streaming(KkSolver::new(inst.m(), inst.n(), 5), make());
        kk.cover
            .verify_delivered(inst.n(), &delivered)
            .unwrap_or_else(|e| panic!("kk invalid under raw {}: {e}", kind.name()));

        let a2 = run_streaming(
            AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::sqrt_n(inst.n()), 5),
            make(),
        );
        a2.cover
            .verify_delivered(inst.n(), &delivered)
            .unwrap_or_else(|e| panic!("adversarial invalid under raw {}: {e}", kind.name()));

        let mp = run_multipass_streams(MultiPassSieve::new(inst.m(), inst.n(), 3), make);
        mp.cover
            .verify_delivered(inst.n(), &delivered)
            .unwrap_or_else(|e| panic!("multipass invalid under raw {}: {e}", kind.name()));
    }
}

/// `Observe` never touches the stream: everything the chaos adapter
/// emits — corrupted ids included — reaches the consumer, but the
/// anomaly counters still fill in.
#[test]
fn observe_policy_reports_without_intervening() {
    let p = planted(&PlantedConfig::exact(64, 256, 8), 25);
    let inst = &p.workload.instance;
    let cfg = ChaosConfig::uniform(FaultKind::CorruptSet, 0.3, 0xD00D);
    let (expected, _) = chaos_over(inst, 3, cfg).drain();

    let mut guard = GuardedStream::new(
        chaos_over(inst, 3, cfg),
        inst.m(),
        inst.n(),
        GuardConfig::observe(),
    );
    let (delivered, err) = drive(&mut guard);
    assert!(err.is_none(), "Observe never fails the stream");
    assert_eq!(delivered, expected, "Observe must pass everything through");
    let rep = guard.report();
    assert!(rep.set_out_of_range > 0, "corruptions must be counted");
    assert_eq!(rep.edges_rejected, rep.set_out_of_range);
    assert_eq!(rep.edges_in, rep.edges_ok + rep.edges_rejected);
}
