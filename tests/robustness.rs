//! Robustness and failure-injection tests: inputs outside the model's
//! nominal assumptions. The model promises each edge `(S, u)` appears
//! exactly once and the whole stream arrives; real pipelines deliver
//! duplicates and truncations. Solvers must stay *correct* (valid covers
//! for whatever arrived) even where quality guarantees lapse.

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, FirstSetSolver, KkSolver, MultiPassSieve,
    RandomOrderConfig, RandomOrderSolver,
};
use setcover_core::solver::{run_multipass, run_on_edges};
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_core::{Edge, InstanceBuilder, StreamingSetCover};
use setcover_gen::hard::{degree_spike, kk_level_trap};
use setcover_gen::planted::{planted, PlantedConfig};

#[test]
fn duplicate_edges_do_not_break_correctness() {
    // Every edge delivered twice (e.g. at-least-once transport).
    let p = planted(&PlantedConfig::exact(100, 400, 10), 1);
    let inst = &p.workload.instance;
    let mut edges = order_edges(inst, StreamOrder::Uniform(2));
    let doubled: Vec<Edge> = edges.iter().flat_map(|&e| [e, e]).collect();
    edges.clear();

    let kk = run_on_edges(KkSolver::new(inst.m(), inst.n(), 3), &doubled);
    kk.cover.verify(inst).unwrap();

    let a2 = run_on_edges(
        AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::sqrt_n(inst.n()), 3),
        &doubled,
    );
    a2.cover.verify(inst).unwrap();

    let a1 = run_on_edges(
        RandomOrderSolver::new(
            inst.m(),
            inst.n(),
            doubled.len(),
            RandomOrderConfig::practical(),
            3,
        ),
        &doubled,
    );
    a1.cover.verify(inst).unwrap();
}

#[test]
fn shuffled_duplicates_inflate_kk_counters_but_not_validity() {
    // Duplicates scattered (not adjacent): uncovered-degree counters
    // overcount and inclusions fire early — quality shifts, correctness
    // must not.
    let p = planted(&PlantedConfig::exact(80, 320, 8), 2);
    let inst = &p.workload.instance;
    let mut tripled: Vec<Edge> = Vec::new();
    for rep in 0..3u64 {
        tripled.extend(order_edges(inst, StreamOrder::Uniform(10 + rep)));
    }
    let out = run_on_edges(KkSolver::new(inst.m(), inst.n(), 5), &tripled);
    out.cover.verify(inst).unwrap();
}

#[test]
fn truncated_stream_covers_what_arrived() {
    // The stream dies mid-way: patching can only certify elements that
    // appeared. We verify against the *truncated* instance.
    let p = planted(&PlantedConfig::exact(120, 480, 12), 3);
    let inst = &p.workload.instance;
    let edges = order_edges(inst, StreamOrder::Uniform(4));
    let half = &edges[..edges.len() / 2];

    // Rebuild the instance the solver actually saw.
    let mut b = InstanceBuilder::new(inst.m(), inst.n());
    let mut seen = vec![false; inst.n()];
    for e in half {
        b.add_edge(e.set, e.elem);
        seen[e.elem.index()] = true;
    }
    // Unseen elements are fed one synthetic edge each so the truncated
    // instance stays feasible for verification; the solver gets the same
    // synthetic tail (a crash-recovery replay, in pipeline terms).
    let mut tail = Vec::new();
    for (u, &s) in seen.iter().enumerate() {
        if !s {
            let set = inst.sets_containing(setcover_core::ElemId(u as u32))[0];
            b.add_edge(set, setcover_core::ElemId(u as u32));
            tail.push(Edge {
                set,
                elem: setcover_core::ElemId(u as u32),
            });
        }
    }
    let truncated = b.build().unwrap();

    let mut solver = KkSolver::new(inst.m(), inst.n(), 7);
    for &e in half.iter().chain(tail.iter()) {
        solver.process_edge(e);
    }
    let cover = solver.finalize();
    cover.verify(&truncated).unwrap();
}

#[test]
fn single_element_and_single_set_extremes() {
    // n = 1.
    let mut b = InstanceBuilder::new(3, 1);
    b.add_edge(setcover_core::SetId(2), setcover_core::ElemId(0));
    let inst = b.build().unwrap();
    let out = run_on_edges(KkSolver::new(3, 1, 1), &inst.edge_vec());
    out.cover.verify(&inst).unwrap();
    assert_eq!(out.cover.size(), 1);

    // m = 1 covering everything.
    let mut b = InstanceBuilder::new(1, 64);
    b.add_set_elems(0, 0..64);
    let inst = b.build().unwrap();
    for order in [StreamOrder::SetArrival, StreamOrder::Uniform(2)] {
        let out = run_on_edges(
            AdversarialSolver::new(1, 64, AdversarialConfig::sqrt_n(64), 2),
            &order_edges(&inst, order),
        );
        out.cover.verify(&inst).unwrap();
        assert_eq!(out.cover.size(), 1);
    }
}

#[test]
fn extreme_alpha_values_degrade_gracefully() {
    let p = planted(&PlantedConfig::exact(60, 240, 6), 4);
    let inst = &p.workload.instance;
    let edges = order_edges(inst, StreamOrder::Interleaved);
    for alpha in [1.0f64, 2.0, 1e6] {
        let out = run_on_edges(
            AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::with_alpha(alpha), 5),
            &edges,
        );
        out.cover.verify(inst).unwrap();
        // alpha = 1: promotion every uncovered edge, p0 = 1/m·1... still
        // valid; alpha huge: D0 floods (p0 = alpha/m >= 1 picks all sets).
        if alpha >= 1e6 {
            // Everything pre-sampled: all witnesses collected in-stream.
            assert!(out.cover.size() <= inst.m());
        }
    }
}

#[test]
fn kk_level_trap_forces_patching_dominated_covers() {
    let w = kk_level_trap(400, 1600, 5, 6);
    let inst = &w.instance;
    let edges = order_edges(inst, StreamOrder::Interleaved);
    let kk = run_on_edges(KkSolver::new(inst.m(), inst.n(), 7), &edges);
    kk.cover.verify(inst).unwrap();
    // Decoys can never be sampled; the cover is planted picks + patches.
    // The first-set baseline is the ceiling the trap pushes KK toward.
    let fs = run_on_edges(FirstSetSolver::new(inst.m(), inst.n()), &edges);
    assert!(kk.cover.size() <= fs.cover.size() + 5);
}

#[test]
fn degree_spikes_are_absorbed() {
    let w = degree_spike(300, 90, 10, 4, 7);
    let inst = &w.instance;
    for order in [StreamOrder::ElementGrouped, StreamOrder::Uniform(8)] {
        let edges = order_edges(inst, order);
        let kk = run_on_edges(KkSolver::new(inst.m(), inst.n(), 9), &edges);
        kk.cover.verify(inst).unwrap();
        let a1 = run_on_edges(
            RandomOrderSolver::new(
                inst.m(),
                inst.n(),
                edges.len(),
                RandomOrderConfig::practical(),
                9,
            ),
            &edges,
        );
        a1.cover.verify(inst).unwrap();
    }
}

#[test]
fn multipass_sieve_survives_duplicates_and_extremes() {
    let p = planted(&PlantedConfig::exact(90, 180, 9), 8);
    let inst = &p.workload.instance;
    let edges = order_edges(inst, StreamOrder::Uniform(9));
    let doubled: Vec<Edge> = edges.iter().flat_map(|&e| [e, e]).collect();
    let out = run_multipass(MultiPassSieve::new(inst.m(), inst.n(), 3), &doubled);
    out.cover.verify(inst).unwrap();

    let one_elem = {
        let mut b = InstanceBuilder::new(2, 1);
        b.add_edge(setcover_core::SetId(0), setcover_core::ElemId(0));
        b.build().unwrap()
    };
    let out = run_multipass(MultiPassSieve::new(2, 1, 5), &one_elem.edge_vec());
    out.cover.verify(&one_elem).unwrap();
    assert!(out.passes_used <= 5);
}

#[test]
fn solvers_are_reusable_per_instance_not_across() {
    // A fresh solver per run: same seed + same stream => same cover
    // (no hidden global state).
    let p = planted(&PlantedConfig::exact(70, 140, 7), 9);
    let inst = &p.workload.instance;
    let edges = order_edges(inst, StreamOrder::GreedyTrap);
    let a = run_on_edges(KkSolver::new(inst.m(), inst.n(), 11), &edges).cover;
    let b = run_on_edges(KkSolver::new(inst.m(), inst.n(), 11), &edges).cover;
    assert_eq!(a, b);
}

#[test]
fn finalize_is_idempotent_for_reporting() {
    // Calling space() after finalize must still report the run's peak.
    let p = planted(&PlantedConfig::exact(50, 100, 5), 10);
    let inst = &p.workload.instance;
    let mut solver = KkSolver::new(inst.m(), inst.n(), 12);
    for e in order_edges(inst, StreamOrder::SetArrival) {
        solver.process_edge(e);
    }
    let cover = solver.finalize();
    cover.verify(inst).unwrap();
    let s1 = solver.space();
    let s2 = solver.space();
    assert_eq!(s1, s2);
    assert!(s1.peak_words >= inst.m());
}
