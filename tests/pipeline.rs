//! End-to-end pipeline tests: every generator → every arrival order →
//! every streaming algorithm → verified cover.

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, ElementSamplingConfig, ElementSamplingSolver,
    FirstSetSolver, KkSolver, RandomOrderConfig, RandomOrderSolver, SetArrivalThresholdSolver,
    StoreAllSolver,
};
use setcover_core::solver::{run_on_edges, RunOutcome};
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_core::{Edge, SetCoverInstance};
use setcover_gen::coverage::{blog_watch, BlogWatchConfig};
use setcover_gen::dominating::{gnp, planted_hubs};
use setcover_gen::planted::{planted, PlantedConfig};
use setcover_gen::uniform::{uniform, UniformConfig};
use setcover_gen::web::{web_crawl, WebConfig};
use setcover_gen::zipf::{zipf, ZipfConfig};
use setcover_gen::Workload;

fn workloads() -> Vec<Workload> {
    vec![
        planted(&PlantedConfig::exact(120, 480, 10), 1).workload,
        uniform(&UniformConfig::ranged(150, 90, 2, 15), 2),
        zipf(
            &ZipfConfig {
                n: 140,
                m: 80,
                set_size: 6,
                theta: 1.2,
            },
            3,
        ),
        blog_watch(&BlogWatchConfig::default_shape(130, 70), 4),
        gnp(60, 0.08, 5),
        planted_hubs(90, 6, 120, 6),
        web_crawl(&WebConfig::crawl(160, 120), 7),
    ]
}

fn orders() -> Vec<StreamOrder> {
    vec![
        StreamOrder::SetArrival,
        StreamOrder::SetArrivalShuffled(9),
        StreamOrder::Interleaved,
        StreamOrder::ElementGrouped,
        StreamOrder::Uniform(10),
        StreamOrder::GreedyTrap,
    ]
}

fn all_solvers_run(inst: &SetCoverInstance, edges: &[Edge], seed: u64) -> Vec<RunOutcome> {
    let (m, n) = (inst.m(), inst.n());
    let nn = inst.num_edges();
    vec![
        run_on_edges(KkSolver::new(m, n, seed), edges),
        run_on_edges(
            AdversarialSolver::new(m, n, AdversarialConfig::sqrt_n(n), seed),
            edges,
        ),
        run_on_edges(
            RandomOrderSolver::new(m, n, nn, RandomOrderConfig::practical(), seed),
            edges,
        ),
        run_on_edges(
            ElementSamplingSolver::new(m, n, ElementSamplingConfig::for_alpha(8.0, m, 1.0), seed),
            edges,
        ),
        run_on_edges(SetArrivalThresholdSolver::new(m, n), edges),
        run_on_edges(FirstSetSolver::new(m, n), edges),
        run_on_edges(StoreAllSolver::new(m, n), edges),
    ]
}

#[test]
fn every_algorithm_covers_every_workload_on_every_order() {
    for (wi, w) in workloads().into_iter().enumerate() {
        let inst = &w.instance;
        for order in orders() {
            let edges = order_edges(inst, order);
            assert_eq!(
                edges.len(),
                inst.num_edges(),
                "{}: order lost edges",
                w.label
            );
            for out in all_solvers_run(inst, &edges, 31 + wi as u64) {
                out.cover.verify(inst).unwrap_or_else(|e| {
                    panic!("{} on {} / {:?}: {e}", out.algorithm, w.label, order)
                });
                assert!(
                    out.cover.size() <= inst.n(),
                    "{} on {}: cover {} exceeds n = {}",
                    out.algorithm,
                    w.label,
                    out.cover.size(),
                    inst.n()
                );
            }
        }
    }
}

#[test]
fn store_all_is_the_quality_ceiling() {
    // The unbounded-memory baseline (offline greedy over the replayed
    // stream) should never lose badly to any bounded-memory solver.
    let w = planted(&PlantedConfig::exact(200, 800, 10), 7).workload;
    let inst = &w.instance;
    let edges = order_edges(inst, StreamOrder::Uniform(8));
    let outs = all_solvers_run(inst, &edges, 77);
    let store_all = outs
        .iter()
        .find(|o| o.algorithm == "store-all-greedy")
        .unwrap();
    for out in &outs {
        assert!(
            store_all.cover.size() <= out.cover.size() + 2,
            "store-all ({}) worse than {} ({})",
            store_all.cover.size(),
            out.algorithm,
            out.cover.size()
        );
    }
}

#[test]
fn planted_optimum_is_achievable_by_offline_greedy() {
    let p = planted(&PlantedConfig::exact(300, 900, 15), 9);
    let inst = &p.workload.instance;
    let greedy = setcover_algos::greedy_cover(inst);
    greedy.verify(inst).unwrap();
    // Greedy finds the planted partition up to its harmonic factor; on
    // disjoint-block plants it is typically exactly optimal.
    assert!(greedy.size() <= 15 * 3);
    assert!(greedy.size() >= 15, "cannot beat the exact optimum");
}

#[test]
fn outcomes_report_consistent_metadata() {
    let w = planted(&PlantedConfig::exact(64, 128, 8), 2).workload;
    let inst = &w.instance;
    let edges = order_edges(inst, StreamOrder::SetArrival);
    for out in all_solvers_run(inst, &edges, 5) {
        assert_eq!(out.edges_processed, inst.num_edges(), "{}", out.algorithm);
        assert!(!out.algorithm.is_empty());
    }
}
