//! Space-accounting integration tests: the measured peaks must reflect
//! the paper's asymptotic separations on one shared instance.

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, BestOfK, ElementSamplingConfig, ElementSamplingSolver,
    KkSolver, RandomOrderConfig, RandomOrderSolver,
};
use setcover_core::math::isqrt;
use setcover_core::solver::run_on_edges;
use setcover_core::space::SpaceComponent;
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_gen::planted::{planted, PlantedConfig};

/// One shared instance in the Theorem 3 regime m = Ω̃(n²).
fn fixture() -> (setcover_core::SetCoverInstance, usize, usize) {
    let n = 256;
    let m = n * n / 8; // 8192
    let p = planted(&PlantedConfig::exact(n, m, 8), 3);
    (p.workload.instance, m, n)
}

#[test]
fn space_ordering_matches_table_1() {
    let (inst, m, n) = fixture();
    let edges = order_edges(&inst, StreamOrder::Uniform(5));

    let kk = run_on_edges(KkSolver::new(m, n, 1), &edges);
    let alg2 = run_on_edges(
        AdversarialSolver::new(m, n, AdversarialConfig::sqrt_n(n), 1),
        &edges,
    );
    let alg1 = run_on_edges(
        RandomOrderSolver::new(m, n, edges.len(), RandomOrderConfig::practical(), 1),
        &edges,
    );
    let es = run_on_edges(
        ElementSamplingSolver::new(
            m,
            n,
            ElementSamplingConfig::for_alpha(isqrt(n) as f64 / 2.0, m, 1.0),
            1,
        ),
        &edges,
    );

    let kk_w = kk.space.algorithmic_peak_words();
    let alg2_w = alg2.space.algorithmic_peak_words();
    let alg1_w = alg1.space.algorithmic_peak_words();
    let es_w = es.space.algorithmic_peak_words();

    // Table 1 ordering at alpha = Θ(√n):
    //   element-sampling (mn/α) > kk (m) > alg2 (mn/α²) and alg1 (m/√n).
    assert!(es_w > kk_w, "element-sampling {es_w} !> kk {kk_w}");
    assert!(kk_w > alg2_w, "kk {kk_w} !> alg2 {alg2_w}");
    assert!(kk_w > alg1_w, "kk {kk_w} !> alg1 {alg1_w}");
    // KK is exactly m counters.
    assert_eq!(kk_w, m);
    // Alg 1's per-set state is m/√n + n (epoch-0 element counters).
    assert!(
        alg1_w <= m / isqrt(n) + n + 200,
        "alg1 {alg1_w} above budget"
    );
}

#[test]
fn component_breakdown_distinguishes_structures() {
    let (inst, m, n) = fixture();
    let edges = order_edges(&inst, StreamOrder::Uniform(7));

    let kk = run_on_edges(KkSolver::new(m, n, 2), &edges);
    let comps: Vec<_> = kk.space.peak_by_component.iter().map(|(c, _)| *c).collect();
    assert!(comps.contains(&SpaceComponent::Counters));
    assert!(comps.contains(&SpaceComponent::Marks));
    assert!(comps.contains(&SpaceComponent::FirstSet));

    let alg2 = run_on_edges(
        AdversarialSolver::new(m, n, AdversarialConfig::sqrt_n(n), 2),
        &edges,
    );
    let has_levels = alg2
        .space
        .peak_by_component
        .iter()
        .any(|(c, w)| *c == SpaceComponent::Levels && *w > 0);
    assert!(has_levels, "algorithm 2 must charge its level map");

    let alg1 = run_on_edges(
        RandomOrderSolver::new(m, n, edges.len(), RandomOrderConfig::practical(), 2),
        &edges,
    );
    let has_tracked = alg1.space.peak_by_component.iter().any(|(c, _)| {
        matches!(
            c,
            SpaceComponent::TrackedSets | SpaceComponent::TrackedEdges
        )
    });
    assert!(
        has_tracked,
        "algorithm 1 must charge its tracked structures"
    );
}

#[test]
fn algorithm2_space_shrinks_quadratically_ish_in_alpha() {
    let (inst, m, n) = fixture();
    let edges = order_edges(&inst, StreamOrder::Interleaved);
    let level_words = |alpha: f64| {
        let out = run_on_edges(
            AdversarialSolver::new(m, n, AdversarialConfig::with_alpha(alpha), 3),
            &edges,
        );
        out.space
            .peak_by_component
            .iter()
            .find(|(c, _)| *c == SpaceComponent::Levels)
            .map(|(_, w)| *w)
            .unwrap_or(0)
    };
    let w16 = level_words(16.0);
    let w64 = level_words(64.0);
    let w256 = level_words(256.0);
    assert!(
        w16 > w64 && w64 > w256,
        "no monotone decay: {w16}, {w64}, {w256}"
    );
    // 4x alpha should shrink the map by clearly more than 2x.
    assert!(
        w16 as f64 / w64 as f64 > 2.0,
        "decay too slow: {w16} -> {w64}"
    );
}

#[test]
fn element_sampling_space_tracks_rho() {
    let (inst, m, n) = fixture();
    let edges = order_edges(&inst, StreamOrder::Uniform(9));
    let stored = |rho: f64| {
        let out = run_on_edges(
            ElementSamplingSolver::new(m, n, ElementSamplingConfig { rho, alpha: 16.0 }, 4),
            &edges,
        );
        out.space
            .peak_by_component
            .iter()
            .find(|(c, _)| *c == SpaceComponent::StoredEdges)
            .map(|(_, w)| *w)
            .unwrap_or(0)
    };
    let lo = stored(0.1);
    let hi = stored(0.8);
    assert!(lo > 0);
    assert!(
        hi > 4 * lo,
        "stored edges should scale ~linearly with rho: {lo} vs {hi}"
    );
}

#[test]
fn best_of_k_space_is_additive() {
    let (inst, m, n) = fixture();
    let edges = order_edges(&inst, StreamOrder::Uniform(11));
    let single = run_on_edges(KkSolver::new(m, n, 5), &edges)
        .space
        .peak_words;
    let tripled = run_on_edges(
        BestOfK::new(3, |i| KkSolver::new(m, n, 5 + i as u64)),
        &edges,
    )
    .space
    .peak_words;
    assert!(tripled >= 3 * m);
    assert!(tripled >= 2 * single, "copies must not share state");
}
