//! Property-based tests on the core invariants, with hand-rolled seeded
//! case generation (the proptest dependency is unavailable offline; a
//! fixed-seed loop over randomized cases keeps the same coverage and is
//! exactly reproducible):
//!
//! * instance construction round-trips and validates;
//! * every order adapter emits a permutation of the edge set;
//! * every streaming solver emits a *verified* cover on arbitrary
//!   feasible instances and orders, with size ≤ n;
//! * math helpers satisfy their defining inequalities;
//! * Lemma 1 families partition correctly for arbitrary configs.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, FirstSetSolver, KkSolver, RandomOrderConfig,
    RandomOrderSolver,
};
use setcover_core::math::{isqrt, isqrt_ceil};
use setcover_core::solver::run_on_edges;
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_core::{InstanceBuilder, SetCoverInstance};
use setcover_gen::lowerbound::{LbFamily, LbFamilyConfig};

const CASES: u64 = 64;

/// A feasible random instance: m ∈ [2, 12), n ∈ [2, 40), up to 150 extra
/// random edges on top of a feasibility spine.
fn arb_instance(rng: &mut SmallRng) -> SetCoverInstance {
    let m = rng.random_range(2usize..12);
    let n = rng.random_range(2usize..40);
    let extra = rng.random_range(0usize..150);
    let mut b = InstanceBuilder::new(m, n);
    // Feasibility spine: element u belongs to set u % m.
    for u in 0..n as u32 {
        b.add_edge((u % m as u32).into(), u.into());
    }
    for _ in 0..extra {
        let s = rng.random_range(0u32..12) % m as u32;
        let u = rng.random_range(0u32..40) % n as u32;
        b.add_edge(s.into(), u.into());
    }
    b.build().expect("spine guarantees feasibility")
}

fn arb_order(rng: &mut SmallRng) -> StreamOrder {
    match rng.random_range(0usize..6) {
        0 => StreamOrder::SetArrival,
        1 => StreamOrder::SetArrivalShuffled(rng.random::<u64>()),
        2 => StreamOrder::Interleaved,
        3 => StreamOrder::ElementGrouped,
        4 => StreamOrder::Uniform(rng.random::<u64>()),
        _ => StreamOrder::GreedyTrap,
    }
}

#[test]
fn orders_are_permutations() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0001);
    for _ in 0..CASES {
        let inst = arb_instance(&mut rng);
        let order = arb_order(&mut rng);
        let edges = order_edges(&inst, order);
        assert_eq!(edges.len(), inst.num_edges());
        let mut sorted = edges;
        sorted.sort();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            inst.num_edges(),
            "{order:?} lost or duplicated edges"
        );
        assert_eq!(sorted, inst.edge_vec());
    }
}

#[test]
fn kk_always_produces_valid_cover() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0002);
    for _ in 0..CASES {
        let inst = arb_instance(&mut rng);
        let order = arb_order(&mut rng);
        let seed = rng.random::<u64>();
        let edges = order_edges(&inst, order);
        let out = run_on_edges(KkSolver::new(inst.m(), inst.n(), seed), &edges);
        assert!(out.cover.verify(&inst).is_ok());
        assert!(out.cover.size() <= inst.n());
    }
}

#[test]
fn algorithm2_always_produces_valid_cover() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0003);
    for _ in 0..CASES {
        let inst = arb_instance(&mut rng);
        let order = arb_order(&mut rng);
        let seed = rng.random::<u64>();
        let alpha = 1.0 + rng.random::<f64>() * 63.0;
        let edges = order_edges(&inst, order);
        let out = run_on_edges(
            AdversarialSolver::new(
                inst.m(),
                inst.n(),
                AdversarialConfig::with_alpha(alpha),
                seed,
            ),
            &edges,
        );
        assert!(out.cover.verify(&inst).is_ok());
    }
}

#[test]
fn algorithm1_always_produces_valid_cover() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0004);
    for _ in 0..CASES {
        let inst = arb_instance(&mut rng);
        let order = arb_order(&mut rng);
        let seed = rng.random::<u64>();
        let n_mult = rng.random_range(1usize..4);
        let edges = order_edges(&inst, order);
        // Deliberately wrong stream-length estimates: correctness must
        // not depend on the guess (quality does — NGuessing handles it).
        let n_est = (inst.num_edges() * n_mult).max(1);
        let out = run_on_edges(
            RandomOrderSolver::new(
                inst.m(),
                inst.n(),
                n_est,
                RandomOrderConfig::practical(),
                seed,
            ),
            &edges,
        );
        assert!(out.cover.verify(&inst).is_ok());
        assert!(out.cover.size() <= inst.n());
    }
}

#[test]
fn greedy_cover_is_valid_and_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0005);
    for _ in 0..CASES {
        let inst = arb_instance(&mut rng);
        let cover = setcover_algos::greedy_cover(&inst);
        assert!(cover.verify(&inst).is_ok());
        assert!(cover.size() <= inst.n());
        assert!(cover.size() >= 1);
    }
}

#[test]
fn first_set_cover_size_equals_distinct_first_sets() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0006);
    for _ in 0..CASES {
        let inst = arb_instance(&mut rng);
        let order = arb_order(&mut rng);
        let edges = order_edges(&inst, order);
        let out = run_on_edges(FirstSetSolver::new(inst.m(), inst.n()), &edges);
        assert!(out.cover.verify(&inst).is_ok());
        // The cover is exactly the set of first-seen sets per element.
        let mut first = vec![None; inst.n()];
        for e in &edges {
            if first[e.elem.index()].is_none() {
                first[e.elem.index()] = Some(e.set);
            }
        }
        let mut distinct: Vec<_> = first.into_iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        assert_eq!(out.cover.sets(), &distinct[..]);
    }
}

#[test]
fn isqrt_defining_property() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0007);
    let check = |x: usize| {
        let r = isqrt(x);
        assert!(r.checked_mul(r).is_some_and(|sq| sq <= x) || x == 0);
        assert!((r + 1).checked_mul(r + 1).is_none_or(|sq| sq > x));
        let rc = isqrt_ceil(x);
        assert!(rc >= r);
        assert!(rc <= r + 1);
    };
    for x in [0usize, 1, 2, 3, 4, usize::MAX, usize::MAX - 1] {
        check(x);
    }
    for _ in 0..CASES {
        check(rng.random::<usize>());
    }
}

#[test]
fn lb_family_partitions_are_exact() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0008);
    let mut tested = 0;
    while tested < CASES {
        let n = 1usize << rng.random_range(6u32..12);
        let t = rng.random_range(2usize..6);
        let m = rng.random_range(2usize..10);
        let seed = rng.random::<u64>();
        let cfg = LbFamilyConfig { n, m, t };
        if cfg.set_size() > n {
            continue; // prop_assume equivalent
        }
        tested += 1;
        let fam = LbFamily::generate(cfg, seed);
        for i in 0..m {
            let mut all: Vec<u32> = (0..t).flat_map(|r| fam.part(i, r).to_vec()).collect();
            assert_eq!(all.len(), cfg.set_size());
            all.sort_unstable();
            let before = all.len();
            all.dedup();
            assert_eq!(all.len(), before, "duplicates within a set");
            assert!(all.iter().all(|&u| (u as usize) < n));
        }
        // Complement partitions the universe.
        let comp = fam.complement(0);
        assert_eq!(comp.len(), n - cfg.set_size());
    }
}

#[test]
fn chernoff_bounds_bracket_the_mean() {
    let mut rng = SmallRng::seed_from_u64(0x0bde_0009);
    for _ in 0..CASES {
        let mu = rng.random::<f64>() * 1e6;
        let fail = 10f64.powi(-rng.random_range(1i32..12));
        let up = setcover_core::math::chernoff_upper(mu, fail);
        let lo = setcover_core::math::chernoff_lower(mu, fail);
        assert!(up >= mu);
        assert!(lo <= mu);
        assert!(lo >= 0.0);
    }
}
