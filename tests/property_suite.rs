//! Property-based tests (proptest) on the core invariants:
//!
//! * instance construction round-trips and validates;
//! * every order adapter emits a permutation of the edge set;
//! * every streaming solver emits a *verified* cover on arbitrary
//!   feasible instances and orders, with size ≤ n;
//! * math helpers satisfy their defining inequalities;
//! * Lemma 1 families partition correctly for arbitrary configs.

use proptest::prelude::*;

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, FirstSetSolver, KkSolver, RandomOrderConfig,
    RandomOrderSolver,
};
use setcover_core::math::{isqrt, isqrt_ceil};
use setcover_core::solver::run_on_edges;
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_core::{InstanceBuilder, SetCoverInstance};
use setcover_gen::lowerbound::{LbFamily, LbFamilyConfig};

/// Strategy: a feasible random instance described by (m, n, extra edges).
fn arb_instance() -> impl Strategy<Value = SetCoverInstance> {
    (2usize..12, 2usize..40, proptest::collection::vec((0u32..12, 0u32..40), 0..150)).prop_map(
        |(m, n, edges)| {
            let mut b = InstanceBuilder::new(m, n);
            // Feasibility spine: element u belongs to set u % m.
            for u in 0..n as u32 {
                b.add_edge((u % m as u32).into(), u.into());
            }
            for (s, u) in edges {
                b.add_edge((s % m as u32).into(), (u % n as u32).into());
            }
            b.build().expect("spine guarantees feasibility")
        },
    )
}

fn arb_order() -> impl Strategy<Value = StreamOrder> {
    prop_oneof![
        Just(StreamOrder::SetArrival),
        any::<u64>().prop_map(StreamOrder::SetArrivalShuffled),
        Just(StreamOrder::Interleaved),
        Just(StreamOrder::ElementGrouped),
        any::<u64>().prop_map(StreamOrder::Uniform),
        Just(StreamOrder::GreedyTrap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn orders_are_permutations(inst in arb_instance(), order in arb_order()) {
        let edges = order_edges(&inst, order);
        prop_assert_eq!(edges.len(), inst.num_edges());
        let mut sorted = edges;
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), inst.num_edges());
        prop_assert_eq!(sorted, inst.edge_vec());
    }

    #[test]
    fn kk_always_produces_valid_cover(
        inst in arb_instance(),
        order in arb_order(),
        seed in any::<u64>(),
    ) {
        let edges = order_edges(&inst, order);
        let out = run_on_edges(KkSolver::new(inst.m(), inst.n(), seed), &edges);
        prop_assert!(out.cover.verify(&inst).is_ok());
        prop_assert!(out.cover.size() <= inst.n());
    }

    #[test]
    fn algorithm2_always_produces_valid_cover(
        inst in arb_instance(),
        order in arb_order(),
        seed in any::<u64>(),
        alpha in 1.0f64..64.0,
    ) {
        let edges = order_edges(&inst, order);
        let out = run_on_edges(
            AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::with_alpha(alpha), seed),
            &edges,
        );
        prop_assert!(out.cover.verify(&inst).is_ok());
    }

    #[test]
    fn algorithm1_always_produces_valid_cover(
        inst in arb_instance(),
        order in arb_order(),
        seed in any::<u64>(),
        n_mult in 1usize..4,
    ) {
        let edges = order_edges(&inst, order);
        // Deliberately wrong stream-length estimates: correctness must
        // not depend on the guess (quality does — NGuessing handles it).
        let n_est = (inst.num_edges() * n_mult).max(1);
        let out = run_on_edges(
            RandomOrderSolver::new(
                inst.m(), inst.n(), n_est, RandomOrderConfig::practical(), seed,
            ),
            &edges,
        );
        prop_assert!(out.cover.verify(&inst).is_ok());
        prop_assert!(out.cover.size() <= inst.n());
    }

    #[test]
    fn greedy_cover_is_valid_and_bounded(inst in arb_instance()) {
        let cover = setcover_algos::greedy_cover(&inst);
        prop_assert!(cover.verify(&inst).is_ok());
        prop_assert!(cover.size() <= inst.n());
        prop_assert!(cover.size() >= 1);
    }

    #[test]
    fn first_set_cover_size_equals_distinct_first_sets(
        inst in arb_instance(),
        order in arb_order(),
    ) {
        let edges = order_edges(&inst, order);
        let out = run_on_edges(FirstSetSolver::new(inst.m(), inst.n()), &edges);
        prop_assert!(out.cover.verify(&inst).is_ok());
        // The cover is exactly the set of first-seen sets per element.
        let mut first = vec![None; inst.n()];
        for e in &edges {
            if first[e.elem.index()].is_none() {
                first[e.elem.index()] = Some(e.set);
            }
        }
        let mut distinct: Vec<_> = first.into_iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(out.cover.sets(), &distinct[..]);
    }

    #[test]
    fn isqrt_defining_property(x in any::<usize>()) {
        let r = isqrt(x);
        prop_assert!(r.checked_mul(r).is_some_and(|sq| sq <= x) || x == 0);
        prop_assert!((r + 1).checked_mul(r + 1).is_none_or(|sq| sq > x));
        let rc = isqrt_ceil(x);
        prop_assert!(rc >= r);
        prop_assert!(rc <= r + 1);
    }

    #[test]
    fn lb_family_partitions_are_exact(
        n_exp in 6u32..12,
        t in 2usize..6,
        m in 2usize..10,
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let cfg = LbFamilyConfig { n, m, t };
        prop_assume!(cfg.set_size() <= n);
        let fam = LbFamily::generate(cfg, seed);
        for i in 0..m {
            let mut all: Vec<u32> = (0..t).flat_map(|r| fam.part(i, r).to_vec()).collect();
            prop_assert_eq!(all.len(), cfg.set_size());
            all.sort_unstable();
            let before = all.len();
            all.dedup();
            prop_assert_eq!(all.len(), before, "duplicates within a set");
            prop_assert!(all.iter().all(|&u| (u as usize) < n));
        }
        // Complement partitions the universe.
        let comp = fam.complement(0);
        prop_assert_eq!(comp.len(), n - cfg.set_size());
    }

    #[test]
    fn chernoff_bounds_bracket_the_mean(mu in 0.0f64..1e6, fail_exp in 1i32..12) {
        let fail = 10f64.powi(-fail_exp);
        let up = setcover_core::math::chernoff_upper(mu, fail);
        let lo = setcover_core::math::chernoff_lower(mu, fail);
        prop_assert!(up >= mu);
        prop_assert!(lo <= mu);
        prop_assert!(lo >= 0.0);
    }
}
