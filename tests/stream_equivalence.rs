//! Lazy-stream equivalence suite: for **every** `StreamOrder`, the
//! generator-backed lazy stream must yield the byte-identical edge
//! sequence to `order_edges` (the materializing oracle) — on planted,
//! uniform, Zipf-skewed, and degenerate single-set instances, across
//! ≥32 seeded cases. This is the contract that lets the whole harness
//! run zero-materialization without touching any seeded replay result.

use setcover_core::stream::{order_edges, stream_of, EdgeStream, StreamOrder};
use setcover_core::{Edge, InstanceBuilder, SetCoverInstance};
use setcover_gen::planted::{planted, PlantedConfig};
use setcover_gen::uniform::{uniform, UniformConfig};
use setcover_gen::zipf::{zipf, ZipfConfig};

/// Every stream-order family, parameterized by a case seed so shuffled
/// orders get fresh randomness per case.
fn all_orders(seed: u64) -> Vec<StreamOrder> {
    vec![
        StreamOrder::SetArrival,
        StreamOrder::SetArrivalShuffled(seed),
        StreamOrder::ElementGrouped,
        StreamOrder::GreedyTrap,
        StreamOrder::Interleaved,
        StreamOrder::Uniform(seed),
        StreamOrder::BlockShuffled {
            block: 1 + (seed as usize % 97),
            seed,
        },
        StreamOrder::BlockShuffled {
            block: 1_000_000, // larger than any test stream: one block
            seed,
        },
    ]
}

fn single_set_instance(n: usize) -> SetCoverInstance {
    let mut b = InstanceBuilder::new(1, n);
    b.add_set_elems(0, 0..n as u32);
    b.build().expect("single-set instance")
}

fn assert_lazy_matches_oracle(inst: &SetCoverInstance, label: &str, case_seed: u64) {
    for order in all_orders(case_seed) {
        let oracle = order_edges(inst, order);
        let mut lazy = stream_of(inst, order);
        assert_eq!(
            lazy.len_hint(),
            Some(oracle.len()),
            "{label}/{}: len_hint disagrees with the oracle",
            order.name()
        );
        let mut got: Vec<Edge> = Vec::with_capacity(oracle.len());
        while let Some(e) = lazy.next_edge() {
            got.push(e);
        }
        assert_eq!(
            got,
            oracle,
            "{label}/{}: lazy stream diverged from order_edges (case seed {case_seed})",
            order.name()
        );
        // Exhausted streams must stay exhausted.
        assert_eq!(lazy.next_edge(), None);
    }
}

#[test]
fn planted_instances_match_under_every_order() {
    // 8 seeded planted cases × 8 orders = 64 comparisons.
    for case in 0..8u64 {
        let n = 64 + 32 * (case as usize % 3);
        let p = planted(&PlantedConfig::exact(n, 4 * n, 8), 0xBEEF + case);
        assert_lazy_matches_oracle(&p.workload.instance, "planted", case);
    }
}

#[test]
fn uniform_instances_match_under_every_order() {
    // 8 seeded uniform cases (ragged random set sizes) × 8 orders.
    for case in 0..8u64 {
        let n = 96;
        let m = 128 + 16 * case as usize;
        let w = uniform(&UniformConfig::ranged(n, m, 1, 24), 0xF00D + case);
        assert_lazy_matches_oracle(&w.instance, "uniform", case);
    }
}

#[test]
fn zipf_instances_match_under_every_order() {
    // 8 seeded Zipf-skewed cases (heavy-tailed element degrees) × 8 orders.
    for case in 0..8u64 {
        let w = zipf(
            &ZipfConfig {
                n: 128,
                m: 200,
                set_size: 6 + case as usize % 5,
                theta: 1.1,
            },
            0x21F + case,
        );
        assert_lazy_matches_oracle(&w.instance, "zipf", case);
    }
}

#[test]
fn single_set_instances_match_under_every_order() {
    // 8 degenerate single-set cases × 8 orders: the whole stream is one
    // set's elements, exercising every adapter's boundary handling.
    for case in 0..8u64 {
        let inst = single_set_instance(1 + 13 * case as usize);
        assert_lazy_matches_oracle(&inst, "single-set", case);
    }
}
