//! The serial-equivalence guarantee, tested end-to-end: every
//! experiment's report text must be **byte-identical** no matter how
//! many worker threads execute its trial grid. Seeds are functions of
//! grid coordinates and results are reassembled in grid order, so a
//! `threads=8` run and a `threads=1` run are the same computation
//! scheduled differently.

use setcover_bench::experiments::{alpha_sweep, concentration, separation, table1};
use setcover_bench::TrialRunner;

#[test]
fn separation_report_is_identical_across_thread_counts() {
    let p = separation::Params {
        n: 1024,
        m: Some(4096),
        opt: 4,
        trials: 2,
    };
    let serial = separation::run_with(&p, &TrialRunner::serial());
    assert_eq!(serial, separation::run(&p), "run() must be the serial path");
    for threads in [2, 8] {
        let par = separation::run_with(&p, &TrialRunner::new(threads));
        assert_eq!(serial, par, "separation diverged at threads={threads}");
    }
}

#[test]
fn alpha_sweep_report_is_identical_across_thread_counts() {
    let p = alpha_sweep::Params {
        n: 256,
        m: Some(2048),
        trials: 2,
    };
    let serial = alpha_sweep::run_with(&p, &TrialRunner::serial());
    for threads in [2, 8] {
        let par = alpha_sweep::run_with(&p, &TrialRunner::new(threads));
        assert_eq!(serial, par, "alpha_sweep diverged at threads={threads}");
    }
}

#[test]
fn table1_report_is_identical_across_thread_counts() {
    let p = table1::Params {
        n: 144,
        m: Some(1296),
        trials: 2,
    };
    let serial = table1::run_with(&p, &TrialRunner::serial());
    let par = table1::run_with(&p, &TrialRunner::new(8));
    assert_eq!(serial, par);
}

#[test]
fn concentration_report_is_identical_across_thread_counts() {
    let p = concentration::Params { trials: 30 };
    let serial = concentration::run_with(&p, &TrialRunner::serial());
    let par = concentration::run_with(&p, &TrialRunner::new(8));
    assert_eq!(serial, par);
}

#[test]
fn parallel_runs_account_the_same_edges() {
    let p = alpha_sweep::Params {
        n: 256,
        m: Some(2048),
        trials: 1,
    };
    let serial = TrialRunner::serial();
    let par = TrialRunner::new(4);
    let _ = alpha_sweep::run_with(&p, &serial);
    let _ = alpha_sweep::run_with(&p, &par);
    assert!(serial.total_edges() > 0);
    assert_eq!(serial.total_edges(), par.total_edges());
}
