//! The serial-equivalence guarantee, tested end-to-end: every
//! experiment's report text must be **byte-identical** no matter how
//! many worker threads execute its trial grid. Seeds are functions of
//! grid coordinates and results are reassembled in grid order, so a
//! `threads=8` run and a `threads=1` run are the same computation
//! scheduled differently.

use setcover_algos::KkSolver;
use setcover_bench::experiments::{alpha_sweep, concentration, separation, table1};
use setcover_bench::harness::measure_order;
use setcover_bench::TrialRunner;
use setcover_core::stream::StreamOrder;
use setcover_gen::planted::{planted, PlantedConfig};

#[test]
fn separation_report_is_identical_across_thread_counts() {
    let p = separation::Params {
        n: 1024,
        m: Some(4096),
        opt: 4,
        trials: 2,
    };
    let serial = separation::run_with(&p, &TrialRunner::serial());
    assert_eq!(serial, separation::run(&p), "run() must be the serial path");
    for threads in [2, 8] {
        let par = separation::run_with(&p, &TrialRunner::new(threads));
        assert_eq!(serial, par, "separation diverged at threads={threads}");
    }
}

#[test]
fn alpha_sweep_report_is_identical_across_thread_counts() {
    let p = alpha_sweep::Params {
        n: 256,
        m: Some(2048),
        trials: 2,
    };
    let serial = alpha_sweep::run_with(&p, &TrialRunner::serial());
    for threads in [2, 8] {
        let par = alpha_sweep::run_with(&p, &TrialRunner::new(threads));
        assert_eq!(serial, par, "alpha_sweep diverged at threads={threads}");
    }
}

#[test]
fn table1_report_is_identical_across_thread_counts() {
    let p = table1::Params {
        n: 144,
        m: Some(1296),
        trials: 2,
    };
    let serial = table1::run_with(&p, &TrialRunner::serial());
    let par = table1::run_with(&p, &TrialRunner::new(8));
    assert_eq!(serial, par);
}

#[test]
fn concentration_report_is_identical_across_thread_counts() {
    let p = concentration::Params { trials: 30 };
    let serial = concentration::run_with(&p, &TrialRunner::serial());
    let par = concentration::run_with(&p, &TrialRunner::new(8));
    assert_eq!(serial, par);
}

#[test]
fn lazy_streams_are_deterministic_across_thread_counts() {
    // The zero-materialization path directly: a grid of `measure_order`
    // trials over lazy streams must produce identical covers whether the
    // grid runs serially or on a worker pool. Lazy orders regenerate from
    // the shared CSR inside worker threads, so this also proves the
    // generators are race-free under concurrent reads.
    let p = planted(&PlantedConfig::exact(256, 1024, 8), 77);
    let inst = &p.workload.instance;
    let grid: Vec<(StreamOrder, u64)> = [
        StreamOrder::SetArrival,
        StreamOrder::SetArrivalShuffled(3),
        StreamOrder::ElementGrouped,
        StreamOrder::GreedyTrap,
        StreamOrder::Interleaved,
        StreamOrder::Uniform(3),
        StreamOrder::BlockShuffled { block: 64, seed: 3 },
    ]
    .into_iter()
    .flat_map(|o| (0..3u64).map(move |s| (o, 40 + s)))
    .collect();
    let run = |runner: &TrialRunner| -> Vec<(usize, &'static str)> {
        runner
            .measure_grid(&grid, |_, &(order, seed)| {
                measure_order(KkSolver::new(inst.m(), inst.n(), seed), inst, order, 8)
            })
            .into_iter()
            .map(|r| (r.cover_size, r.order))
            .collect()
    };
    let serial = run(&TrialRunner::serial());
    for threads in [2, 8] {
        assert_eq!(
            serial,
            run(&TrialRunner::new(threads)),
            "lazy measure_order grid diverged at threads={threads}"
        );
    }
}

#[test]
fn parallel_runs_account_the_same_edges() {
    let p = alpha_sweep::Params {
        n: 256,
        m: Some(2048),
        trials: 1,
    };
    let serial = TrialRunner::serial();
    let par = TrialRunner::new(4);
    let _ = alpha_sweep::run_with(&p, &serial);
    let _ = alpha_sweep::run_with(&p, &par);
    assert!(serial.total_edges() > 0);
    assert_eq!(serial.total_edges(), par.total_edges());
}
