//! File-based I/O integration: generate → write → read → solve → verify,
//! through real files on disk (the interchange path the CLI tools use).

use std::io::{BufReader, BufWriter};

use setcover_algos::{greedy_cover, KkSolver};
use setcover_core::io::{read_instance, read_stream, write_instance, write_stream};
use setcover_core::solver::run_on_edges;
use setcover_core::stream::{order_edges, stream_of, StreamOrder};
use setcover_gen::planted::{planted, PlantedConfig};
use setcover_gen::web::{web_crawl, WebConfig};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("setcover-io-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn instance_file_roundtrip_preserves_solutions() {
    let p = planted(&PlantedConfig::exact(120, 240, 12), 1);
    let inst = &p.workload.instance;

    let path = tmp("inst.sc");
    write_instance(inst, BufWriter::new(std::fs::File::create(&path).unwrap())).unwrap();
    let back = read_instance(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(back.edge_vec(), inst.edge_vec());
    // Deterministic algorithms produce identical output on both copies.
    let a = greedy_cover(inst);
    let b = greedy_cover(&back);
    assert_eq!(a, b);
}

#[test]
fn stream_file_roundtrip_preserves_runs() {
    let w = web_crawl(&WebConfig::crawl(150, 200), 2);
    let inst = &w.instance;
    let edges = order_edges(inst, StreamOrder::Uniform(3));

    let path = tmp("run.scs");
    write_stream(
        inst.m(),
        inst.n(),
        edges.iter().copied(),
        BufWriter::new(std::fs::File::create(&path).unwrap()),
    )
    .unwrap();
    let parsed = read_stream(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(parsed.edges, edges, "order must survive the roundtrip");

    // Seeded solver gives the identical cover on original and replayed
    // streams — the property that makes .scs files an interchange format.
    let orig = run_on_edges(KkSolver::new(inst.m(), inst.n(), 9), &edges);
    let replay = run_on_edges(KkSolver::new(parsed.m, parsed.n, 9), &parsed.edges);
    assert_eq!(orig.cover, replay.cover);
    orig.cover.verify(inst).unwrap();
    replay.cover.verify(&parsed.to_instance().unwrap()).unwrap();
}

#[test]
fn stream_file_with_adversarial_order_is_reusable() {
    // The use case: exchange a concrete adversarial order between
    // implementations. The file view and the in-memory view must agree
    // about what the instance is.
    let p = planted(&PlantedConfig::exact(60, 120, 6), 4);
    let inst = &p.workload.instance;

    let mut buf = Vec::new();
    // The lazy stream writes the same bytes the materialized buffer would.
    write_stream(
        inst.m(),
        inst.n(),
        stream_of(inst, StreamOrder::GreedyTrap),
        &mut buf,
    )
    .unwrap();
    let parsed = read_stream(&buf[..]).unwrap();
    let rebuilt = parsed.to_instance().unwrap();
    assert_eq!(rebuilt.edge_vec(), inst.edge_vec());
    assert_eq!(rebuilt.stats().max_set_size, inst.stats().max_set_size);
}
