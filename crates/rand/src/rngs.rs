//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++ (Blackman &
/// Vigna), the algorithm behind the real `SmallRng` on 64-bit targets.
/// 256 bits of state, period 2^256 − 1, passes BigCrush.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through SplitMix64, as the xoshiro authors
        // recommend; guarantees the all-zero state is unreachable.
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_state_is_unreachable_from_seeding() {
        for seed in [0u64, 1, u64::MAX] {
            let rng = SmallRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0, 0, 0, 0]);
        }
    }

    #[test]
    fn outputs_are_well_spread() {
        // Cheap sanity check: 64 outputs from seed 0 are distinct and not
        // obviously degenerate (some high and low bits vary).
        let mut rng = SmallRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut dedup = xs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), xs.len());
        assert!(xs.iter().any(|x| x >> 63 == 1) && xs.iter().any(|x| x >> 63 == 0));
        assert!(xs.iter().any(|x| x & 1 == 1) && xs.iter().any(|x| x & 1 == 0));
    }
}
