//! Offline vendored stand-in for the `rand` crate.
//!
//! The workspace originally pinned `rand = "0.10"`, which does not resolve:
//! no `0.10.x` release of `rand` exists on crates.io, and the build
//! environment has no registry access at all. Rather than rewrite every
//! call site, this crate implements — under the same paths — exactly the
//! API surface the workspace uses:
//!
//! * [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * [`RngExt::random`] for the primitive types we sample;
//! * [`RngExt::random_range`] over half-open and inclusive integer ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64, so statistical
//! quality is adequate for Bernoulli sampling and shuffles. Streams are
//! **stable across releases of this workspace by policy**: experiment
//! reports and seeded tests rely on `seed_from_u64(s)` producing the same
//! stream forever. Do not change the generator without regenerating every
//! checked-in result.
//!
//! This is *not* a general-purpose `rand` replacement: anything outside
//! the surface above (weighted distributions, `fill_bytes`, thread-local
//! RNGs, ...) is intentionally absent so that accidental new uses fail
//! loudly at compile time and get a deliberate decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// A random number generator yielding 64-bit outputs.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw output, mirroring the
/// `StandardUniform` distribution of the real crate.
pub trait Random: Sized {
    /// Draw one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integers samplable from a bounded range.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (both inclusive). `lo <= hi` is the
    /// caller's responsibility.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased draw from `[0, span]` (inclusive) via Lemire-style widening
/// multiplication with rejection.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1; // number of distinct values
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut low = m as u64;
    if low < bound {
        // Reject the biased low region (Lemire's method): afterwards each
        // of the `bound` values is hit by exactly floor(2^64/bound) inputs.
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt + Decrement> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        // Non-empty half-open range == inclusive range up to `end - 1`.
        T::sample_inclusive(rng, self.start, self.end.decrement())
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Decrement, used to convert half-open range bounds to inclusive ones.
pub trait Decrement {
    /// `self - 1` (wrapping; callers guarantee non-empty ranges).
    fn decrement(self) -> Self;
}

macro_rules! impl_decrement {
    ($($t:ty),*) => {$(
        impl Decrement for $t {
            #[inline]
            fn decrement(self) -> Self {
                self.wrapping_sub(1)
            }
        }
    )*};
}

impl_decrement!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods on any RNG, mirroring the `Rng` extension trait.
pub trait RngExt: RngCore {
    /// Sample a value of type `T` from the standard distribution
    /// (uniform over the type's bit patterns / `[0,1)` for floats).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Sample uniformly from a range: `rng.random_range(0..n)` or
    /// `rng.random_range(lo..=hi)`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        p >= 1.0 || (p > 0.0 && self.random::<f64>() < p)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 100_000;
        let sum: f64 = (0..trials).map(|_| rng.random::<f64>()).sum();
        let mean = sum / trials as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x: usize = rng.random_range(0..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 should appear");
        for _ in 0..1_000 {
            let x: u32 = rng.random_range(5..=7);
            assert!((5..=7).contains(&x));
        }
        // Single-value ranges are fine.
        assert_eq!(rng.random_range(4usize..5), 4);
        assert_eq!(rng.random_range(9u64..=9), 9);
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[rng.random_range(0usize..8)] += 1;
        }
        let expected = trials / 8;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "bucket {i} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _: usize = rng.random_range(3..3);
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let x: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&x));
        }
    }
}
