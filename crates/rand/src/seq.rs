//! Sequence helpers (shuffling).

use crate::{RngCore, RngExt};

/// Slice extension trait providing an in-place uniform shuffle.
pub trait SliceRandom {
    /// Shuffle the slice in place (Fisher–Yates), uniformly over all
    /// permutations given a uniform RNG.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(9));
        b.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(
            a,
            (0..100).collect::<Vec<_>>(),
            "overwhelmingly unlikely to be identity"
        );
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut empty: [u32; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [42];
        one.shuffle(&mut rng);
        assert_eq!(one, [42]);
    }

    #[test]
    fn shuffle_positions_are_roughly_uniform() {
        // Element 0's final position should be ~uniform over 0..8.
        let mut counts = [0usize; 8];
        for seed in 0..8_000u64 {
            let mut v: Vec<usize> = (0..8).collect();
            v.shuffle(&mut SmallRng::seed_from_u64(seed));
            counts[v.iter().position(|&x| x == 0).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - 1000.0).abs() / 1000.0;
            assert!(dev < 0.15, "position {i} count {c}");
        }
    }
}
