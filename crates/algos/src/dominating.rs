//! Streaming Dominating Set — the `m = n` facade over edge-arrival Set
//! Cover.
//!
//! Khanna and Konrad's original problem (ITCS'22, the source of Theorem
//! 1): given a graph stream of edges `{u, v}`, maintain a small set `D`
//! of vertices such that every vertex is in `D` or adjacent to it. As a
//! Set Cover instance, set `v` is the closed neighborhood `N[v]`; a graph
//! edge `{u, v}` contributes the two tuples `(N[u], v)` and `(N[v], u)`,
//! and every vertex contributes `(N[v], v)`.
//!
//! [`DominatingSetStream`] performs that translation over any
//! [`StreamingSetCover`] backend, so every algorithm in this crate
//! doubles as a streaming Dominating Set algorithm with the same
//! guarantees (Õ(√n)-approximation at Õ(n) space for KK, etc. — note for
//! `m = n` the KK space bound Õ(m) *is* the semi-streaming Õ(n)).

use setcover_core::{Edge, ElemId, SetId, StreamingSetCover};

use crate::kk::KkSolver;

/// A dominating set with per-vertex dominator witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominatingSet {
    /// The chosen vertices, ascending.
    vertices: Vec<u32>,
    /// `dominator[v]` is the chosen vertex dominating `v` (itself or a
    /// neighbor).
    dominator: Vec<u32>,
}

impl DominatingSet {
    /// The chosen vertices.
    pub fn vertices(&self) -> &[u32] {
        &self.vertices
    }

    /// `|D|`.
    pub fn size(&self) -> usize {
        self.vertices.len()
    }

    /// The witness dominating vertex `v`.
    pub fn dominator_of(&self, v: u32) -> u32 {
        self.dominator[v as usize]
    }

    /// Verify against the graph: every vertex's witness must be itself or
    /// an adjacent vertex, and must be in `D`. `edges` lists undirected
    /// edges; `n` is the vertex count.
    pub fn verify(&self, n: usize, edges: &[(u32, u32)]) -> Result<(), String> {
        if self.dominator.len() != n {
            return Err(format!(
                "witness table has {} entries, graph has {n}",
                self.dominator.len()
            ));
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for v in 0..n as u32 {
            let d = self.dominator[v as usize];
            if self.vertices.binary_search(&d).is_err() {
                return Err(format!("witness {d} of {v} is not in the dominating set"));
            }
            if d != v && !adj[v as usize].contains(&d) {
                return Err(format!("witness {d} is not adjacent to {v}"));
            }
        }
        Ok(())
    }
}

/// Adapter translating a graph stream into set-cover tuples for an inner
/// solver. See the [module docs](self).
#[derive(Debug)]
pub struct DominatingSetStream<A: StreamingSetCover> {
    inner: A,
    n: usize,
    seen_vertex: Vec<bool>,
}

impl DominatingSetStream<KkSolver> {
    /// The default backend: the KK-algorithm (its original setting).
    pub fn kk(n: usize, seed: u64) -> Self {
        Self::with_solver(n, KkSolver::new(n, n, seed))
    }
}

impl<A: StreamingSetCover> DominatingSetStream<A> {
    /// Wrap an inner solver built for an `n × n` instance.
    pub fn with_solver(n: usize, inner: A) -> Self {
        DominatingSetStream {
            inner,
            n,
            seen_vertex: vec![false; n],
        }
    }

    /// Announce a vertex (emits its self-domination tuple). Idempotent.
    /// Vertices touched by [`observe_edge`](Self::observe_edge) are
    /// announced automatically.
    pub fn observe_vertex(&mut self, v: u32) {
        assert!((v as usize) < self.n, "vertex {v} out of range");
        if !self.seen_vertex[v as usize] {
            self.seen_vertex[v as usize] = true;
            self.inner.process_edge(Edge {
                set: SetId(v),
                elem: ElemId(v),
            });
        }
    }

    /// Process one undirected graph edge `{u, v}`: `u` can dominate `v`
    /// and vice versa.
    pub fn observe_edge(&mut self, u: u32, v: u32) {
        self.observe_vertex(u);
        self.observe_vertex(v);
        self.inner.process_edge(Edge {
            set: SetId(u),
            elem: ElemId(v),
        });
        self.inner.process_edge(Edge {
            set: SetId(v),
            elem: ElemId(u),
        });
    }

    /// Finish: every vertex of the graph must have been observed (alone
    /// or via an edge).
    pub fn finalize(&mut self) -> DominatingSet {
        for (v, &s) in self.seen_vertex.iter().enumerate() {
            assert!(
                s,
                "vertex {v} never observed; announce isolated vertices explicitly"
            );
        }
        let cover = self.inner.finalize();
        DominatingSet {
            vertices: cover.sets().iter().map(|s| s.0).collect(),
            dominator: cover
                .certificate()
                .iter()
                .map(|s| {
                    s.expect("full graph stream observed every vertex, so the certificate is total")
                        .0
                })
                .collect(),
        }
    }

    /// The inner solver's space report.
    pub fn space(&self) -> setcover_core::SpaceReport {
        self.inner.space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::{AdversarialConfig, AdversarialSolver};
    use rand::RngExt;
    use setcover_core::rng::seeded_rng;

    fn random_graph(n: usize, extra: usize, seed: u64) -> Vec<(u32, u32)> {
        // A connected-ish graph: a path plus random chords.
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        let mut rng = seeded_rng(seed);
        for _ in 0..extra {
            let a = rng.random_range(0..n as u32);
            let b = rng.random_range(0..n as u32);
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges
    }

    #[test]
    fn kk_backend_produces_valid_dominating_set() {
        let n = 300;
        let edges = random_graph(n, 600, 1);
        let mut ds = DominatingSetStream::kk(n, 7);
        for &(u, v) in &edges {
            ds.observe_edge(u, v);
        }
        let d = ds.finalize();
        d.verify(n, &edges).unwrap();
        assert!(d.size() <= n);
        assert!(d.size() >= 1);
    }

    #[test]
    fn any_backend_works() {
        let n = 200;
        let edges = random_graph(n, 300, 2);
        let solver = AdversarialSolver::new(n, n, AdversarialConfig::sqrt_n(n), 3);
        let mut ds = DominatingSetStream::with_solver(n, solver);
        for &(u, v) in &edges {
            ds.observe_edge(u, v);
        }
        let d = ds.finalize();
        d.verify(n, &edges).unwrap();
    }

    #[test]
    fn isolated_vertices_dominate_themselves() {
        let n = 5;
        let mut ds = DominatingSetStream::kk(n, 1);
        ds.observe_edge(0, 1);
        for v in 2..5 {
            ds.observe_vertex(v);
        }
        let d = ds.finalize();
        d.verify(n, &[(0, 1)]).unwrap();
        for v in 2..5u32 {
            assert_eq!(d.dominator_of(v), v, "isolated vertex must self-dominate");
        }
        assert!(d.size() >= 4); // 3 isolated + at least one of {0,1}
    }

    #[test]
    #[should_panic(expected = "never observed")]
    fn finalize_requires_all_vertices_observed() {
        let mut ds = DominatingSetStream::kk(3, 1);
        ds.observe_edge(0, 1); // vertex 2 never announced
        let _ = ds.finalize();
    }

    #[test]
    fn star_graph_is_dominated_by_few() {
        // Star: center 0 connected to all others; OPT = 1 (the center).
        // KK includes N[0] once its uncovered-degree crosses enough
        // levels; the leaves streamed before that inclusion are patched
        // individually (their first-seen set is their own self-loop), so
        // the cover is `(leaves before inclusion) + O(1)` — well inside
        // KK's Õ(√n)·OPT guarantee but not a bare 2√n. Assert the Õ(√n)
        // envelope with its log factor.
        let n = 128;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        let mut ds = DominatingSetStream::kk(n, 5);
        for &(u, v) in &edges {
            ds.observe_edge(u, v);
        }
        let d = ds.finalize();
        d.verify(n, &edges).unwrap();
        let sqrt_n = setcover_core::math::isqrt(n) as f64;
        let envelope = (sqrt_n * setcover_core::math::log2f(n)).ceil() as usize;
        assert!(
            d.size() <= envelope,
            "{} above √n·log n = {envelope}",
            d.size()
        );
        // And the center must be in the set (it dominates someone).
        assert!(d.vertices().contains(&0));
    }

    #[test]
    fn witness_table_is_total_and_consistent() {
        let n = 64;
        let edges = random_graph(n, 64, 9);
        let mut ds = DominatingSetStream::kk(n, 11);
        for &(u, v) in &edges {
            ds.observe_edge(u, v);
        }
        let d = ds.finalize();
        for v in 0..n as u32 {
            let w = d.dominator_of(v);
            assert!(d.vertices().binary_search(&w).is_ok());
        }
    }
}
