//! Shared building blocks for the streaming solvers.
//!
//! Every algorithm in the paper keeps (at least) three per-element
//! structures the model grants within `Õ(n)` space:
//!
//! * the *marked-as-covered* element set (`O(n)` bits — Algorithm 1 line 3,
//!   Algorithm 2's `U`);
//! * the *first-set* map `R(u)` remembering, for each element, the first
//!   set it was seen in, used for post-processing patching (Algorithm 1
//!   line 4, Algorithm 2 lines 9–10);
//! * the solution under construction with its certificate.
//!
//! These are factored here so each solver charges them to the
//! [`SpaceMeter`] identically.

use setcover_core::space::{bitset_words, SpaceComponent, SpaceMeter};
use setcover_core::{Cover, ElemId, SetId};

/// A dense marked-element bitset with a count, charged as `n/64` words.
#[derive(Debug, Clone)]
pub struct MarkSet {
    bits: Vec<u64>,
    marked: usize,
    n: usize,
}

impl MarkSet {
    /// An empty mark set over `n` elements; charges the meter once.
    pub fn new(n: usize, meter: &mut SpaceMeter) -> Self {
        meter.charge(SpaceComponent::Marks, bitset_words(n));
        MarkSet {
            bits: vec![0; bitset_words(n)],
            marked: 0,
            n,
        }
    }

    /// Mark element `u`; returns `true` if it was previously unmarked.
    #[inline]
    pub fn mark(&mut self, u: ElemId) -> bool {
        let (w, b) = (u.index() / 64, u.index() % 64);
        let mask = 1u64 << b;
        if self.bits[w] & mask == 0 {
            self.bits[w] |= mask;
            self.marked += 1;
            true
        } else {
            false
        }
    }

    /// Whether `u` is marked.
    #[inline]
    pub fn is_marked(&self, u: ElemId) -> bool {
        let (w, b) = (u.index() / 64, u.index() % 64);
        self.bits[w] & (1u64 << b) != 0
    }

    /// Number of marked elements.
    pub fn count(&self) -> usize {
        self.marked
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether every element is marked.
    pub fn all_marked(&self) -> bool {
        self.marked == self.n
    }
}

/// The first-set map `R : U → S ∪ {⊥}` (Algorithm 1 line 4 / Algorithm 2
/// lines 9–10): remembers the first set each element was seen in, for the
/// patching phase. Charged as `n` words.
#[derive(Debug, Clone)]
pub struct FirstSetMap {
    first: Vec<Option<SetId>>,
}

impl FirstSetMap {
    /// An empty map over `n` elements; charges the meter once.
    pub fn new(n: usize, meter: &mut SpaceMeter) -> Self {
        meter.charge(SpaceComponent::FirstSet, n);
        FirstSetMap {
            first: vec![None; n],
        }
    }

    /// Record `R(u) ← s` if `R(u) = ⊥`.
    #[inline]
    pub fn observe(&mut self, u: ElemId, s: SetId) {
        let slot = &mut self.first[u.index()];
        if slot.is_none() {
            *slot = Some(s);
        }
    }

    /// `R(u)`, if any edge incident to `u` has arrived.
    #[inline]
    pub fn get(&self, u: ElemId) -> Option<SetId> {
        self.first[u.index()]
    }
}

/// The solution `Sol` under construction: a membership set over `S` with
/// insertion order, plus the growing certificate. Each added set charges
/// one word; each certified element charges one word.
#[derive(Debug, Clone)]
pub struct SolutionBuilder {
    members: Vec<SetId>,
    in_sol: Vec<bool>,
    certificate: Vec<Option<SetId>>,
    certified: usize,
}

impl SolutionBuilder {
    /// An empty solution for an instance with `m` sets and `n` elements.
    ///
    /// The `m`-bit membership vector is an *implementation* convenience for
    /// O(1) queries; it is charged as `m/64` words under
    /// [`SpaceComponent::Solution`] only for solvers that ask for it via
    /// this constructor — the paper's algorithms keep `|Sol| ≤ n`, and a
    /// hash-set implementation would cost `O(|Sol|)` words instead. The
    /// meter charge uses the hash-set accounting (`0` upfront, 1 word per
    /// member) to reflect the algorithm, not the convenience.
    pub fn new(m: usize, n: usize) -> Self {
        SolutionBuilder {
            members: Vec::new(),
            in_sol: vec![false; m],
            certificate: vec![None; n],
            certified: 0,
        }
    }

    /// Add set `s` to the solution. Returns `true` if newly added; charges
    /// one word for the member.
    pub fn add(&mut self, s: SetId, meter: &mut SpaceMeter) -> bool {
        if self.in_sol[s.index()] {
            false
        } else {
            self.in_sol[s.index()] = true;
            self.members.push(s);
            meter.charge(SpaceComponent::Solution, 1);
            true
        }
    }

    /// Whether `s ∈ Sol`.
    #[inline]
    pub fn contains(&self, s: SetId) -> bool {
        self.in_sol[s.index()]
    }

    /// Number of sets in the solution so far.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the solution is still empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Certify that `s` covers `u` (first witness wins); charges one word
    /// when a new certificate is recorded.
    pub fn certify(&mut self, u: ElemId, s: SetId, meter: &mut SpaceMeter) -> bool {
        let slot = &mut self.certificate[u.index()];
        if slot.is_none() {
            *slot = Some(s);
            self.certified += 1;
            meter.charge(SpaceComponent::Solution, 1);
            true
        } else {
            false
        }
    }

    /// Whether `u` has a covering witness.
    #[inline]
    pub fn has_witness(&self, u: ElemId) -> bool {
        self.certificate[u.index()].is_some()
    }

    /// The covering witness recorded for `u`, if any.
    #[inline]
    pub fn witness_of(&self, u: ElemId) -> Option<SetId> {
        self.certificate[u.index()]
    }

    /// Number of certified elements.
    pub fn certified(&self) -> usize {
        self.certified
    }

    /// The members added so far (insertion order).
    pub fn members(&self) -> &[SetId] {
        &self.members
    }

    /// Finish: patch every element without a witness using `patch`
    /// (typically [`FirstSetMap::get`]), adding the patch sets to the
    /// cover.
    ///
    /// On a feasible instance whose full stream was consumed, `R(u)` is
    /// total and the result is a total certificate that passes
    /// [`Cover::verify`]. When edges never arrived (dropped, truncated or
    /// repaired away), `patch` may fail for some elements: those slots are
    /// left `None` and the result is a *partial* cover — exactly what the
    /// solver can honestly certify about the delivered stream, checkable
    /// with [`Cover::verify_delivered`]. No panic either way: degraded
    /// input degrades the answer, not the process.
    pub fn finish_with<F: FnMut(ElemId) -> Option<SetId>>(mut self, mut patch: F) -> Cover {
        let n = self.certificate.len();
        let mut cert = Vec::with_capacity(n);
        for u in 0..n {
            let uid = ElemId(u as u32);
            let slot = match self.certificate[u] {
                Some(s) => Some(s),
                None => match patch(uid) {
                    Some(s) => {
                        if !self.in_sol[s.index()] {
                            self.in_sol[s.index()] = true;
                            self.members.push(s);
                        }
                        Some(s)
                    }
                    None => None,
                },
            };
            cert.push(slot);
        }
        Cover::new_partial(self.members, cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::space::SpaceComponent;

    #[test]
    fn mark_set_counts_and_charges() {
        let mut meter = SpaceMeter::new();
        let mut ms = MarkSet::new(130, &mut meter);
        assert_eq!(meter.current_of(SpaceComponent::Marks), 3); // ceil(130/64)
        assert!(!ms.is_marked(ElemId(5)));
        assert!(ms.mark(ElemId(5)));
        assert!(!ms.mark(ElemId(5)));
        assert!(ms.is_marked(ElemId(5)));
        assert_eq!(ms.count(), 1);
        assert!(ms.mark(ElemId(129)));
        assert_eq!(ms.count(), 2);
        assert!(!ms.all_marked());
        assert_eq!(ms.len(), 130);
    }

    #[test]
    fn first_set_map_keeps_first() {
        let mut meter = SpaceMeter::new();
        let mut r = FirstSetMap::new(4, &mut meter);
        assert_eq!(meter.current_of(SpaceComponent::FirstSet), 4);
        assert_eq!(r.get(ElemId(0)), None);
        r.observe(ElemId(0), SetId(3));
        r.observe(ElemId(0), SetId(9));
        assert_eq!(r.get(ElemId(0)), Some(SetId(3)));
    }

    #[test]
    fn solution_builder_dedups_and_certifies() {
        let mut meter = SpaceMeter::new();
        let mut sol = SolutionBuilder::new(5, 3);
        assert!(sol.add(SetId(2), &mut meter));
        assert!(!sol.add(SetId(2), &mut meter));
        assert!(sol.contains(SetId(2)));
        assert!(!sol.contains(SetId(1)));
        assert_eq!(sol.len(), 1);
        assert!(sol.certify(ElemId(0), SetId(2), &mut meter));
        assert!(!sol.certify(ElemId(0), SetId(4), &mut meter));
        assert!(sol.has_witness(ElemId(0)));
        assert_eq!(sol.certified(), 1);
        assert_eq!(meter.current_of(SpaceComponent::Solution), 2);
    }

    #[test]
    fn finish_patches_missing_witnesses() {
        let mut meter = SpaceMeter::new();
        let mut sol = SolutionBuilder::new(5, 3);
        sol.add(SetId(1), &mut meter);
        sol.certify(ElemId(1), SetId(1), &mut meter);
        let cover = sol.finish_with(|u| Some(SetId(u.0 + 2)));
        // u0 -> S2 (patch), u1 -> S1 (witness), u2 -> S4 (patch)
        assert_eq!(
            cover.certificate(),
            &[Some(SetId(2)), Some(SetId(1)), Some(SetId(4))]
        );
        assert_eq!(cover.sets(), &[SetId(1), SetId(2), SetId(4)]);
        assert!(cover.is_total());
    }

    #[test]
    fn finish_with_failed_patch_yields_partial_cover() {
        let mut meter = SpaceMeter::new();
        let mut sol = SolutionBuilder::new(3, 3);
        sol.add(SetId(0), &mut meter);
        sol.certify(ElemId(0), SetId(0), &mut meter);
        // Elements 1 and 2 never arrived: patch fails for them.
        let cover = sol.finish_with(|_| None);
        assert_eq!(cover.certificate(), &[Some(SetId(0)), None, None]);
        assert_eq!(cover.certified_count(), 1);
        assert!(!cover.is_total());
    }
}
