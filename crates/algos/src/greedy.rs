//! The offline greedy Set Cover algorithm.
//!
//! Greedy repeatedly picks the set covering the most yet-uncovered
//! elements, achieving the classic `H(max |S|) ≤ ln n + 1` approximation —
//! the best possible for polynomial algorithms unless P = NP. The paper's
//! related-work section (§1.3) notes that practical large-scale set cover
//! is built on efficient greedy implementations [11, 21, 23]; here it is
//! the near-OPT *reference* against which streaming covers are compared on
//! workloads without a planted optimum, and the finishing step of the
//! element-sampling solver.
//!
//! The implementation is the standard lazy-decrement bucket queue: sets
//! live in buckets indexed by an *upper bound* on their current uncovered
//! count; when a set is popped its true count is recomputed and the set is
//! either taken (if still maximal for its bucket) or pushed down. Total
//! work is `O(N + m + n)` amortized because counts only decrease.

use setcover_core::{Cover, OfflineSetCover, SetCoverInstance, SetId};

/// Compute a greedy cover of `inst`.
///
/// Ties between sets with equal uncovered count are broken by lower set
/// id, making the output deterministic.
pub fn greedy_cover(inst: &SetCoverInstance) -> Cover {
    let m = inst.m();
    let n = inst.n();

    // uncovered[s] = |S_s \ covered| upper bound; exact when popped.
    let mut count: Vec<usize> = (0..m).map(|s| inst.set_size(SetId(s as u32))).collect();
    let max_size = count.iter().copied().max().unwrap_or(0);

    // Buckets of set ids by count upper bound. Stacks give LIFO pops; the
    // recheck-on-pop makes order immaterial for correctness.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_size + 1];
    for (s, &c) in count.iter().enumerate() {
        buckets[c].push(s as u32);
    }

    let mut covered = vec![false; n];
    let mut covered_count = 0usize;
    let mut certificate: Vec<Option<SetId>> = vec![None; n];
    let mut chosen: Vec<SetId> = Vec::new();

    let mut level = max_size;
    while covered_count < n && level > 0 {
        let Some(s) = buckets[level].pop() else {
            level -= 1;
            continue;
        };
        let sid = SetId(s);
        // Lazy recompute: the stored bucket may be stale.
        let true_count = inst.set(sid).iter().filter(|u| !covered[u.index()]).count();
        if true_count < level {
            buckets[true_count].push(s);
            count[s as usize] = true_count;
            continue;
        }
        // true_count == level: greedy-maximal, take it.
        chosen.push(sid);
        for &u in inst.set(sid) {
            if !covered[u.index()] {
                covered[u.index()] = true;
                covered_count += 1;
                certificate[u.index()] = Some(sid);
            }
        }
    }

    debug_assert_eq!(
        covered_count, n,
        "feasible instances are fully covered by greedy"
    );
    let cert: Vec<SetId> = certificate
        .into_iter()
        .map(|c| c.expect("greedy covers everything"))
        .collect();
    Cover::new(chosen, cert)
}

/// [`OfflineSetCover`] wrapper around [`greedy_cover`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySolver;

impl OfflineSetCover for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy-offline"
    }

    fn solve(&self, inst: &SetCoverInstance) -> Cover {
        greedy_cover(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::InstanceBuilder;

    fn build(sets: &[&[u32]], n: usize) -> SetCoverInstance {
        let mut b = InstanceBuilder::new(sets.len(), n);
        for (i, elems) in sets.iter().enumerate() {
            b.add_set_elems(i as u32, elems.iter().copied());
        }
        b.build().unwrap()
    }

    #[test]
    fn picks_largest_first() {
        let inst = build(&[&[0, 1, 2, 3], &[0, 1], &[2, 3], &[4]], 5);
        let cover = greedy_cover(&inst);
        cover.verify(&inst).unwrap();
        assert_eq!(cover.sets(), &[SetId(0), SetId(3)]);
    }

    #[test]
    fn finds_optimal_on_partition() {
        let inst = build(&[&[0, 1], &[2, 3], &[4, 5]], 6);
        let cover = greedy_cover(&inst);
        cover.verify(&inst).unwrap();
        assert_eq!(cover.size(), 3);
    }

    #[test]
    fn handles_heavy_overlap() {
        // Classic greedy-bad instance shape: greedy may pay log factor but
        // never more.
        let inst = build(
            &[
                &[0, 1, 2, 3, 4, 5, 6, 7], // big set
                &[0, 1, 2, 3],             // halves
                &[4, 5, 6, 7],
            ],
            8,
        );
        let cover = greedy_cover(&inst);
        cover.verify(&inst).unwrap();
        assert_eq!(cover.size(), 1);
    }

    #[test]
    fn lazy_buckets_stay_correct_under_staleness() {
        // S0 covers {0..9}; S1 initially 6 elems but loses 5 to S0; S2
        // disjoint pair. Forces bucket demotions.
        let inst = build(
            &[
                &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
                &[5, 6, 7, 8, 9, 10],
                &[10, 11],
                &[11],
            ],
            12,
        );
        let cover = greedy_cover(&inst);
        cover.verify(&inst).unwrap();
        assert_eq!(cover.size(), 2); // S0 + S2
        assert!(cover.sets().contains(&SetId(0)));
        assert!(cover.sets().contains(&SetId(2)));
    }

    #[test]
    fn deterministic_tie_break() {
        let inst = build(&[&[0, 1], &[0, 1], &[2]], 3);
        let a = greedy_cover(&inst);
        let b = greedy_cover(&inst);
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_is_within_harmonic_of_planted() {
        use setcover_gen::planted::{planted, PlantedConfig};
        let p = planted(&PlantedConfig::exact(400, 200, 20), 5);
        let inst = &p.workload.instance;
        let cover = greedy_cover(inst);
        cover.verify(inst).unwrap();
        let bound =
            (20.0 * setcover_core::math::harmonic(inst.stats().max_set_size)).ceil() as usize;
        assert!(
            cover.size() <= bound,
            "greedy {} exceeds H-bound {}",
            cover.size(),
            bound
        );
    }

    #[test]
    fn solver_trait_name() {
        use setcover_core::OfflineSetCover;
        assert_eq!(GreedySolver.name(), "greedy-offline");
    }
}
