//! The KK-algorithm (Theorem 1): one-pass Õ(√n)-approximation with Õ(m)
//! space in adversarial order.
//!
//! Due to Khanna and Konrad (streaming Dominating Set, ITCS'22), restated
//! by the PODS'23 paper as Theorem 1 and described in §1.2:
//!
//! * every arriving tuple `(S, u)` with `u` not yet covered increments the
//!   *uncovered-degree* counter `d(S)`;
//! * whenever `d(S)` reaches `i·√n` for an integer `i ≥ 1`, the set is
//!   included in the solution with probability `2^i·√n/m`;
//! * a set in the solution covers every one of its elements arriving from
//!   that moment onward;
//! * leftover elements are patched with the first-set map `R(u)`.
//!
//! The analysis shows the number of *level-i* sets (final uncovered-degree
//! in `[i√n, (i+1)√n)`) halves per level, so each level contributes Õ(√n)
//! sets and the total solution is Õ(√n)·OPT... more precisely Õ(√n) sets
//! plus OPT-proportional patching. The `m` counters are the Θ̃(m) space
//! cost that Theorem 2 proves necessary and Theorem 3 evades in random
//! order.

use rand::rngs::SmallRng;

use setcover_core::math::isqrt;
use setcover_core::rng::{coin, seeded_rng};
use setcover_core::space::{SpaceComponent, SpaceMeter};
use setcover_core::{Cover, Edge, Metric, NoopRecorder, Recorder, SpaceReport, StreamingSetCover};

use crate::common::{FirstSetMap, MarkSet, SolutionBuilder};

/// Tuning for [`KkSolver`]. The defaults are the paper's parameters.
#[derive(Debug, Clone, Copy)]
pub struct KkConfig {
    /// Level width `w`: a set is eligible for inclusion each time its
    /// uncovered-degree crosses a multiple of `w`. Paper: `√n` (set by
    /// [`KkConfig::paper`]).
    pub level_width: usize,
    /// Multiplier `c` in the inclusion probability `min(1, c·2^i·w/m)`.
    /// Paper: 1.
    pub inclusion_mult: f64,
}

impl KkConfig {
    /// The paper's parameters for universe size `n`: width `√n`,
    /// multiplier 1.
    pub fn paper(n: usize) -> Self {
        KkConfig {
            level_width: isqrt(n).max(1),
            inclusion_mult: 1.0,
        }
    }

    /// Custom level width (used by ablation benches).
    pub fn with_level_width(mut self, w: usize) -> Self {
        assert!(w >= 1);
        self.level_width = w;
        self
    }
}

/// The KK-algorithm solver. See the [module docs](self).
///
/// `Clone` is derived so communication-reduction harnesses (Theorem 2) can
/// fork the memory state into parallel runs, exactly as the lower-bound
/// proof's last party does.
#[derive(Debug, Clone)]
pub struct KkSolver<R: Recorder = NoopRecorder> {
    m: usize,
    config: KkConfig,
    rng: SmallRng,
    /// Uncovered-degree counters `d(S)` — the Θ(m) words of state.
    degree: Vec<u32>,
    marked: MarkSet,
    first: FirstSetMap,
    sol: SolutionBuilder,
    meter: SpaceMeter,
    rec: R,
}

impl KkSolver {
    /// Create a solver for an instance with `m` sets, `n` elements, with
    /// the paper's parameters.
    pub fn new(m: usize, n: usize, seed: u64) -> Self {
        Self::with_config(m, n, KkConfig::paper(n), seed)
    }

    /// Create a solver with explicit configuration.
    pub fn with_config(m: usize, n: usize, config: KkConfig, seed: u64) -> Self {
        Self::with_recorder(m, n, config, seed, NoopRecorder)
    }
}

impl<R: Recorder> KkSolver<R> {
    /// Create a solver with explicit configuration and a metrics recorder.
    pub fn with_recorder(m: usize, n: usize, config: KkConfig, seed: u64, rec: R) -> Self {
        let mut meter = SpaceMeter::new();
        // The m uncovered-degree counters are the headline space cost.
        meter.charge(SpaceComponent::Counters, m);
        let marked = MarkSet::new(n, &mut meter);
        let first = FirstSetMap::new(n, &mut meter);
        KkSolver {
            m,
            config,
            rng: seeded_rng(seed),
            degree: vec![0; m],
            marked,
            first,
            sol: SolutionBuilder::new(m, n),
            meter,
            rec,
        }
    }

    /// Number of sets currently in `Sol` (before patching).
    pub fn solution_len(&self) -> usize {
        self.sol.len()
    }

    /// Whether element `u` already has a covering witness in `Sol`.
    pub fn has_witness(&self, u: setcover_core::ElemId) -> bool {
        self.sol.has_witness(u)
    }

    /// The covering witness recorded for `u`, if any.
    pub fn witness_of(&self, u: setcover_core::ElemId) -> Option<setcover_core::SetId> {
        self.sol.witness_of(u)
    }

    /// The sets currently in `Sol` (insertion order, before patching).
    pub fn solution_members(&self) -> &[setcover_core::SetId] {
        self.sol.members()
    }

    /// The first-set map entry `R(u)`.
    pub fn first_set(&self, u: setcover_core::ElemId) -> Option<setcover_core::SetId> {
        self.first.get(u)
    }

    /// Histogram of sets per level: entry `i` counts sets whose
    /// uncovered-degree lies in `[i·w, (i+1)·w)`. The KK analysis (§1.2)
    /// shows `E|S_i| ≤ ½·E|S_{i−1}|` — each level's population halves —
    /// which is what caps the solution at Õ(√n); the `invariants`-style
    /// tests check this decay empirically.
    pub fn level_histogram(&self) -> Vec<usize> {
        let w = self.config.level_width.max(1);
        let max_level = self
            .degree
            .iter()
            .map(|&d| d as usize / w)
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max_level + 1];
        for &d in &self.degree {
            hist[d as usize / w] += 1;
        }
        hist
    }

    /// The inclusion probability at level `i` (`d(S) = i·w`):
    /// `min(1, c·2^i·w/m)`.
    fn inclusion_probability(&self, level: u32) -> f64 {
        let w = self.config.level_width as f64;
        self.config.inclusion_mult * 2f64.powi(level as i32) * w / self.m as f64
    }
}

impl<R: Recorder> StreamingSetCover for KkSolver<R> {
    fn name(&self) -> &'static str {
        "kk"
    }

    fn process_edge(&mut self, e: Edge) {
        self.rec.counter(Metric::KkEdges, 1);
        self.first.observe(e.elem, e.set);

        if self.marked.is_marked(e.elem) {
            return;
        }
        if self.sol.contains(e.set) {
            // A solution set covers its elements from inclusion onward.
            self.marked.mark(e.elem);
            self.sol.certify(e.elem, e.set, &mut self.meter);
            return;
        }

        let d = &mut self.degree[e.set.index()];
        *d += 1;
        if (*d as usize).is_multiple_of(self.config.level_width) {
            let level = (*d as usize / self.config.level_width) as u32;
            self.rec.counter(Metric::KkLevelCrossings, 1);
            let p = self.inclusion_probability(level);
            if coin(&mut self.rng, p) && self.sol.add(e.set, &mut self.meter) {
                self.rec.counter(Metric::KkInclusions, 1);
                self.rec.observe(Metric::KkLevelAtInclusion, level as u64);
                self.rec
                    .event("kk.include", e.set.index() as u64, level as u64);
                // The crossing edge itself is covered by the fresh set.
                self.marked.mark(e.elem);
                self.sol.certify(e.elem, e.set, &mut self.meter);
            }
        }
    }

    fn finalize(&mut self) -> Cover {
        let sol = std::mem::replace(&mut self.sol, SolutionBuilder::new(0, 0));
        let first = &self.first;
        sol.finish_with(|u| first.get(u))
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::math::approx_ratio;
    use setcover_core::solver::run_streaming;
    use setcover_core::stream::{adversarial_portfolio, stream_of, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn produces_valid_cover_on_all_orders() {
        let p = planted(&PlantedConfig::exact(144, 288, 12), 1);
        let inst = &p.workload.instance;
        let mut orders = adversarial_portfolio(5);
        orders.push(StreamOrder::Uniform(6));
        for order in orders {
            let out = run_streaming(KkSolver::new(inst.m(), inst.n(), 7), stream_of(inst, order));
            out.cover.verify(inst).unwrap();
        }
    }

    #[test]
    fn space_is_dominated_by_m_counters() {
        let p = planted(&PlantedConfig::exact(64, 4096, 8), 2);
        let inst = &p.workload.instance;
        let out = run_streaming(
            KkSolver::new(inst.m(), inst.n(), 3),
            stream_of(inst, StreamOrder::Uniform(4)),
        );
        let counters = out
            .space
            .peak_by_component
            .iter()
            .find(|(c, _)| *c == SpaceComponent::Counters)
            .map(|(_, w)| *w)
            .unwrap();
        assert_eq!(counters, inst.m());
        assert!(out.space.peak_words >= inst.m());
        // Everything else is O(n)-ish.
        assert!(out.space.peak_words <= inst.m() + 4 * inst.n() + 64);
    }

    #[test]
    fn approx_ratio_is_sqrt_n_scale_on_planted() {
        // n = 400, OPT = 10: the ratio should be well below the trivial
        // n/OPT = 40 and in the √n = 20 ballpark (generous x3 margin,
        // pinned seeds).
        let p = planted(&PlantedConfig::exact(400, 2000, 10), 11);
        let inst = &p.workload.instance;
        let mut worst: f64 = 0.0;
        for (i, order) in [
            StreamOrder::Interleaved,
            StreamOrder::Uniform(8),
            StreamOrder::GreedyTrap,
        ]
        .into_iter()
        .enumerate()
        {
            let out = run_streaming(
                KkSolver::new(inst.m(), inst.n(), 100 + i as u64),
                stream_of(inst, order),
            );
            out.cover.verify(inst).unwrap();
            worst = worst.max(approx_ratio(out.cover.size(), 10));
        }
        let sqrt_n = 20.0;
        assert!(
            worst <= 3.0 * sqrt_n,
            "worst ratio {worst} far above √n scale"
        );
    }

    #[test]
    fn solution_never_removed_and_grows_monotonically() {
        let p = planted(&PlantedConfig::exact(100, 500, 10), 3);
        let inst = &p.workload.instance;
        let mut solver = KkSolver::new(inst.m(), inst.n(), 1);
        let mut last = 0;
        for e in setcover_core::stream::order_edges(inst, StreamOrder::Uniform(2)) {
            solver.process_edge(e);
            let len = solver.solution_len();
            assert!(len >= last);
            last = len;
        }
    }

    #[test]
    fn inclusion_probability_doubles_per_level() {
        let s = KkSolver::new(1000, 100, 0);
        let p1 = s.inclusion_probability(1);
        let p2 = s.inclusion_probability(2);
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
        // level 1: 2 * 10 / 1000 = 0.02
        assert!((p1 - 0.02).abs() < 1e-12);
    }

    #[test]
    fn paper_config_uses_sqrt_n_width() {
        assert_eq!(KkConfig::paper(400).level_width, 20);
        assert_eq!(KkConfig::paper(1).level_width, 1);
        assert_eq!(KkConfig::paper(0).level_width, 1);
    }

    #[test]
    fn level_populations_decay_geometrically() {
        // The central claim of the KK analysis: the population of sets
        // reaching level i shrinks geometrically, because by the time a
        // set could accumulate another √n *uncovered* arrivals, the
        // inclusion process (rate doubling per level) has covered the
        // universe. On a dense uniform workload (every set is large
        // enough to reach high levels if elements stayed uncovered), the
        // coverage feedback freezes almost everything at level 1:
        // measured hist ≈ [103, 7812, 85] — a >90x drop past level 1.
        use setcover_gen::uniform::{uniform, UniformConfig};
        let w = uniform(&UniformConfig::fixed(400, 8000, 100), 3);
        let inst = &w.instance;
        let mut solver = KkSolver::new(inst.m(), inst.n(), 5);
        for e in setcover_core::stream::order_edges(inst, StreamOrder::Uniform(6)) {
            solver.process_edge(e);
        }
        let hist = solver.level_histogram();
        assert!(hist.len() >= 2, "hist {hist:?}");
        let beyond: usize = hist.iter().skip(2).sum();
        assert!(
            10 * beyond <= hist[1],
            "levels >= 2 hold {beyond} sets vs {} at level 1 — coverage feedback absent",
            hist[1]
        );
        // ...which is exactly what keeps |Sol| at Õ(√n) (√400 = 20).
        assert!(
            solver.solution_len() <= 6 * 20,
            "solution {} far above Õ(√n)",
            solver.solution_len()
        );
        let cover = solver.finalize();
        cover.verify(inst).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let p = planted(&PlantedConfig::exact(80, 160, 8), 4);
        let inst = &p.workload.instance;
        let run = |seed| {
            run_streaming(
                KkSolver::new(inst.m(), inst.n(), seed),
                stream_of(inst, StreamOrder::Interleaved),
            )
            .cover
        };
        assert_eq!(run(9), run(9));
    }
}
