//! Algorithm 1 (Theorem 3, the paper's main result): one-pass
//! Õ(√n)-approximation with Õ(m/√n) space for **random order** streams.
//!
//! ## Structure (faithful to the paper's listing, §4.1)
//!
//! * The set family is partitioned into `√n` batches `S_1, ..., S_√n` of
//!   `m/√n` sets each; per-set counters exist **only for the current
//!   batch** — this is the Õ(m/√n) working set.
//! * **Epoch 0** (lines 5–7): sample every set into `Sol` with probability
//!   `p₀ = C·√n·log(m)/m`; then detect elements of degree `≥ 1.1·m/√n` by
//!   counting occurrences over the first `Θ(√n·N·log(m)/m)` edges and mark
//!   them as covered (their high degree means some sampled set w.h.p.
//!   contains them, even if the covering edge has not arrived yet).
//! * **Algorithms `A⁽¹⁾..A⁽ᴷ⁾`** (lines 8–32), `K = ½log n − 3 log log m
//!   − 2`: algorithm `A⁽ⁱ⁾` targets sets that can still cover `≈ n/2ⁱ`
//!   uncovered elements. It runs `log m − ½log n` epochs of `√n`
//!   subepochs; subepoch `k` of epoch `j` processes `ℓᵢ = 2ⁱN/(n log m)`
//!   edges and counts, for each set of batch `S_k`, its edges to unmarked
//!   elements. A set reaching `j·log⁶m` is **special**: it enters `Sol`
//!   with probability `p_j = C·2ʲ√n·log(m)/m` and the tracked sample `Q̃'`
//!   with probability `q_j = 2ʲ/n`.
//! * **Tracking** (lines 24–25, 31): edges from the previous epoch's
//!   sampled specials `Q̃` are recorded in `T`; at the end of each epoch,
//!   elements with `≥ 1.085·m·2^{i−1}/(n² log m)` tracked edges are
//!   *optimistically marked* — they are incident to so many special sets
//!   that one of them is in `Sol` w.h.p., even though the covering edge
//!   may never arrive after the inclusion (a *missed edge*, handled by
//!   patching).
//! * **Tail** (lines 33–36): the rest of the stream only collects
//!   covering witnesses for `Sol`.
//! * **Patching** (line 38): elements without a witness fall back to the
//!   first-set map `R(u)`.
//!
//! ## Paper-faithful vs practical thresholds
//!
//! The literal thresholds (`j·log⁶m`, constants `C`) are asymptotic: at
//! laptop scale `log⁶m` exceeds any set size and no set would ever become
//! special. [`RandomOrderConfig::paper_faithful`] keeps the literal
//! constants (useful for structural tests); [`RandomOrderConfig::practical`]
//! keeps every mechanism but sets the threshold exponent to 1 and modest
//! constants, preserving the *shape* of the space/approximation trade-off
//! (see DESIGN.md §3). Every deviation is a config field.

use rand::rngs::SmallRng;

use setcover_core::math::{isqrt, log2f};
use setcover_core::rng::{bernoulli_hits, coin, seeded_rng};
use setcover_core::space::{map_entry_words, SpaceComponent, SpaceMeter};
use setcover_core::{
    Cover, Edge, Metric, NoopRecorder, Recorder, SetId, SpaceReport, StreamingSetCover,
};

use crate::common::{FirstSetMap, MarkSet, SolutionBuilder};

/// Tuning for [`RandomOrderSolver`]; see the module docs for the mapping
/// to the paper's constants.
#[derive(Debug, Clone, Copy)]
pub struct RandomOrderConfig {
    /// The paper's "large constant" `C` in `p₀`, `p_j` and the epoch-0
    /// prefix length.
    pub c: f64,
    /// Exponent `e` of the special threshold `j·b·(log m)^e`. Paper: 6.
    pub special_exponent: u32,
    /// Base multiplier `b` of the special threshold. Paper: 1.
    pub special_base: f64,
    /// Lower floor for the tracking-based marking threshold (the paper's
    /// `1.085·m·2^{i−1}/(n² log m)` is below 1 at small scale; the floor
    /// prevents every tracked edge from marking its element).
    pub mark_floor: f64,
    /// Multiplier on the epoch-0 detection prefix length.
    pub epoch0_mult: f64,
    /// Override the number of batches (default `√n`).
    pub num_batches: Option<usize>,
    /// Override `K` (number of algorithms `A⁽ⁱ⁾`).
    pub k_override: Option<u32>,
    /// Override the number of epochs per algorithm.
    pub epochs_override: Option<u32>,
    /// Multiplier on the subepoch length `ℓᵢ`.
    pub subepoch_len_mult: f64,
    /// Ignore the paper's `ℓᵢ = 2ⁱN/(n log m)` formula and instead size
    /// the subepochs (keeping the geometric doubling across `i`) so the
    /// whole main phase consumes ≈ N̂/2 — the edge budget the paper's
    /// schedule only approaches asymptotically. Without this, at laptop
    /// scale the main phase sees a vanishing fraction of the stream and
    /// no set can register a signal.
    pub fill_budget: bool,
    /// Tracked-sample base probability `q₀` (paper: `1/n`).
    pub q0: Option<f64>,
    /// Record a [`ProbeLog`] of per-epoch diagnostics (invariant
    /// experiments E-F5).
    pub probe: bool,
}

impl RandomOrderConfig {
    /// The literal paper constants. At small scale the `log⁶m` threshold
    /// makes "special" unreachable, so this preset exercises structure
    /// (epoch-0 sampling + high-degree marking + patching) rather than the
    /// special-set machinery — as documented in DESIGN.md §3.
    pub fn paper_faithful() -> Self {
        RandomOrderConfig {
            c: 1.0,
            special_exponent: 6,
            special_base: 1.0,
            mark_floor: 1.0,
            epoch0_mult: 1.0,
            num_batches: None,
            k_override: None,
            epochs_override: None,
            subepoch_len_mult: 1.0,
            fill_budget: false,
            q0: None,
            probe: false,
        }
    }

    /// Laptop-scale preset: identical structure, with the thresholds
    /// rescaled so the special/tracking machinery actually fires at
    /// `n ≤ 10⁴` (at the paper's literal constants, detection requires
    /// sets of size ≥ √n·log⁶m > n, so nothing is ever special at this
    /// scale — see DESIGN.md §3):
    ///
    /// * 3 epochs per algorithm and budget-filling subepochs (the main
    ///   phase consumes ≈ N̂/2), so each batch subepoch sees enough of the
    ///   stream for large sets to register a signal;
    /// * special threshold `2j` (exponent 0, base 2): a set must
    ///   contribute two-per-epoch edges to unmarked elements within its
    ///   own subepoch, preserving the increasing-threshold monotonicity
    ///   (Lemma 5) at laptop scale.
    pub fn practical() -> Self {
        RandomOrderConfig {
            c: 1.0,
            special_exponent: 0,
            special_base: 2.0,
            mark_floor: 2.0,
            epoch0_mult: 1.0,
            num_batches: None,
            k_override: None,
            epochs_override: Some(3),
            subepoch_len_mult: 1.0,
            fill_budget: true,
            q0: None,
            probe: false,
        }
    }

    /// Enable probe recording.
    pub fn with_probe(mut self) -> Self {
        self.probe = true;
        self
    }
}

/// Per-epoch diagnostics recorded when probing is enabled.
#[derive(Debug, Clone, Default)]
pub struct EpochProbe {
    /// Algorithm index `i` (1-based).
    pub i: u32,
    /// Epoch index `j` (1-based).
    pub j: u32,
    /// Number of sets that became special this epoch (Lemma 8 bounds this
    /// by `≈ 1.1·m/2ʲ`).
    pub specials: usize,
    /// Number of sets added to `Sol` this epoch (Invariant I3 sums these
    /// to Õ(√n) per algorithm).
    pub sol_added: usize,
    /// Size of the tracked sample `Q̃` during this epoch.
    pub tracked_sets: usize,
    /// Number of tracked-edge map entries at epoch end.
    pub tracked_edges: usize,
    /// Elements optimistically marked by the tracking rule at epoch end.
    pub marked_by_tracking: usize,
}

/// A `Sol` insertion event (for missed-edge analysis, Invariant I2).
#[derive(Debug, Clone, Copy)]
pub struct SolEvent {
    /// The included set.
    pub set: SetId,
    /// Stream position (0-based edge index) at inclusion time.
    pub edge_index: usize,
    /// Algorithm index at inclusion (0 = epoch 0 pre-sampling).
    pub i: u32,
    /// Epoch index at inclusion (0 = epoch 0).
    pub j: u32,
}

/// A set becoming *special* (counter reached the epoch threshold).
#[derive(Debug, Clone, Copy)]
pub struct SpecialEvent {
    /// The special set.
    pub set: SetId,
    /// Algorithm index (1-based).
    pub i: u32,
    /// Epoch index (1-based).
    pub j: u32,
}

/// Diagnostics recorded by a probing run.
#[derive(Debug, Clone, Default)]
pub struct ProbeLog {
    /// Elements marked by epoch-0 high-degree detection.
    pub epoch0_marked: usize,
    /// Sets pre-sampled into `Sol` in epoch 0.
    pub epoch0_sampled: usize,
    /// Per-(i, j) epoch diagnostics.
    pub epochs: Vec<EpochProbe>,
    /// Every `Sol` insertion with its stream position.
    pub sol_events: Vec<SolEvent>,
    /// Every special-set event, for Lemma 5 monotonicity checks.
    pub special_events: Vec<SpecialEvent>,
    /// The derived schedule: `K`.
    pub k: u32,
    /// The derived schedule: epochs per algorithm.
    pub epochs_per_algo: u32,
    /// The derived schedule: subepoch lengths `ℓᵢ`.
    pub subepoch_lens: Vec<usize>,
}

/// A dense bitset over set ids with an O(1) cardinality, replacing the
/// `HashSet<u32>` that used to sit on the per-edge tracking path: `contains`
/// is a single word probe (no hashing, no probing chains), and the whole
/// structure is `m/64` words — real memory well under one byte per set.
///
/// Note the *model* space accounting (`SpaceComponent::TrackedSets`) is
/// unchanged: the meter still charges one word per tracked set, since the
/// paper's Õ-analysis counts tracked identities, not the container's
/// physical layout.
#[derive(Debug, Default)]
struct DenseSetBits {
    words: Vec<u64>,
    len: usize,
}

impl DenseSetBits {
    fn for_universe(m: usize) -> Self {
        DenseSetBits {
            words: vec![0; m.div_ceil(64)],
            len: 0,
        }
    }

    #[inline]
    fn contains(&self, s: u32) -> bool {
        (self.words[(s >> 6) as usize] >> (s & 63)) & 1 == 1
    }

    /// Insert; returns `true` if the bit was newly set (HashSet semantics).
    #[inline]
    fn insert(&mut self, s: u32) -> bool {
        let w = &mut self.words[(s >> 6) as usize];
        let bit = 1u64 << (s & 63);
        if *w & bit == 0 {
            *w |= bit;
            self.len += 1;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Epoch-0 detection prefix.
    Epoch0,
    /// Inside algorithm `A⁽ⁱ⁾`, epoch `j`, subepoch `k` (all 1-based
    /// except `k`, 0-based batch index).
    Main { i: u32, j: u32, k: u32 },
    /// Witness-collection tail.
    Tail,
}

/// The Algorithm 1 solver. See the [module docs](self).
#[derive(Debug)]
pub struct RandomOrderSolver<R: Recorder = NoopRecorder> {
    m: usize,
    n: usize,
    /// Stream length estimate `N̂` (see [`crate::amplify::NGuessing`]).
    n_est: usize,
    config: RandomOrderConfig,
    rng: SmallRng,

    // Schedule (derived once).
    num_batches: usize,
    batch_size: usize,
    k_max: u32,
    epochs: u32,
    subepoch_lens: Vec<usize>, // ℓ_i, index i-1
    epoch0_len: usize,
    mark0_threshold: f64,

    // Dynamic state.
    phase: Phase,
    remaining: usize, // edges left in the current phase/subepoch
    edge_index: usize,

    marked: MarkSet,
    first: FirstSetMap,
    sol: SolutionBuilder,

    /// Epoch-0 per-element occurrence counters (`O(n)` words, released
    /// after the detection prefix).
    elem_counts: Vec<u32>,

    /// Per-batch counters `C[S]`, reused across subepochs via generation
    /// stamps — the Õ(m/√n) working set.
    counters: Vec<u32>,
    counter_gen: Vec<u32>,
    generation: u32,

    /// Tracked specials of the previous epoch (`Q̃`) and the sample being
    /// built this epoch (`Q̃'`), as dense bitsets (see [`DenseSetBits`]).
    tracked: DenseSetBits,
    tracked_next: DenseSetBits,
    /// Tracked-edge counts per element (`T`) as a generation-stamped dense
    /// array (same trick as the batch `counters`): `t_gen[u] != t_generation`
    /// means "no entry for `u` this epoch", so epoch turnover is O(1) with
    /// no clearing pass and the per-edge update is two array probes instead
    /// of a `HashMap` entry lookup.
    t_counts: Vec<u32>,
    t_gen: Vec<u32>,
    t_generation: u32,
    /// Elements touched by tracking this epoch, in first-touch order —
    /// restricts end-of-epoch threshold scans (and model-space release) to
    /// the entries that exist, exactly as iterating the old map did.
    t_touched: Vec<u32>,

    meter: SpaceMeter,
    probe: Option<ProbeLog>,
    cur_epoch_probe: EpochProbe,
    /// Set when `|Sol|` reaches `n`: the paper's space-cap rule (§4.2)
    /// then reports the trivial first-set cover instead.
    degenerate: bool,
    rec: R,
}

impl RandomOrderSolver {
    /// Create a solver for an instance with `m` sets, `n` elements, and a
    /// stream length estimate `n_est` (§4.1: `N` known is w.l.o.g.;
    /// [`crate::amplify::NGuessing`] supplies the parallel guesses).
    pub fn new(m: usize, n: usize, n_est: usize, config: RandomOrderConfig, seed: u64) -> Self {
        Self::with_recorder(m, n, n_est, config, seed, NoopRecorder)
    }
}

impl<R: Recorder> RandomOrderSolver<R> {
    /// [`RandomOrderSolver::new`] with a metrics recorder. Epoch-0
    /// pre-sampling happens at construction, so constructing through this
    /// path records [`Metric::RoEpoch0Sampled`] too.
    pub fn with_recorder(
        m: usize,
        n: usize,
        n_est: usize,
        config: RandomOrderConfig,
        seed: u64,
        mut rec: R,
    ) -> Self {
        assert!(m >= 1 && n >= 1 && n_est >= 1);
        let mut meter = SpaceMeter::new();
        let marked = MarkSet::new(n, &mut meter);
        let first = FirstSetMap::new(n, &mut meter);
        let mut rng = seeded_rng(seed);

        let log_m = log2f(m).max(1.0);
        let log_n = log2f(n).max(1.0);
        let sqrt_n = isqrt(n).max(1) as f64;

        let num_batches = config
            .num_batches
            .unwrap_or_else(|| isqrt(n).max(1))
            .min(m)
            .max(1);
        let batch_size = m.div_ceil(num_batches);

        // K = ½log n − 3 log log m − 2, clamped to [1, ·] and to the edge
        // budget (the planned main-phase edges must fit in ≤ N̂/2 so the
        // tail can collect witnesses).
        let k_formula = 0.5 * log_n - 3.0 * log2f(log_m.ceil() as usize).max(1.0) - 2.0;
        let epochs = config
            .epochs_override
            .unwrap_or_else(|| ((log_m - 0.5 * log_n).floor() as i64).max(1) as u32);
        let mut k_max = config
            .k_override
            .unwrap_or_else(|| (k_formula.floor() as i64).max(1) as u32);
        // ℓ_i = mult · 2^i · N̂ / (n · log m), at least 1.
        let len_for = |i: u32| -> usize {
            let l =
                config.subepoch_len_mult * 2f64.powi(i as i32) * n_est as f64 / (n as f64 * log_m);
            (l.floor() as usize).max(1)
        };
        let budget = n_est / 2;
        // Edge-budget clamp on K (paper formula mode).
        if config.k_override.is_none() && !config.fill_budget {
            while k_max > 1 {
                let planned: usize = (1..=k_max)
                    .map(|i| len_for(i) * num_batches * epochs as usize)
                    .sum();
                if planned <= budget {
                    break;
                }
                k_max -= 1;
            }
        }
        let subepoch_lens: Vec<usize> = if config.fill_budget {
            // Geometric doubling ℓ_i = 2^i·x with the whole schedule
            // (epochs · batches · Σ 2^i · x) summing to the budget.
            let weight: f64 = (1..=k_max).map(|i| 2f64.powi(i as i32)).sum();
            let x = budget as f64 / (epochs as f64 * num_batches as f64 * weight);
            (1..=k_max)
                .map(|i| ((2f64.powi(i as i32) * x).floor() as usize).max(1))
                .collect()
        } else {
            (1..=k_max).map(len_for).collect()
        };

        // Epoch 0: prefix length Θ(√n·N·log m / m), element-count
        // detection threshold 1.085·C·log m (degree ≥ 1.1·m/√n appears
        // ≈ 1.1·C·log m times in the prefix; Lemma 6's epoch-0 case).
        let epoch0_len =
            ((config.epoch0_mult * config.c * sqrt_n * n_est as f64 * log_m / m as f64).floor()
                as usize)
                .min(n_est / 4)
                .max(1);
        let mark0_threshold = 1.085 * config.c * log_m * config.epoch0_mult;

        // Epoch-0 pre-sampling: each set w.p. p0 = C·√n·log m / m, via
        // geometric skips — O(expected hits ≈ √n·log m) RNG draws instead
        // of m coin flips.
        let p0 = (config.c * sqrt_n * log_m / m as f64).min(1.0);
        let mut sol = SolutionBuilder::new(m, n);
        let mut epoch0_sampled = 0usize;
        let mut degenerate = false;
        for s in bernoulli_hits(&mut rng, m, p0) {
            if sol.len() >= n {
                degenerate = true;
                break;
            }
            sol.add(SetId(s as u32), &mut meter);
            epoch0_sampled += 1;
        }
        rec.counter(Metric::RoEpoch0Sampled, epoch0_sampled as u64);

        // Per-element epoch-0 counters (released after detection).
        meter.charge(SpaceComponent::Counters, n);
        // Per-batch counters, alive for the whole run.
        meter.charge(SpaceComponent::Counters, batch_size);

        let probe = if config.probe {
            Some(ProbeLog {
                epoch0_sampled,
                k: k_max,
                epochs_per_algo: epochs,
                subepoch_lens: subepoch_lens.clone(),
                ..ProbeLog::default()
            })
        } else {
            None
        };

        let mut solver = RandomOrderSolver {
            m,
            n,
            n_est,
            config,
            rng,
            num_batches,
            batch_size,
            k_max,
            epochs,
            subepoch_lens,
            epoch0_len,
            mark0_threshold,
            phase: Phase::Epoch0,
            remaining: 0,
            edge_index: 0,
            marked,
            first,
            sol,
            elem_counts: vec![0; n],
            counters: vec![0; batch_size],
            counter_gen: vec![0; batch_size],
            generation: 0,
            tracked: DenseSetBits::for_universe(m),
            tracked_next: DenseSetBits::for_universe(m),
            t_counts: vec![0; n],
            t_gen: vec![0; n],
            t_generation: 1,
            t_touched: Vec::new(),
            meter,
            probe: None,
            cur_epoch_probe: EpochProbe::default(),
            degenerate,
            rec,
        };
        solver.remaining = solver.epoch0_len;
        solver.probe = probe;
        if let Some(p) = &mut solver.probe {
            for s in solver.sol.members() {
                p.sol_events.push(SolEvent {
                    set: *s,
                    edge_index: 0,
                    i: 0,
                    j: 0,
                });
            }
        }
        solver
    }

    /// The stream-length estimate this run was configured with.
    pub fn n_estimate(&self) -> usize {
        self.n_est
    }

    /// The derived schedule `(K, epochs per algorithm, batches)`.
    pub fn schedule(&self) -> (u32, u32, usize) {
        (self.k_max, self.epochs, self.num_batches)
    }

    /// Subepoch length `ℓᵢ` for algorithm `i` (1-based).
    pub fn subepoch_len(&self, i: u32) -> usize {
        self.subepoch_lens[(i - 1) as usize]
    }

    /// Take the probe log (if probing was enabled). Call after the run.
    pub fn take_probe(&mut self) -> Option<ProbeLog> {
        self.probe.take()
    }

    /// Current solution size (before patching).
    pub fn solution_len(&self) -> usize {
        self.sol.len()
    }

    fn log_m(&self) -> f64 {
        log2f(self.m).max(1.0)
    }

    /// Special threshold `j·b·(log m)^e` (line 28; paper `b = 1, e = 6`).
    fn special_threshold(&self, j: u32) -> u32 {
        let t = j as f64
            * self.config.special_base
            * self.log_m().powi(self.config.special_exponent as i32);
        (t.ceil() as u32).max(1)
    }

    /// `p_j = C·2ʲ·√n·log m / m` (line 29).
    fn p_j(&self, j: u32) -> f64 {
        self.config.c * 2f64.powi(j as i32) * (isqrt(self.n).max(1) as f64) * self.log_m()
            / self.m as f64
    }

    /// `q_j = min(2ʲ·q₀, 1)` with `q₀ = 1/n` (line 30).
    fn q_j(&self, j: u32) -> f64 {
        let q0 = self.config.q0.unwrap_or(1.0 / self.n as f64);
        (2f64.powi(j as i32) * q0).min(1.0)
    }

    /// Tracking-based marking threshold at the end of epoch `j` of `A⁽ⁱ⁾`
    /// (line 31): `max(mark_floor, 1.085·m·2^{i−1}/(n²·log m))`.
    fn mark_threshold(&self, i: u32) -> f64 {
        let formula = 1.085 * self.m as f64 * 2f64.powi(i as i32 - 1)
            / (self.n as f64 * self.n as f64 * self.log_m());
        formula.max(self.config.mark_floor)
    }

    fn batch_of(&self, s: SetId) -> u32 {
        (s.index() / self.batch_size) as u32
    }

    /// Mark `u` as covered by `s` and record the witness.
    fn cover(&mut self, u: setcover_core::ElemId, s: SetId) {
        self.marked.mark(u);
        self.sol.certify(u, s, &mut self.meter);
    }

    /// End-of-epoch-0: high-degree detection marking, counter release.
    fn finish_epoch0(&mut self) {
        let mut marked0 = 0usize;
        for u in 0..self.n {
            if self.elem_counts[u] as f64 >= self.mark0_threshold
                && self.marked.mark(setcover_core::ElemId(u as u32))
            {
                marked0 += 1;
            }
        }
        self.elem_counts = Vec::new();
        self.meter.release(SpaceComponent::Counters, self.n);
        self.rec.counter(Metric::RoEpoch0Marked, marked0 as u64);
        self.rec
            .event("ro.epoch0_done", marked0 as u64, self.epoch0_len as u64);
        if let Some(p) = &mut self.probe {
            p.epoch0_marked = marked0;
        }
    }

    /// Start the subepoch `(i, j, k)`: reset batch counters (generation
    /// bump) and the remaining-edge budget.
    fn start_subepoch(&mut self, i: u32) {
        self.rec.counter(Metric::RoSubepochs, 1);
        // Every subepoch start resets the batch counters (by generation
        // stamp), so the two counts advance in lockstep by design.
        self.rec.counter(Metric::RoCounterResets, 1);
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Extremely rare wrap: hard reset.
            self.counter_gen.iter_mut().for_each(|g| *g = 0);
            self.generation = 1;
        }
        self.remaining = self.subepoch_lens[(i - 1) as usize];
    }

    /// End of epoch `j` of `A⁽ⁱ⁾`: tracking-based optimistic marking
    /// (line 31) and tracked-sample swap (line 32).
    fn finish_epoch(&mut self, i: u32) {
        let threshold = self.mark_threshold(i);
        let mut marked_by_tracking = 0usize;
        let tracked_edges = self.t_touched.len();
        for idx in 0..self.t_touched.len() {
            let u = self.t_touched[idx];
            let cnt = self.t_counts[u as usize];
            if cnt as f64 >= threshold && self.marked.mark(setcover_core::ElemId(u)) {
                marked_by_tracking += 1;
            }
        }
        // Release T (generation bump: all stamps go stale at once) and
        // swap Q̃ ← Q̃'.
        self.meter.release(
            SpaceComponent::TrackedEdges,
            tracked_edges * map_entry_words(2),
        );
        self.t_touched.clear();
        self.t_generation = self.t_generation.wrapping_add(1);
        if self.t_generation == 0 {
            // Extremely rare wrap: hard reset so stale stamps can't match.
            self.t_gen.iter_mut().for_each(|g| *g = 0);
            self.t_generation = 1;
        }
        self.meter
            .release(SpaceComponent::TrackedSets, self.tracked.len());
        self.rec.counter(Metric::RoEpochs, 1);
        self.rec
            .counter(Metric::RoMarkedByTracking, marked_by_tracking as u64);
        self.rec
            .counter(Metric::RoSamplesEvicted, self.tracked.len() as u64);
        self.rec
            .event("ro.epoch_end", i as u64, marked_by_tracking as u64);
        std::mem::swap(&mut self.tracked, &mut self.tracked_next);
        self.tracked_next.clear();

        if let Some(p) = &mut self.probe {
            let mut ep = std::mem::take(&mut self.cur_epoch_probe);
            ep.marked_by_tracking = marked_by_tracking;
            // Deferred from the per-edge path: T only grows within an
            // epoch, so its size at epoch end equals the last per-edge
            // value the old code wrote.
            ep.tracked_edges = tracked_edges;
            p.epochs.push(ep);
        }
    }

    /// Start algorithm `A⁽ⁱ⁾`: draw the initial tracked sample `Q̃` with
    /// probability `q₀` per set (line 10).
    fn start_algorithm(&mut self, i: u32) {
        self.meter
            .release(SpaceComponent::TrackedSets, self.tracked.len());
        self.tracked.clear();
        let q0 = self.config.q0.unwrap_or(1.0 / self.n as f64);
        // Geometric skips: O(expected hits ≈ m/n) instead of m coin flips.
        let Self {
            rng, tracked, m, ..
        } = self;
        for s in bernoulli_hits(rng, *m, q0) {
            tracked.insert(s as u32);
        }
        self.meter
            .charge(SpaceComponent::TrackedSets, self.tracked.len());
        self.rec
            .counter(Metric::RoSamplesTracked, self.tracked.len() as u64);
        self.rec
            .event("ro.algo_start", i as u64, self.tracked.len() as u64);
    }

    fn begin_epoch_probe(&mut self, i: u32, j: u32) {
        if self.probe.is_some() {
            self.cur_epoch_probe = EpochProbe {
                i,
                j,
                tracked_sets: self.tracked.len(),
                ..EpochProbe::default()
            };
        }
    }

    /// Advance the phase machine after a phase's edge budget is exhausted.
    fn advance(&mut self) {
        match self.phase {
            Phase::Epoch0 => {
                self.finish_epoch0();
                if self.k_max >= 1 {
                    self.start_algorithm(1);
                    self.begin_epoch_probe(1, 1);
                    self.phase = Phase::Main { i: 1, j: 1, k: 0 };
                    self.start_subepoch(1);
                } else {
                    self.phase = Phase::Tail;
                }
            }
            Phase::Main { i, j, k } => {
                if (k as usize) + 1 < self.num_batches {
                    self.phase = Phase::Main { i, j, k: k + 1 };
                    self.start_subepoch(i);
                } else {
                    // Epoch j of A^(i) finished.
                    self.finish_epoch(i);
                    if j < self.epochs {
                        self.begin_epoch_probe(i, j + 1);
                        self.phase = Phase::Main { i, j: j + 1, k: 0 };
                        self.start_subepoch(i);
                    } else if i < self.k_max {
                        self.start_algorithm(i + 1);
                        self.begin_epoch_probe(i + 1, 1);
                        self.phase = Phase::Main {
                            i: i + 1,
                            j: 1,
                            k: 0,
                        };
                        self.start_subepoch(i + 1);
                    } else {
                        self.phase = Phase::Tail;
                    }
                }
            }
            Phase::Tail => {}
        }
    }

    fn process_main(&mut self, e: Edge, i: u32, j: u32, k: u32) {
        // Lines 20–21: solution sets cover their arriving elements.
        if self.sol.contains(e.set) {
            self.cover(e.elem, e.set);
            return;
        }
        // Line 22: ignore edges of marked elements.
        if self.marked.is_marked(e.elem) {
            return;
        }
        // Lines 24–25: track edges from Q̃. One bit probe + two array
        // slots — no hashing on the per-edge path.
        if self.tracked.contains(e.set.0) {
            self.rec.counter(Metric::RoProbeUpdates, 1);
            let u = e.elem.index();
            if self.t_gen[u] != self.t_generation {
                self.t_gen[u] = self.t_generation;
                self.t_counts[u] = 0;
                self.t_touched.push(e.elem.0);
                self.meter
                    .charge(SpaceComponent::TrackedEdges, map_entry_words(2));
            }
            self.t_counts[u] += 1;
        }
        // Lines 26–30: batch counter and special-set sampling.
        if self.batch_of(e.set) == k {
            let off = e.set.index() - k as usize * self.batch_size;
            if self.counter_gen[off] != self.generation {
                self.counter_gen[off] = self.generation;
                self.counters[off] = 0;
            }
            self.counters[off] += 1;
            if self.counters[off] == self.special_threshold(j) {
                self.rec.counter(Metric::RoSpecials, 1);
                if self.probe.is_some() {
                    self.cur_epoch_probe.specials += 1;
                    if let Some(pr) = &mut self.probe {
                        pr.special_events.push(SpecialEvent { set: e.set, i, j });
                    }
                }
                let p_j = self.p_j(j);
                if self.sol.len() >= self.n {
                    // §4.2 cap: |Sol| may never exceed n.
                    self.degenerate = true;
                }
                if !self.degenerate
                    && coin(&mut self.rng, p_j)
                    && self.sol.add(e.set, &mut self.meter)
                {
                    self.rec.counter(Metric::RoSolAdded, 1);
                    self.rec.event("ro.sol_add", e.set.index() as u64, j as u64);
                    if self.probe.is_some() {
                        self.cur_epoch_probe.sol_added += 1;
                    }
                    if let Some(p) = &mut self.probe {
                        p.sol_events.push(SolEvent {
                            set: e.set,
                            edge_index: self.edge_index,
                            i,
                            j,
                        });
                    }
                }
                let q_j = self.q_j(j);
                if coin(&mut self.rng, q_j) && self.tracked_next.insert(e.set.0) {
                    self.rec.counter(Metric::RoSamplesTracked, 1);
                    self.meter.charge(SpaceComponent::TrackedSets, 1);
                }
            }
        }
        // (`cur_epoch_probe.tracked_edges` is now stamped once at epoch
        // end in `finish_epoch`, not on every edge.)
    }
}

impl<R: Recorder> StreamingSetCover for RandomOrderSolver<R> {
    fn name(&self) -> &'static str {
        "random-order"
    }

    fn process_edge(&mut self, e: Edge) {
        // Line 4 (throughout): first-set map.
        self.first.observe(e.elem, e.set);

        match self.phase {
            Phase::Epoch0 => {
                if self.sol.contains(e.set) {
                    self.cover(e.elem, e.set);
                } else if !self.marked.is_marked(e.elem) {
                    self.elem_counts[e.elem.index()] += 1;
                }
            }
            Phase::Main { i, j, k } => self.process_main(e, i, j, k),
            Phase::Tail => {
                // Lines 34–36.
                if self.sol.contains(e.set) && !self.sol.has_witness(e.elem) {
                    self.cover(e.elem, e.set);
                }
            }
        }

        self.edge_index += 1;
        if !matches!(self.phase, Phase::Tail) {
            self.remaining = self.remaining.saturating_sub(1);
            if self.remaining == 0 {
                self.advance();
            }
        }
    }

    fn finalize(&mut self) -> Cover {
        // If the stream ended mid-schedule, close the open epoch so probes
        // and space accounting are consistent.
        if let Phase::Main { i, .. } = self.phase {
            self.finish_epoch(i);
            self.phase = Phase::Tail;
        } else if matches!(self.phase, Phase::Epoch0) && !self.elem_counts.is_empty() {
            self.finish_epoch0();
            self.phase = Phase::Tail;
        }
        let first = &self.first;
        let trivial = || {
            let fresh = SolutionBuilder::new(self.m, self.n);
            fresh.finish_with(|u| first.get(u))
        };
        if self.degenerate {
            // §4.2 space cap tripped: report the trivial first-set cover.
            return trivial();
        }
        // Line 38: patch everything without a witness via R(u).
        let sol = std::mem::replace(&mut self.sol, SolutionBuilder::new(0, 0));
        let cover = sol.finish_with(|u| first.get(u));
        // §4.2 fallback, second face: epoch-0 pre-samples are not tied to
        // certified elements, so on tiny instances Sol + patches can
        // exceed the trivial cover — report whichever is smaller (both
        // are available within the space budget).
        if cover.size() > self.n {
            let t = trivial();
            if t.size() < cover.size() {
                return t;
            }
        }
        cover
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::math::approx_ratio;
    use setcover_core::solver::run_streaming;
    use setcover_core::stream::{stream_of, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    fn run_practical(
        inst: &setcover_core::SetCoverInstance,
        order: StreamOrder,
        seed: u64,
    ) -> setcover_core::solver::RunOutcome {
        let solver = RandomOrderSolver::new(
            inst.m(),
            inst.n(),
            inst.num_edges(),
            RandomOrderConfig::practical(),
            seed,
        );
        run_streaming(solver, stream_of(inst, order))
    }

    #[test]
    fn produces_valid_cover_random_order() {
        let p = planted(&PlantedConfig::exact(100, 10_000, 10), 1);
        let inst = &p.workload.instance;
        let out = run_practical(inst, StreamOrder::Uniform(2), 3);
        out.cover.verify(inst).unwrap();
    }

    #[test]
    fn valid_even_on_adversarial_orders() {
        // Correctness (not quality) must hold on any order: patching
        // guarantees a legal cover.
        let p = planted(&PlantedConfig::exact(64, 1024, 8), 2);
        let inst = &p.workload.instance;
        for order in [
            StreamOrder::SetArrival,
            StreamOrder::Interleaved,
            StreamOrder::GreedyTrap,
        ] {
            let out = run_practical(inst, order, 5);
            out.cover.verify(inst).unwrap();
        }
    }

    #[test]
    fn schedule_respects_edge_budget() {
        let p = planted(&PlantedConfig::exact(256, 16_384, 16), 3);
        let inst = &p.workload.instance;
        let s = RandomOrderSolver::new(
            inst.m(),
            inst.n(),
            inst.num_edges(),
            RandomOrderConfig::practical(),
            1,
        );
        let (k, epochs, batches) = s.schedule();
        let planned: usize = (1..=k)
            .map(|i| s.subepoch_len(i) * batches * epochs as usize)
            .sum();
        assert!(
            planned <= inst.num_edges() / 2 || k == 1,
            "planned {planned} exceeds half of N = {}",
            inst.num_edges()
        );
    }

    #[test]
    fn batch_counters_are_the_headline_space() {
        let p = planted(&PlantedConfig::exact(256, 16_384, 16), 4);
        let inst = &p.workload.instance;
        let out = run_practical(inst, StreamOrder::Uniform(7), 8);
        // Counters peak = n (epoch 0) + m/√n (batch) — far below m.
        let counters = out
            .space
            .peak_by_component
            .iter()
            .find(|(c, _)| *c == SpaceComponent::Counters)
            .map(|(_, w)| *w)
            .unwrap();
        let batch = inst.m().div_ceil(setcover_core::math::isqrt(inst.n()));
        assert_eq!(counters, inst.n() + batch);
        assert!(counters < inst.m() / 2, "working set not sublinear in m");
    }

    #[test]
    fn paper_faithful_preset_still_covers() {
        // With log^6 m thresholds nothing becomes special; epoch-0
        // sampling + patching must still produce a valid cover.
        let p = planted(&PlantedConfig::exact(49, 2401, 7), 5);
        let inst = &p.workload.instance;
        let solver = RandomOrderSolver::new(
            inst.m(),
            inst.n(),
            inst.num_edges(),
            RandomOrderConfig::paper_faithful(),
            6,
        );
        let out = run_streaming(solver, stream_of(inst, StreamOrder::Uniform(9)));
        out.cover.verify(inst).unwrap();
    }

    #[test]
    fn ratio_beats_trivial_on_planted_random_order() {
        // n = 400, OPT = 20, m = n^2/?: ratio should be well under the
        // trivial n/OPT = 20... compare against first-set baseline.
        let p = planted(&PlantedConfig::exact(400, 40_000, 20), 6);
        let inst = &p.workload.instance;
        let out = run_practical(inst, StreamOrder::Uniform(11), 12);
        out.cover.verify(inst).unwrap();
        let ratio = approx_ratio(out.cover.size(), 20);
        // The solution is capped at n sets, and the ratio stays in the
        // Õ(√n) envelope (√n = 20; the Õ hides the C·log m sampling cost).
        assert!(out.cover.size() <= inst.n());
        assert!(ratio <= 3.0 * 20.0, "ratio {ratio} above 3·√n");
    }

    #[test]
    fn probe_records_schedule_and_epochs() {
        let p = planted(&PlantedConfig::exact(100, 10_000, 10), 7);
        let inst = &p.workload.instance;
        let mut solver = RandomOrderSolver::new(
            inst.m(),
            inst.n(),
            inst.num_edges(),
            RandomOrderConfig::practical().with_probe(),
            13,
        );
        for e in setcover_core::stream::order_edges(inst, StreamOrder::Uniform(14)) {
            solver.process_edge(e);
        }
        let _ = solver.finalize();
        let probe = solver.take_probe().expect("probe enabled");
        assert!(probe.k >= 1);
        assert_eq!(probe.subepoch_lens.len(), probe.k as usize);
        assert!(
            !probe.sol_events.is_empty(),
            "epoch-0 sampling records events"
        );
        // Epoch probes: at most K * epochs entries (stream may end early).
        assert!(probe.epochs.len() <= (probe.k * probe.epochs_per_algo) as usize + 1);
    }

    #[test]
    fn special_threshold_grows_linearly_in_j() {
        // practical: threshold = 2j (exponent 0, base 2).
        let s = RandomOrderSolver::new(1 << 16, 256, 1 << 20, RandomOrderConfig::practical(), 0);
        assert_eq!(s.special_threshold(1), 2);
        assert_eq!(s.special_threshold(2), 4);
        assert_eq!(s.special_threshold(3), 6);
        // paper-faithful: threshold = j·log^6 m.
        let pf = RandomOrderSolver::new(
            1 << 16,
            256,
            1 << 20,
            RandomOrderConfig::paper_faithful(),
            0,
        );
        assert_eq!(pf.special_threshold(1), 16u32.pow(6));
        assert_eq!(pf.special_threshold(2), 2 * 16u32.pow(6));
    }

    #[test]
    fn p_and_q_double_per_epoch() {
        let s = RandomOrderSolver::new(1 << 16, 256, 1 << 20, RandomOrderConfig::practical(), 0);
        assert!((s.p_j(2) / s.p_j(1) - 2.0).abs() < 1e-12);
        assert!((s.q_j(2) / s.q_j(1) - 2.0).abs() < 1e-12);
        assert_eq!(s.q_j(30), 1.0); // capped
    }

    #[test]
    fn short_stream_is_handled() {
        // Stream much shorter than the schedule: finalize must close the
        // machine and still produce a valid cover.
        let p = planted(&PlantedConfig::exact(50, 500, 5), 8);
        let inst = &p.workload.instance;
        let mut solver = RandomOrderSolver::new(
            inst.m(),
            inst.n(),
            inst.num_edges() * 100, // wild overestimate of N
            RandomOrderConfig::practical(),
            1,
        );
        for e in setcover_core::stream::order_edges(inst, StreamOrder::Uniform(3)) {
            solver.process_edge(e);
        }
        let cover = solver.finalize();
        cover.verify(inst).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let p = planted(&PlantedConfig::exact(81, 2000, 9), 9);
        let inst = &p.workload.instance;
        let a = run_practical(inst, StreamOrder::Uniform(4), 42).cover;
        let b = run_practical(inst, StreamOrder::Uniform(4), 42).cover;
        assert_eq!(a, b);
    }
}
