//! Element packings: certified lower bounds on OPT.
//!
//! A *packing* is a set of elements no two of which share any set. Every
//! cover must spend a distinct set on each packed element, so
//! `OPT ≥ |packing|` — a **certified lower bound** that lets experiments
//! report honest approximation-ratio *upper bounds* on workloads without
//! a planted optimum (uniform, zipf, crawl, dominating-set instances).
//! (On planted instances the exact OPT is preferred; the packing is the
//! fallback the harness uses for `OptHint::Unknown`.)
//!
//! The greedy packing processes elements by ascending degree (low-degree
//! elements exclude fewer others), which is the classic heuristic for
//! large independent sets in the element-conflict graph.

use setcover_core::{ElemId, SetCoverInstance};

/// A packing with its members (pairwise set-disjoint elements).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    members: Vec<ElemId>,
}

impl Packing {
    /// The packed elements.
    pub fn members(&self) -> &[ElemId] {
        &self.members
    }

    /// The certified lower bound `OPT ≥ len()`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the packing is empty (never, for feasible instances).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Verify the defining property against the instance: no two members
    /// share a set.
    pub fn verify(&self, inst: &SetCoverInstance) -> Result<(), String> {
        let mut used = vec![false; inst.m()];
        for &u in &self.members {
            for &s in inst.sets_containing(u) {
                if used[s.index()] {
                    return Err(format!("elements share set {s} — not a packing"));
                }
                used[s.index()] = true;
            }
        }
        Ok(())
    }
}

/// Greedily build a packing (ascending element degree, ties by id).
pub fn greedy_packing(inst: &SetCoverInstance) -> Packing {
    let mut order: Vec<u32> = (0..inst.n() as u32).collect();
    order.sort_by_key(|&u| (inst.elem_degree(ElemId(u)), u));

    let mut set_used = vec![false; inst.m()];
    let mut members = Vec::new();
    'outer: for u in order {
        let uid = ElemId(u);
        for &s in inst.sets_containing(uid) {
            if set_used[s.index()] {
                continue 'outer;
            }
        }
        for &s in inst.sets_containing(uid) {
            set_used[s.index()] = true;
        }
        members.push(uid);
    }
    Packing { members }
}

/// The packing lower bound `OPT ≥ greedy_packing(inst).len()`.
pub fn packing_lower_bound(inst: &SetCoverInstance) -> usize {
    greedy_packing(inst).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::InstanceBuilder;
    use setcover_gen::planted::{planted, PlantedConfig};
    use setcover_gen::uniform::{uniform, UniformConfig};

    #[test]
    fn packing_is_valid_and_positive() {
        let w = uniform(&UniformConfig::ranged(200, 60, 2, 12), 1);
        let p = greedy_packing(&w.instance);
        p.verify(&w.instance).unwrap();
        assert!(!p.is_empty());
        assert!(p.len() <= w.instance.n());
    }

    #[test]
    fn packing_lower_bounds_greedy_cover() {
        // OPT >= packing, and greedy <= H(k)·OPT, so packing <= greedy.
        for seed in 0..5u64 {
            let w = uniform(&UniformConfig::ranged(150, 50, 2, 10), seed);
            let lb = packing_lower_bound(&w.instance);
            let greedy = crate::greedy_cover(&w.instance).size();
            assert!(lb <= greedy, "packing {lb} exceeds greedy {greedy}");
            assert!(lb >= 1);
        }
    }

    #[test]
    fn packing_is_tight_on_disjoint_partitions() {
        // Pure partition: every element of a block conflicts only within
        // its block, so the packing picks exactly one element per block
        // and the bound is exactly OPT.
        let p = planted(&PlantedConfig::exact(100, 10, 10), 2);
        // m == opt: only the planted partition, no decoys.
        let inst = &p.workload.instance;
        let lb = packing_lower_bound(inst);
        assert_eq!(lb, 10, "partition instances certify OPT exactly");
    }

    #[test]
    fn packing_respects_hub_elements() {
        // One element in every set forces |packing| == 1 once picked
        // first... the degree ordering picks low-degree elements first,
        // avoiding the hub and packing more.
        let mut b = InstanceBuilder::new(4, 5);
        b.add_set_elems(0, [0, 4]);
        b.add_set_elems(1, [1, 4]);
        b.add_set_elems(2, [2, 4]);
        b.add_set_elems(3, [3, 4]);
        let inst = b.build().unwrap();
        let p = greedy_packing(&inst);
        p.verify(&inst).unwrap();
        // Elements 0..3 are pairwise disjoint; the hub 4 is excluded.
        assert_eq!(p.len(), 4);
        assert_eq!(packing_lower_bound(&inst), 4);
        // And indeed OPT = 4 here.
        assert_eq!(crate::greedy_cover(&inst).size(), 4);
    }

    #[test]
    fn verify_rejects_fake_packings() {
        let mut b = InstanceBuilder::new(1, 2);
        b.add_set_elems(0, [0, 1]);
        let inst = b.build().unwrap();
        let fake = Packing {
            members: vec![ElemId(0), ElemId(1)],
        };
        assert!(fake.verify(&inst).is_err());
    }
}
