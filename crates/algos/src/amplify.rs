//! Amplification wrappers: parallel copies over a single pass.
//!
//! * [`BestOfK`] — run `k` independent copies of a randomized solver on
//!   the same stream and keep the smallest cover. The remark after
//!   Theorem 2 uses exactly this with `k = O(log m)` to boost success
//!   probability from `3/4` to `1 − 1/(4m)`.
//! * [`NGuessing`] — Algorithm 1 assumes the stream length `N` is known;
//!   §4.1 argues this is w.l.o.g. because `m/√n ≤ N ≤ m·n`, so
//!   `O(log(n^{1.5})) = O(log n)` parallel runs with guesses
//!   `N̂ᵢ = 2ⁱ·m/√n` cover the range and the run whose guess is closest
//!   to `N` produces a valid (and good) solution. The wrapper reports the
//!   smallest cover over all guesses.
//!
//! Both wrappers' space reports *sum* the copies' peaks: parallel copies
//! genuinely multiply memory, which is why the paper keeps their count
//! logarithmic.

use setcover_core::{Cover, Edge, SpaceReport, StreamingSetCover};

use crate::random_order::{RandomOrderConfig, RandomOrderSolver};

/// Run `k` copies of a solver, keep the smallest final cover.
#[derive(Debug)]
pub struct BestOfK<A: StreamingSetCover> {
    copies: Vec<A>,
}

impl<A: StreamingSetCover> BestOfK<A> {
    /// Build from a factory called with copy indices `0..k`.
    pub fn new<F: FnMut(usize) -> A>(k: usize, mut factory: F) -> Self {
        assert!(k >= 1);
        BestOfK {
            copies: (0..k).map(&mut factory).collect(),
        }
    }

    /// Number of copies.
    pub fn k(&self) -> usize {
        self.copies.len()
    }
}

impl<A: StreamingSetCover> StreamingSetCover for BestOfK<A> {
    fn name(&self) -> &'static str {
        "best-of-k"
    }

    fn process_edge(&mut self, e: Edge) {
        for c in &mut self.copies {
            c.process_edge(e);
        }
    }

    fn finalize(&mut self) -> Cover {
        self.copies
            .iter_mut()
            .map(|c| c.finalize())
            .min_by_key(Cover::size)
            .expect("k >= 1")
    }

    fn space(&self) -> SpaceReport {
        let mut peak = 0usize;
        let mut by: std::collections::BTreeMap<_, usize> = Default::default();
        for c in &self.copies {
            let r = c.space();
            peak += r.peak_words;
            for (comp, w) in r.peak_by_component {
                *by.entry(comp).or_default() += w;
            }
        }
        SpaceReport {
            peak_words: peak,
            peak_by_component: by.into_iter().collect(),
        }
    }
}

/// Algorithm 1 with parallel stream-length guesses (§4.1).
#[derive(Debug)]
pub struct NGuessing {
    runs: Vec<RandomOrderSolver>,
    guesses: Vec<usize>,
}

impl NGuessing {
    /// Build runs with guesses `N̂ᵢ = 2ⁱ·m/√n` for `i = 0, 1, ...` until
    /// the guess exceeds `m·n` (each set has at most `n` elements).
    pub fn new(m: usize, n: usize, config: RandomOrderConfig, seed: u64) -> Self {
        let base = (m / setcover_core::math::isqrt(n).max(1)).max(1);
        let cap = m.saturating_mul(n);
        let mut guesses = Vec::new();
        let mut guess = base;
        loop {
            guesses.push(guess);
            if guess >= cap {
                break;
            }
            guess = guess.saturating_mul(2);
        }
        let runs = guesses
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                RandomOrderSolver::new(
                    m,
                    n,
                    g,
                    config,
                    setcover_core::rng::derive_seed(seed, i as u64),
                )
            })
            .collect();
        NGuessing { runs, guesses }
    }

    /// The stream-length guesses, ascending.
    pub fn guesses(&self) -> &[usize] {
        &self.guesses
    }

    /// Number of parallel runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }
}

impl StreamingSetCover for NGuessing {
    fn name(&self) -> &'static str {
        "random-order+n-guessing"
    }

    fn process_edge(&mut self, e: Edge) {
        for r in &mut self.runs {
            r.process_edge(e);
        }
    }

    fn finalize(&mut self) -> Cover {
        self.runs
            .iter_mut()
            .map(|r| r.finalize())
            .min_by_key(Cover::size)
            .expect("at least one guess")
    }

    fn space(&self) -> SpaceReport {
        let mut peak = 0usize;
        let mut by: std::collections::BTreeMap<_, usize> = Default::default();
        for r in &self.runs {
            let rep = r.space();
            peak += rep.peak_words;
            for (comp, w) in rep.peak_by_component {
                *by.entry(comp).or_default() += w;
            }
        }
        SpaceReport {
            peak_words: peak,
            peak_by_component: by.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kk::KkSolver;
    use setcover_core::solver::run_streaming;
    use setcover_core::stream::{stream_of, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn best_of_k_never_worse_than_single_copy() {
        let p = planted(&PlantedConfig::exact(100, 1000, 10), 1);
        let inst = &p.workload.instance;
        let edges = setcover_core::stream::order_edges(inst, StreamOrder::Interleaved);

        let singles: Vec<usize> = (0..4)
            .map(|i| {
                setcover_core::solver::run_on_edges(
                    KkSolver::new(inst.m(), inst.n(), 100 + i),
                    &edges,
                )
                .cover
                .size()
            })
            .collect();
        let best = run_streaming(
            BestOfK::new(4, |i| KkSolver::new(inst.m(), inst.n(), 100 + i as u64)),
            setcover_core::stream::VecStream::new(edges.clone()),
        );
        best.cover.verify(inst).unwrap();
        assert_eq!(best.cover.size(), *singles.iter().min().unwrap());
    }

    #[test]
    fn best_of_k_space_sums_copies() {
        let p = planted(&PlantedConfig::exact(64, 256, 8), 2);
        let inst = &p.workload.instance;
        let out = run_streaming(
            BestOfK::new(3, |i| KkSolver::new(inst.m(), inst.n(), i as u64)),
            stream_of(inst, StreamOrder::Uniform(3)),
        );
        // 3 copies of m counters each.
        assert!(out.space.peak_words >= 3 * inst.m());
    }

    #[test]
    fn n_guessing_covers_the_range() {
        let g = NGuessing::new(10_000, 100, RandomOrderConfig::practical(), 5);
        let guesses = g.guesses();
        assert_eq!(guesses[0], 1000); // m/√n
        assert!(*guesses.last().unwrap() >= 10_000 * 100);
        for w in guesses.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        // O(log(n^1.5)) runs: log2(n^1.5) = 10 doublings here.
        assert_eq!(g.num_runs(), 11);
    }

    #[test]
    fn n_guessing_produces_valid_cover() {
        let p = planted(&PlantedConfig::exact(100, 5000, 10), 3);
        let inst = &p.workload.instance;
        let out = run_streaming(
            NGuessing::new(inst.m(), inst.n(), RandomOrderConfig::practical(), 7),
            stream_of(inst, StreamOrder::Uniform(8)),
        );
        out.cover.verify(inst).unwrap();
        // The per-run |Sol| <= n cap bounds every guess's cover by n.
        assert!(out.cover.size() <= inst.n());
    }
}
