//! The classic one-pass set-arrival √n-approximation (Emek–Rosén style).
//!
//! The paper contrasts the edge-arrival model with the easier *set-arrival*
//! model, where each set arrives contiguously with all its elements and
//! Õ(n) space suffices for a Θ(√n)-approximation [Emek–Rosén; §1]. This
//! solver implements the canonical threshold rule to make that contrast
//! measurable (experiment E-F3 and the examples):
//!
//! * buffer the current set's elements (possible only because sets are
//!   contiguous);
//! * when a set completes, add it to the cover iff it covers `≥ √n`
//!   yet-uncovered elements (certifying them);
//! * patch leftovers with `R(u)`.
//!
//! Every optimal set not picked leaves `< √n` of its elements uncovered at
//! its arrival time, so patching costs `< √n·OPT`; at most `√n` threshold
//! picks can occur per `n` covered elements, giving the `O(√n)` factor.
//! Space is `O(n)` (covered bitset + `R(u)` + one set buffer).
//!
//! On a stream that is **not** set-contiguous this rule silently degrades:
//! the "set" it buffers between id changes is a fragment. The solver still
//! emits a valid cover (patching), and the measured quality collapse on
//! interleaved streams is exactly the paper's motivation for edge-arrival
//! algorithms.

use setcover_core::math::isqrt;
use setcover_core::space::{SpaceComponent, SpaceMeter};
use setcover_core::{
    Cover, Edge, ElemId, Metric, MultiPassSetCover, NoopRecorder, Recorder, SetId, SpaceReport,
    StreamingSetCover,
};

use crate::common::{FirstSetMap, MarkSet, SolutionBuilder};

/// The set-arrival threshold solver. See the [module docs](self).
#[derive(Debug)]
pub struct SetArrivalThresholdSolver<R: Recorder = NoopRecorder> {
    threshold: usize,
    current_set: Option<SetId>,
    buffer: Vec<ElemId>,
    marked: MarkSet,
    first: FirstSetMap,
    sol: SolutionBuilder,
    meter: SpaceMeter,
    rec: R,
}

impl SetArrivalThresholdSolver {
    /// Create a solver for an instance with `m` sets and `n` elements,
    /// with the canonical threshold `√n`.
    pub fn new(m: usize, n: usize) -> Self {
        Self::with_threshold(m, n, isqrt(n).max(1))
    }

    /// Create a solver with an explicit pick threshold.
    pub fn with_threshold(m: usize, n: usize, threshold: usize) -> Self {
        Self::with_recorder(m, n, threshold, NoopRecorder)
    }
}

impl<R: Recorder> SetArrivalThresholdSolver<R> {
    /// [`SetArrivalThresholdSolver::with_threshold`] with a metrics
    /// recorder.
    pub fn with_recorder(m: usize, n: usize, threshold: usize, rec: R) -> Self {
        let mut meter = SpaceMeter::new();
        let marked = MarkSet::new(n, &mut meter);
        let first = FirstSetMap::new(n, &mut meter);
        SetArrivalThresholdSolver {
            threshold: threshold.max(1),
            current_set: None,
            buffer: Vec::new(),
            marked,
            first,
            sol: SolutionBuilder::new(m, n),
            meter,
            rec,
        }
    }

    /// Decide on the buffered set.
    fn flush(&mut self) {
        let Some(s) = self.current_set else { return };
        self.rec.counter(Metric::SaFlushes, 1);
        let uncovered = self
            .buffer
            .iter()
            .filter(|u| !self.marked.is_marked(**u))
            .count();
        if uncovered >= self.threshold {
            if self.sol.add(s, &mut self.meter) {
                self.rec.counter(Metric::SaPicks, 1);
                self.rec
                    .event("sa.pick", s.index() as u64, uncovered as u64);
            }
            let buffer = std::mem::take(&mut self.buffer);
            for &u in &buffer {
                self.marked.mark(u);
                self.sol.certify(u, s, &mut self.meter);
            }
            self.buffer = buffer;
        }
        self.buffer.clear();
        self.meter.set(SpaceComponent::StoredEdges, 0);
        self.current_set = None;
    }
}

impl<R: Recorder> StreamingSetCover for SetArrivalThresholdSolver<R> {
    fn name(&self) -> &'static str {
        "set-arrival-threshold"
    }

    fn process_edge(&mut self, e: Edge) {
        self.first.observe(e.elem, e.set);
        if self.current_set != Some(e.set) {
            self.flush();
            self.current_set = Some(e.set);
        }
        self.buffer.push(e.elem);
        self.rec
            .gauge(Metric::SaBufferPeak, self.buffer.len() as u64);
        self.meter.charge(SpaceComponent::StoredEdges, 1);
    }

    fn finalize(&mut self) -> Cover {
        self.flush();
        let sol = std::mem::replace(&mut self.sol, SolutionBuilder::new(0, 0));
        let first = &self.first;
        sol.finish_with(|u| first.get(u))
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

/// The Chakrabarti–Wirth style multi-pass set-arrival algorithm
/// (paper §1.3, [10]): `p` passes over a set-contiguous stream with
/// thresholds `τ_k = ⌈n^{(p-k)/(p+1)}⌉` achieve an
/// `O(p·n^{1/(p+1)})`-approximation in Õ(n) space — contrast with the
/// edge-arrival [`crate::multipass::MultiPassSieve`], which needs Θ(m)
/// counters because sets are fragmented.
///
/// Because sets arrive whole, pass `k` decides each set *on completion*
/// with exact knowledge of its uncovered contribution, so (unlike the
/// edge-arrival sieve) the classical pick bound `coverage/τ_k` holds and
/// quality is monotone in `p`.
#[derive(Debug)]
pub struct SetArrivalMultiPass {
    passes: usize,
    n: usize,
    current_threshold: usize,
    current_set: Option<SetId>,
    buffer: Vec<ElemId>,
    marked: MarkSet,
    first: FirstSetMap,
    sol: SolutionBuilder,
    meter: SpaceMeter,
}

impl SetArrivalMultiPass {
    /// Create a `passes ≥ 1`-pass solver for an `m × n` instance.
    pub fn new(m: usize, n: usize, passes: usize) -> Self {
        assert!(passes >= 1);
        let mut meter = SpaceMeter::new();
        let marked = MarkSet::new(n, &mut meter);
        let first = FirstSetMap::new(n, &mut meter);
        SetArrivalMultiPass {
            passes,
            n,
            current_threshold: 1,
            current_set: None,
            buffer: Vec::new(),
            marked,
            first,
            sol: SolutionBuilder::new(m, n),
            meter,
        }
    }

    /// Threshold for pass `k` (0-based): `⌈n^{(p-k)/(p+1)}⌉`, last pass 1.
    pub fn threshold_for_pass(&self, k: usize) -> usize {
        if k + 1 >= self.passes {
            return 1;
        }
        let p = self.passes as f64;
        ((self.n as f64).powf((p - k as f64) / (p + 1.0)).ceil() as usize).max(1)
    }

    fn flush(&mut self) {
        let Some(s) = self.current_set else { return };
        let uncovered = self
            .buffer
            .iter()
            .filter(|u| !self.marked.is_marked(**u))
            .count();
        if uncovered >= self.current_threshold {
            self.sol.add(s, &mut self.meter);
            let buffer = std::mem::take(&mut self.buffer);
            for &u in &buffer {
                self.marked.mark(u);
                self.sol.certify(u, s, &mut self.meter);
            }
            self.buffer = buffer;
        }
        self.buffer.clear();
        self.meter.set(SpaceComponent::StoredEdges, 0);
        self.current_set = None;
    }
}

impl MultiPassSetCover for SetArrivalMultiPass {
    fn name(&self) -> &'static str {
        "set-arrival-multipass"
    }

    fn max_passes(&self) -> usize {
        self.passes
    }

    fn begin_pass(&mut self, pass: usize) -> bool {
        if self.marked.all_marked() {
            return false;
        }
        self.current_threshold = self.threshold_for_pass(pass);
        self.current_set = None;
        self.buffer.clear();
        true
    }

    fn process_edge(&mut self, e: Edge) {
        self.first.observe(e.elem, e.set);
        if self.current_set != Some(e.set) {
            self.flush();
            self.current_set = Some(e.set);
        }
        self.buffer.push(e.elem);
        self.meter.charge(SpaceComponent::StoredEdges, 1);
    }

    fn finalize(&mut self) -> Cover {
        self.flush();
        let sol = std::mem::replace(&mut self.sol, SolutionBuilder::new(0, 0));
        let first = &self.first;
        sol.finish_with(|u| first.get(u))
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::math::approx_ratio;
    use setcover_core::solver::run_streaming;
    use setcover_core::stream::{stream_of, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn valid_cover_on_set_arrival_order() {
        let p = planted(&PlantedConfig::exact(225, 900, 15), 1);
        let inst = &p.workload.instance;
        let out = run_streaming(
            SetArrivalThresholdSolver::new(inst.m(), inst.n()),
            stream_of(inst, StreamOrder::SetArrival),
        );
        out.cover.verify(inst).unwrap();
        // Planted sets have size n/OPT = 15 = √n·... with n = 225, √n = 15
        // and planted block = 15 — at the threshold, so planted sets get
        // picked when reached uncovered. Ratio should be √n-scale.
        let ratio = approx_ratio(out.cover.size(), 15);
        assert!(ratio <= 3.0 * 15.0, "ratio {ratio} above 3√n");
    }

    #[test]
    fn valid_but_degraded_on_interleaved_order() {
        let p = planted(&PlantedConfig::exact(225, 900, 15), 2);
        let inst = &p.workload.instance;
        let set_arrival = run_streaming(
            SetArrivalThresholdSolver::new(inst.m(), inst.n()),
            stream_of(inst, StreamOrder::SetArrival),
        );
        let interleaved = run_streaming(
            SetArrivalThresholdSolver::new(inst.m(), inst.n()),
            stream_of(inst, StreamOrder::Interleaved),
        );
        interleaved.cover.verify(inst).unwrap();
        // Fragmented sets never hit the threshold: the interleaved cover
        // degenerates to patching and is much larger than the set-arrival
        // cover. (It differs from `trivial_cover_size()` because R(u) is
        // first-in-stream, not smallest-id.)
        assert!(
            interleaved.cover.size() >= 2 * set_arrival.cover.size(),
            "interleaved {} vs set-arrival {}",
            interleaved.cover.size(),
            set_arrival.cover.size()
        );
    }

    #[test]
    fn space_is_linear_in_n_not_m() {
        let p = planted(&PlantedConfig::exact(100, 5000, 10), 3);
        let inst = &p.workload.instance;
        let out = run_streaming(
            SetArrivalThresholdSolver::new(inst.m(), inst.n()),
            stream_of(inst, StreamOrder::SetArrival),
        );
        // marks + R(u) + buffer + solution ≪ m.
        assert!(out.space.peak_words < inst.m() / 2);
        assert!(out.space.peak_words >= inst.n());
    }

    #[test]
    fn threshold_one_picks_everything_useful() {
        let p = planted(&PlantedConfig::exact(50, 100, 5), 4);
        let inst = &p.workload.instance;
        let out = run_streaming(
            SetArrivalThresholdSolver::with_threshold(inst.m(), inst.n(), 1),
            stream_of(inst, StreamOrder::SetArrival),
        );
        out.cover.verify(inst).unwrap();
        // Greedy-ish eager: never worse than trivial.
        assert!(out.cover.size() <= inst.trivial_cover_size());
    }

    #[test]
    fn multipass_set_arrival_meets_its_bound_and_is_monotone() {
        use setcover_core::solver::run_multipass;
        let p = planted(&PlantedConfig::exact(400, 800, 16), 6);
        let inst = &p.workload.instance;
        let edges = setcover_core::stream::order_edges(inst, StreamOrder::SetArrival);
        let size = |passes: usize| {
            let out = run_multipass(SetArrivalMultiPass::new(inst.m(), inst.n(), passes), &edges);
            out.cover.verify(inst).unwrap();
            (out.cover.size(), out.passes_used)
        };
        let (s1, _) = size(1);
        let (s3, _) = size(3);
        let (s6, used6) = size(6);
        // Whole-set decisions make the classical bound hold: monotone
        // improvement with passes (up to early exit).
        assert!(s3 <= s1, "3 passes ({s3}) worse than 1 ({s1})");
        assert!(s6 <= s3 + 2, "6 passes ({s6}) much worse than 3 ({s3})");
        assert!(used6 <= 6);
        // And the analysis bound at p = 3: 2p·n^{1/(p+1)}·OPT.
        let bound = (2.0 * 3.0 * (400f64).powf(0.25) * 16.0).ceil() as usize;
        assert!(s3 <= bound, "{s3} above bound {bound}");
    }

    #[test]
    fn multipass_space_is_linear_in_n_not_m() {
        use setcover_core::solver::run_multipass;
        let p = planted(&PlantedConfig::exact(64, 4096, 8), 7);
        let inst = &p.workload.instance;
        let edges = setcover_core::stream::order_edges(inst, StreamOrder::SetArrival);
        let out = run_multipass(SetArrivalMultiPass::new(inst.m(), inst.n(), 4), &edges);
        out.cover.verify(inst).unwrap();
        assert!(out.space.peak_words < inst.m() / 4, "Õ(n) claim violated");
    }

    #[test]
    fn buffer_is_cleared_between_sets() {
        let mut s = SetArrivalThresholdSolver::with_threshold(3, 10, 100);
        // Set 0 arrives with 2 elements, then set 1: buffer must reset.
        s.process_edge(Edge::new(0, 0));
        s.process_edge(Edge::new(0, 1));
        s.process_edge(Edge::new(1, 2));
        assert_eq!(s.buffer.len(), 1);
        assert_eq!(s.current_set, Some(SetId(1)));
    }
}
