//! Multi-pass threshold sieve — the pass/approximation trade-off of the
//! paper's related work.
//!
//! Bateni, Esfandiari and Mirrokni (paper §1, [6]) gave the first
//! edge-arrival algorithms: a `p`-pass `((1+ε)·log n)`-approximation, and
//! Chakrabarti–Wirth's set-arrival `O(n^{1/(p+1)})`-per-pass sieve is the
//! classical template. This module implements the natural edge-arrival
//! sieve:
//!
//! * pass `k` (0-based, of `p` total) uses the threshold
//!   `τ_k = ⌈n^{(p-k)/(p+1)}⌉` (geometrically decreasing; `τ_{p-1}` ends
//!   near `n^{1/(p+1)}`, and a final `τ = 1` cleanup pass guarantees full
//!   coverage without patching);
//! * within a pass, every tuple `(S, u)` with `u` uncovered bumps `d(S)`
//!   (counters reset each pass); a set reaching `τ_k` is added to the
//!   cover *immediately* and covers its elements from then on;
//! * passes stop early once everything is covered.
//!
//! Guarantee sketch — with an honest edge-arrival caveat. If an OPT set
//! still has `≥ τ_k` uncovered elements when pass `k` ends, each of them
//! arrived while uncovered, so the set was picked and covers them *from
//! its pick or the next pass onward*: hence `uncovered after pass k+1 ≤
//! OPT·τ_k`, and the final `τ = 1` pass mops up at most `OPT·τ_{p-2}`
//! sets. The classical per-pass pick bound (`coverage/τ_k`), however,
//! does **not** transfer unchanged from the set-arrival sieve: an
//! uncovered element bumps the counter of *every* set it arrives in, so
//! eager picks can multi-count by up to the element degree, and at small
//! `p` the cover is not monotone in `p` (see the `ablation` binary's
//! sweep). By `p = Θ(log n)` the thresholds are dense enough that the
//! measured quality is greedy-like; the sieve is offered as the natural
//! edge-arrival implementation of the related work's pass trade-off, not
//! as a theorem of this paper. Space: `Θ(m)` counters + `O(n)`, one pass
//! of state at a time.

use setcover_core::math::lnf;
use setcover_core::space::{SpaceComponent, SpaceMeter};
use setcover_core::{Cover, Edge, MultiPassSetCover, SpaceReport};

use crate::common::{FirstSetMap, MarkSet, SolutionBuilder};

/// The multi-pass sieve. See the [module docs](self).
#[derive(Debug)]
pub struct MultiPassSieve {
    n: usize,
    passes: usize,
    current_threshold: u32,
    degree: Vec<u32>,
    marked: MarkSet,
    first: FirstSetMap,
    sol: SolutionBuilder,
    meter: SpaceMeter,
}

impl MultiPassSieve {
    /// Create a sieve with `passes ≥ 1` passes for an `m × n` instance.
    pub fn new(m: usize, n: usize, passes: usize) -> Self {
        assert!(passes >= 1);
        let mut meter = SpaceMeter::new();
        meter.charge(SpaceComponent::Counters, m);
        let marked = MarkSet::new(n, &mut meter);
        let first = FirstSetMap::new(n, &mut meter);
        MultiPassSieve {
            n,
            passes,
            current_threshold: 1,
            degree: vec![0; m],
            marked,
            first,
            sol: SolutionBuilder::new(m, n),
            meter,
        }
    }

    /// A sieve with `p = ⌈ln n⌉` passes — the greedy-quality setting.
    pub fn log_n_passes(m: usize, n: usize) -> Self {
        Self::new(m, n, (lnf(n).ceil() as usize).max(1))
    }

    /// The threshold used in pass `k` (0-based): `⌈n^{(p-k)/(p+1)}⌉`,
    /// floored at 1. The last pass always uses 1 (cleanup).
    pub fn threshold_for_pass(&self, k: usize) -> u32 {
        if k + 1 >= self.passes {
            return 1;
        }
        let p = self.passes as f64;
        let expo = (p - k as f64) / (p + 1.0);
        ((self.n as f64).powf(expo).ceil() as u32).max(1)
    }

    /// Elements still uncovered.
    pub fn uncovered(&self) -> usize {
        self.n - self.marked.count()
    }

    /// Current cover size (before finalize).
    pub fn solution_len(&self) -> usize {
        self.sol.len()
    }
}

impl MultiPassSetCover for MultiPassSieve {
    fn name(&self) -> &'static str {
        "multipass-sieve"
    }

    fn max_passes(&self) -> usize {
        self.passes
    }

    fn begin_pass(&mut self, pass: usize) -> bool {
        if self.marked.all_marked() {
            return false;
        }
        self.current_threshold = self.threshold_for_pass(pass);
        self.degree.iter_mut().for_each(|d| *d = 0);
        true
    }

    fn process_edge(&mut self, e: Edge) {
        self.first.observe(e.elem, e.set);
        if self.marked.is_marked(e.elem) {
            return;
        }
        if self.sol.contains(e.set) {
            self.marked.mark(e.elem);
            self.sol.certify(e.elem, e.set, &mut self.meter);
            return;
        }
        let d = &mut self.degree[e.set.index()];
        *d += 1;
        if *d >= self.current_threshold {
            self.sol.add(e.set, &mut self.meter);
            self.marked.mark(e.elem);
            self.sol.certify(e.elem, e.set, &mut self.meter);
        }
    }

    fn finalize(&mut self) -> Cover {
        // After the τ = 1 cleanup pass nothing is left; patching only
        // fires if the driver stopped early or skipped the last pass.
        let sol = std::mem::replace(&mut self.sol, SolutionBuilder::new(0, 0));
        let first = &self.first;
        sol.finish_with(|u| first.get(u))
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::math::approx_ratio;
    use setcover_core::solver::run_multipass;
    use setcover_core::stream::{order_edges, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn covers_without_patching_after_cleanup_pass() {
        let p = planted(&PlantedConfig::exact(200, 800, 10), 1);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Interleaved);
        let out = run_multipass(MultiPassSieve::new(inst.m(), inst.n(), 4), &edges);
        out.cover.verify(inst).unwrap();
        assert!(out.passes_used <= 4);
        assert_eq!(out.edges_processed, out.passes_used * inst.num_edges());
    }

    #[test]
    fn more_passes_means_better_covers() {
        let p = planted(&PlantedConfig::exact(400, 1600, 16), 2);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Uniform(3));
        let size = |passes| {
            let out = run_multipass(MultiPassSieve::new(inst.m(), inst.n(), passes), &edges);
            out.cover.verify(inst).unwrap();
            out.cover.size()
        };
        let one = size(1);
        let many = size(8);
        assert!(
            many <= one,
            "8 passes ({many}) should not lose to 1 pass ({one})"
        );
    }

    #[test]
    fn log_passes_meet_the_analysis_bound() {
        let p = planted(&PlantedConfig::exact(300, 1200, 12), 3);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Uniform(4));
        let sieve = MultiPassSieve::log_n_passes(inst.m(), inst.n());
        let passes = sieve.max_passes() as f64;
        let out = run_multipass(sieve, &edges);
        out.cover.verify(inst).unwrap();
        // Analysis bound: O(p·n^{1/(p+1)})·OPT.
        let bound = 2.0 * passes * (inst.n() as f64).powf(1.0 / (passes + 1.0));
        let ratio = approx_ratio(out.cover.size(), 12);
        assert!(
            ratio <= bound,
            "ratio {ratio} above p·n^(1/(p+1)) bound {bound}"
        );
        // And clearly better than the single-pass sieve on the same input.
        let single = run_multipass(MultiPassSieve::new(inst.m(), inst.n(), 1), &edges);
        assert!(out.cover.size() <= single.cover.size());
    }

    #[test]
    fn thresholds_decrease_geometrically_and_end_at_one() {
        let s = MultiPassSieve::new(100, 10_000, 4);
        let ts: Vec<u32> = (0..4).map(|k| s.threshold_for_pass(k)).collect();
        assert_eq!(*ts.last().unwrap(), 1);
        for w in ts.windows(2) {
            assert!(w[0] >= w[1], "thresholds must not increase: {ts:?}");
        }
        // First threshold is near n^{p/(p+1)} = 10000^0.8 ≈ 1585.
        assert!(ts[0] >= 1000 && ts[0] <= 2000, "{ts:?}");
    }

    #[test]
    fn early_exit_when_everything_is_covered() {
        // One huge set covers everything in pass 1; later passes skip.
        let mut b = setcover_core::InstanceBuilder::new(3, 50);
        b.add_set_elems(0, 0..50);
        b.add_set_elems(1, [0, 1]);
        b.add_set_elems(2, [2]);
        let inst = b.build().unwrap();
        let edges = order_edges(&inst, StreamOrder::SetArrival);
        let out = run_multipass(MultiPassSieve::new(3, 50, 6), &edges);
        out.cover.verify(&inst).unwrap();
        assert!(
            out.passes_used < 6,
            "should stop early, used {}",
            out.passes_used
        );
        assert_eq!(out.cover.size(), 1);
    }

    #[test]
    fn single_pass_degenerates_to_eager_threshold_one() {
        let p = planted(&PlantedConfig::exact(60, 120, 6), 5);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Uniform(6));
        let out = run_multipass(MultiPassSieve::new(inst.m(), inst.n(), 1), &edges);
        out.cover.verify(inst).unwrap();
        // τ = 1: picks the first set of every uncovered element — the
        // first-set cover, no patching.
        assert!(out.cover.size() <= inst.n());
    }
}
