//! # setcover-algos
//!
//! Streaming and offline Set Cover algorithms reproducing
//! *"Set Cover in the One-pass Edge-arrival Streaming Model"*
//! (Khanna–Konrad–Alexandru, PODS 2023).
//!
//! ## The paper's algorithms
//!
//! * [`kk::KkSolver`] — the **KK-algorithm** (Theorem 1, from
//!   [Khanna–Konrad, ITCS'22]): Õ(√n)-approximation with Õ(m) space in
//!   adversarial order. Uncovered-degree counters with geometric inclusion
//!   probabilities.
//! * [`adversarial::AdversarialSolver`] — **Algorithm 2** (Theorem 4):
//!   α-approximation with Õ(mn/α²) space for α = Ω̃(√n), adversarial
//!   order. Replaces degree counters with probabilistic level promotion so
//!   only promoted sets occupy memory.
//! * [`random_order::RandomOrderSolver`] — **Algorithm 1** (Theorem 3, the
//!   paper's main result): Õ(√n)-approximation with Õ(m/√n) space when the
//!   stream is uniformly random. Batches, epochs, subepochs, special sets,
//!   tracked subsamples and optimistic marking, faithfully following the
//!   listing.
//!
//! ## Baselines and context algorithms
//!
//! * [`multipass::MultiPassSieve`] — the p-pass threshold sieve
//!   representing the pass/approximation trade-off of the paper's related
//!   work ([Bateni et al.]; `O(log n)`-quality at `Θ(log n)` passes).
//! * [`greedy::GreedySolver`] — the offline greedy `(ln n + 1)`-approx,
//!   the near-OPT reference for workloads without a planted optimum.
//! * [`packing::greedy_packing`] — element packings: certified `OPT ≥ k`
//!   lower bounds, the honest denominator for unknown-OPT workloads.
//! * [`set_arrival::SetArrivalThresholdSolver`] — the classic one-pass
//!   √n-approximation with Õ(n) space in the *set-arrival* model
//!   (Emek–Rosén style), to exhibit the contrast the paper draws between
//!   the two arrival models.
//! * [`element_sampling::ElementSamplingSolver`] — a projection-based
//!   hybrid representing the Õ(mn/α) space regime (Table 1 row 1,
//!   [Assadi–Khanna–Li]); see the module docs for the exact guarantee.
//! * [`trivial::FirstSetSolver`], [`trivial::StoreAllSolver`] — the
//!   endpoints: patch-everything (n sets, O(n) space) and
//!   store-everything (greedy-quality, O(N) space).
//!
//! ## Facades and wrappers
//!
//! * [`dominating::DominatingSetStream`] — the `m = n` Dominating Set
//!   facade: feed graph edges, get a verified dominating set from any
//!   backend solver.
//!
//! * [`amplify::BestOfK`] — run `k` independent copies on the same pass
//!   and keep the smallest cover (the success-amplification in the remark
//!   after Theorem 2).
//! * [`amplify::NGuessing`] — Algorithm 1's "guess the stream length"
//!   wrapper (§4.1): parallel runs with `N̂ = 2^i · m/√n`.
//!
//! ## Example
//!
//! ```
//! use setcover_algos::KkSolver;
//! use setcover_core::solver::run_streaming;
//! use setcover_core::stream::{stream_of, StreamOrder};
//! use setcover_core::InstanceBuilder;
//!
//! let mut b = InstanceBuilder::new(2, 4);
//! b.add_set_elems(0, [0, 1]);
//! b.add_set_elems(1, [2, 3]);
//! let instance = b.build().unwrap();
//!
//! let outcome = run_streaming(
//!     KkSolver::new(instance.m(), instance.n(), 7),
//!     stream_of(&instance, StreamOrder::Uniform(42)),
//! );
//! outcome.cover.verify(&instance).unwrap();
//! assert!(outcome.cover.size() <= instance.n());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod amplify;
pub mod common;
pub mod dominating;
pub mod element_sampling;
pub mod greedy;
pub mod kk;
pub mod multipass;
pub mod packing;
pub mod random_order;
pub mod set_arrival;
pub mod trivial;

pub use adversarial::{AdversarialConfig, AdversarialSolver};
pub use amplify::{BestOfK, NGuessing};
pub use dominating::{DominatingSet, DominatingSetStream};
pub use element_sampling::{ElementSamplingConfig, ElementSamplingSolver};
pub use greedy::{greedy_cover, GreedySolver};
pub use kk::{KkConfig, KkSolver};
pub use multipass::MultiPassSieve;
pub use packing::{greedy_packing, packing_lower_bound, Packing};
pub use random_order::{ProbeLog, RandomOrderConfig, RandomOrderSolver, SpecialEvent};
pub use set_arrival::{SetArrivalMultiPass, SetArrivalThresholdSolver};
pub use trivial::{FirstSetSolver, StoreAllSolver};
