//! Algorithm 2 (Theorem 4): one-pass α-approximation with Õ(mn/α²) space
//! in adversarial order, for α = Ω̃(√n).
//!
//! A faithful implementation of the paper's §5 listing. The KK-algorithm
//! needs Θ̃(m) space to keep an uncovered-degree counter per set; Algorithm
//! 2 keeps only a *level* per set, and promotes levels probabilistically:
//!
//! * every tuple `(S, u)` with `u` uncovered promotes `S`'s level with
//!   probability `1/α` (line 17);
//! * on promotion to level `ℓ`, `S` joins the partial cover `D_ℓ` with
//!   probability `p_ℓ = α^{2ℓ+1}/(m·n^ℓ) = (α²/n)^ℓ · p₀` where `p₀ = α/m`
//!   (line 20);
//! * `D₀` is pre-sampled with probability `p₀` per set (line 6);
//! * uncovered elements arriving in a `D`-set are certified immediately
//!   (lines 22–24); leftovers are patched with `R(u)` (line 25).
//!
//! Only sets promoted at least once occupy memory (the map `L`, line 3).
//! In expectation `N/α ≤ mn/α` promotions occur in total and level counts
//! decay geometrically for α ≥ √n, giving the Õ(mn/α²) expected space the
//! theorem claims — the experiments measure `|L|` directly.

use std::collections::HashMap;

use rand::rngs::SmallRng;

use setcover_core::rng::{coin, seeded_rng};
use setcover_core::space::{map_entry_words, SpaceComponent, SpaceMeter};
use setcover_core::{
    Cover, Edge, Metric, NoopRecorder, Recorder, SetId, SpaceReport, StreamingSetCover,
};

use crate::common::{FirstSetMap, MarkSet, SolutionBuilder};

/// Tuning for [`AdversarialSolver`]. Defaults are the paper's parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialConfig {
    /// Target approximation factor `α`. The theorem requires
    /// `α ≥ 2√n`; smaller values still run but the space bound degrades
    /// gracefully toward Θ(m).
    pub alpha: f64,
}

impl AdversarialConfig {
    /// The paper's recommended minimum, `α = 2√n`.
    pub fn sqrt_n(n: usize) -> Self {
        AdversarialConfig {
            alpha: 2.0 * (n as f64).sqrt().max(1.0),
        }
    }

    /// An explicit α.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha >= 1.0);
        AdversarialConfig { alpha }
    }
}

/// The Algorithm 2 solver. See the [module docs](self).
///
/// `Clone` is derived so communication-reduction harnesses (Theorem 2) can
/// fork the memory state into parallel runs.
#[derive(Debug, Clone)]
pub struct AdversarialSolver<R: Recorder = NoopRecorder> {
    m: usize,
    n: usize,
    alpha: f64,
    rng: SmallRng,
    /// `L`: levels of sets promoted at least once (line 3). This map *is*
    /// the measured space of the algorithm.
    levels: HashMap<u32, u32>,
    /// Peak size of `L`, for reporting.
    levels_peak: usize,
    marked: MarkSet,
    first: FirstSetMap,
    sol: SolutionBuilder,
    meter: SpaceMeter,
    /// Total number of promotions performed (diagnostics).
    promotions: u64,
    rec: R,
}

impl AdversarialSolver {
    /// Create a solver for an instance with `m` sets and `n` elements.
    ///
    /// Pre-samples `D₀` (each set with probability `α/m`, line 6). The
    /// sampling *time* is O(m) — drawn as a binomial count plus uniform
    /// ids — but the *space* is only the sampled sets, matching the model.
    pub fn new(m: usize, n: usize, config: AdversarialConfig, seed: u64) -> Self {
        Self::with_recorder(m, n, config, seed, NoopRecorder)
    }
}

impl<R: Recorder> AdversarialSolver<R> {
    /// [`AdversarialSolver::new`] with a metrics recorder. The `D₀`
    /// pre-sampling happens here, so constructing through this path
    /// records [`Metric::AdvPresampled`] too.
    pub fn with_recorder(m: usize, n: usize, config: AdversarialConfig, seed: u64, rec: R) -> Self {
        let mut meter = SpaceMeter::new();
        let marked = MarkSet::new(n, &mut meter);
        let first = FirstSetMap::new(n, &mut meter);
        let mut rng = seeded_rng(seed);
        let mut sol = SolutionBuilder::new(m, n);
        let mut rec = rec;

        // D0 sampling: each set independently with p0 = alpha / m.
        let p0 = (config.alpha / m as f64).min(1.0);
        for s in 0..m as u32 {
            if coin(&mut rng, p0) {
                sol.add(SetId(s), &mut meter);
                rec.counter(Metric::AdvPresampled, 1);
            }
        }

        AdversarialSolver {
            m,
            n,
            alpha: config.alpha,
            rng,
            levels: HashMap::new(),
            levels_peak: 0,
            marked,
            first,
            sol,
            meter,
            promotions: 0,
            rec,
        }
    }

    /// `p_ℓ = (α²/n)^ℓ · α/m`, capped at 1 (line 20).
    fn inclusion_probability(&self, level: u32) -> f64 {
        let base = self.alpha * self.alpha / self.n as f64;
        let p0 = self.alpha / self.m as f64;
        // Early cap to avoid overflow at high levels.
        let mut p = p0;
        for _ in 0..level {
            p *= base;
            if p >= 1.0 {
                return 1.0;
            }
        }
        p
    }

    /// Number of sets currently holding a level ≥ 1 — the live size of
    /// `L`, i.e. the quantity Theorem 4 bounds by Õ(mn/α²).
    pub fn levels_len(&self) -> usize {
        self.levels.len()
    }

    /// Total level promotions so far (expected `≈ #uncovered-edges / α`).
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Current solution size (before patching).
    pub fn solution_len(&self) -> usize {
        self.sol.len()
    }

    /// Histogram of promoted sets per level: entry `ℓ-1` counts sets at
    /// level `ℓ ≥ 1`. The Theorem 4 analysis needs the level populations
    /// to decay geometrically for α ≥ 2√n (each promotion is a 1/α coin,
    /// and covered elements stop contributing), which bounds both the
    /// space Õ(mn/α²) and the doubling inclusion rates.
    pub fn level_histogram(&self) -> Vec<usize> {
        let max_level = self.levels.values().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0usize; max_level];
        for &l in self.levels.values() {
            hist[(l - 1) as usize] += 1;
        }
        hist
    }

    /// Whether element `u` already has a covering witness in `Sol`.
    pub fn has_witness(&self, u: setcover_core::ElemId) -> bool {
        self.sol.has_witness(u)
    }

    /// The covering witness recorded for `u`, if any.
    pub fn witness_of(&self, u: setcover_core::ElemId) -> Option<setcover_core::SetId> {
        self.sol.witness_of(u)
    }

    /// The sets currently in `Sol` (insertion order, before patching).
    pub fn solution_members(&self) -> &[setcover_core::SetId] {
        self.sol.members()
    }

    /// The first-set map entry `R(u)`.
    pub fn first_set(&self, u: setcover_core::ElemId) -> Option<setcover_core::SetId> {
        self.first.get(u)
    }
}

impl<R: Recorder> StreamingSetCover for AdversarialSolver<R> {
    fn name(&self) -> &'static str {
        "adversarial-low-space"
    }

    fn process_edge(&mut self, e: Edge) {
        // Lines 9–10: R(u).
        self.first.observe(e.elem, e.set);

        // Lines 11–12: skip covered elements.
        if self.marked.is_marked(e.elem) {
            return;
        }

        // Lines 14–21: probabilistic promotion and inclusion.
        if coin(&mut self.rng, 1.0 / self.alpha) {
            self.promotions += 1;
            let entry = self.levels.entry(e.set.0).or_insert(0);
            if *entry == 0 {
                self.meter
                    .charge(SpaceComponent::Levels, map_entry_words(2));
            }
            *entry += 1;
            let level = *entry;
            self.levels_peak = self.levels_peak.max(self.levels.len());
            self.rec.counter(Metric::AdvPromotions, 1);
            self.rec
                .gauge(Metric::AdvLevelsPeak, self.levels_peak as u64);
            let p_incl = self.inclusion_probability(level);
            if coin(&mut self.rng, p_incl) && self.sol.add(e.set, &mut self.meter) {
                self.rec.counter(Metric::AdvInclusions, 1);
                self.rec.observe(Metric::AdvLevelAtInclusion, level as u64);
                self.rec
                    .event("adv.include", e.set.index() as u64, level as u64);
            }
        }

        // Lines 22–24: if S is in the cover, u is covered by S.
        if self.sol.contains(e.set) {
            self.marked.mark(e.elem);
            self.sol.certify(e.elem, e.set, &mut self.meter);
        }
    }

    fn finalize(&mut self) -> Cover {
        // Line 25: patch with R(u).
        let sol = std::mem::replace(&mut self.sol, SolutionBuilder::new(0, 0));
        let first = &self.first;
        sol.finish_with(|u| first.get(u))
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::math::approx_ratio;
    use setcover_core::solver::run_streaming;
    use setcover_core::stream::{adversarial_portfolio, stream_of, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn produces_valid_cover_on_all_orders() {
        let p = planted(&PlantedConfig::exact(100, 400, 10), 1);
        let inst = &p.workload.instance;
        let mut orders = adversarial_portfolio(2);
        orders.push(StreamOrder::Uniform(3));
        for order in orders {
            let out = run_streaming(
                AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::sqrt_n(inst.n()), 7),
                stream_of(inst, order),
            );
            out.cover.verify(inst).unwrap();
        }
    }

    #[test]
    fn level_map_is_sublinear_in_m() {
        // N = total edges; expected promotions N/alpha. With alpha = 2√n
        // and planted decoys, |L| must be far below m.
        let p = planted(&PlantedConfig::exact(256, 4096, 16), 5);
        let inst = &p.workload.instance;
        let mut solver =
            AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::sqrt_n(inst.n()), 9);
        for e in setcover_core::stream::order_edges(inst, StreamOrder::Interleaved) {
            solver.process_edge(e);
        }
        let upper =
            setcover_core::math::chernoff_upper(inst.num_edges() as f64 / (2.0 * 16.0), 1e-9);
        assert!(
            (solver.promotions() as f64) <= upper,
            "promotions {} above Chernoff bound {upper}",
            solver.promotions()
        );
        assert!(solver.levels_len() <= solver.promotions() as usize);
        assert!(
            solver.levels_len() < inst.m() / 4,
            "level map close to Θ(m)"
        );
    }

    #[test]
    fn space_decreases_with_alpha() {
        let p = planted(&PlantedConfig::exact(256, 2048, 16), 6);
        let inst = &p.workload.instance;
        let run = |alpha: f64| {
            let out = run_streaming(
                AdversarialSolver::new(
                    inst.m(),
                    inst.n(),
                    AdversarialConfig::with_alpha(alpha),
                    11,
                ),
                stream_of(inst, StreamOrder::Uniform(12)),
            );
            out.space
                .peak_by_component
                .iter()
                .find(|(c, _)| *c == SpaceComponent::Levels)
                .map(|(_, w)| *w)
                .unwrap_or(0)
        };
        let lo = run(16.0);
        let hi = run(256.0);
        assert!(
            hi < lo,
            "levels space should shrink with alpha: {hi} !< {lo}"
        );
    }

    #[test]
    fn inclusion_probability_formula() {
        let s = AdversarialSolver::new(1000, 100, AdversarialConfig::with_alpha(20.0), 0);
        // p0 = 20/1000 = 0.02; base = 400/100 = 4
        assert!((s.inclusion_probability(0) - 0.02).abs() < 1e-12);
        assert!((s.inclusion_probability(1) - 0.08).abs() < 1e-12);
        assert!((s.inclusion_probability(2) - 0.32).abs() < 1e-12);
        assert_eq!(s.inclusion_probability(10), 1.0); // capped
    }

    #[test]
    fn approx_ratio_tracks_alpha_scale_on_planted() {
        let p = planted(&PlantedConfig::exact(400, 1600, 8), 2);
        let inst = &p.workload.instance;
        let alpha = 2.0 * 20.0;
        let out = run_streaming(
            AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::with_alpha(alpha), 3),
            stream_of(inst, StreamOrder::Interleaved),
        );
        out.cover.verify(inst).unwrap();
        let ratio = approx_ratio(out.cover.size(), 8);
        // Expected ratio O(alpha log m); the trivial ratio is n/OPT = 50.
        // Generous envelope: stay below the trivial patch-everything size.
        assert!(out.cover.size() <= inst.n(), "cover exceeds trivial bound");
        assert!(
            ratio <= alpha * 3.0,
            "ratio {ratio} far above alpha scale {alpha}"
        );
    }

    #[test]
    fn d0_sampling_is_alpha_in_expectation() {
        let m = 10_000;
        let solver = AdversarialSolver::new(m, 100, AdversarialConfig::with_alpha(50.0), 77);
        // |D0| ~ Binomial(m, 50/m); Chernoff-bounded around 50.
        let d0 = solver.solution_len();
        assert!(
            (15..=120).contains(&d0),
            "|D0| = {d0} implausible for mean 50"
        );
    }

    #[test]
    fn promoted_level_populations_decay() {
        let p = planted(&PlantedConfig::exact(400, 8000, 10), 31);
        let inst = &p.workload.instance;
        let mut solver =
            AdversarialSolver::new(inst.m(), inst.n(), AdversarialConfig::sqrt_n(inst.n()), 32);
        for e in setcover_core::stream::order_edges(inst, StreamOrder::Uniform(33)) {
            solver.process_edge(e);
        }
        let hist = solver.level_histogram();
        assert!(!hist.is_empty(), "some set must get promoted at this scale");
        // Level-1 population dominates the rest combined.
        let tail: usize = hist.iter().skip(1).sum();
        assert!(
            tail <= hist[0],
            "levels >= 2 hold {tail} sets vs {} at level 1 — no geometric decay",
            hist[0]
        );
        let cover = solver.finalize();
        cover.verify(inst).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let p = planted(&PlantedConfig::exact(60, 120, 6), 8);
        let inst = &p.workload.instance;
        let run = |seed| {
            run_streaming(
                AdversarialSolver::new(
                    inst.m(),
                    inst.n(),
                    AdversarialConfig::sqrt_n(inst.n()),
                    seed,
                ),
                stream_of(inst, StreamOrder::GreedyTrap),
            )
            .cover
        };
        assert_eq!(run(4), run(4));
    }
}
