//! Element-sampling solver — the Õ(mn/α) space regime (Table 1, row 1).
//!
//! For α = o(√n), Assadi, Khanna and Li showed Θ̃(mn/α) space is necessary
//! and sufficient in the set-arrival model, and the paper notes their
//! algorithm also runs under edge arrivals (appendix of [19]). This module
//! implements a concrete one-pass edge-arrival representative of that
//! regime built from the classic *element sampling* technique:
//!
//! 1. sample a sub-universe `U'`, each element independently with
//!    probability `ρ` (config; `ρ ≈ c·log(m)/α` matches the Õ(mn/α) space
//!    envelope since the expected number of stored edges is `ρ·N ≤ ρ·mn`);
//! 2. store every arriving edge incident to `U'` — the *projections* of
//!    all sets onto the sample;
//! 3. in parallel, run a threshold rule: a set whose stored projection
//!    gains `τ = ρ·n/α` yet-uncovered sampled elements is added to the
//!    cover immediately (so its elements arriving later are certified
//!    during the pass);
//! 4. at the end, greedily cover the still-uncovered *sampled* elements
//!    from the stored projections, then patch every element without a
//!    witness via `R(u)`.
//!
//! **Guarantee honesty** (see DESIGN.md §3, substitutions): this hybrid
//! achieves `O(α + n/α)`-approximation in expectation — it matches the
//! AKL regime at the α = Θ(√n) boundary this paper lives at, but does not
//! reproduce AKL's `O(α)` guarantee for α ≪ √n, which needs their full
//! multi-layer construction. Space is measured, not assumed: the meter
//! counts stored projection edges.

use rand::rngs::SmallRng;

use setcover_core::rng::{coin, seeded_rng};
use setcover_core::space::{bitset_words, SpaceComponent, SpaceMeter};
use setcover_core::{
    Cover, Edge, ElemId, Metric, NoopRecorder, Recorder, SetId, SpaceReport, StreamingSetCover,
};

use crate::common::{FirstSetMap, MarkSet, SolutionBuilder};

/// Tuning for [`ElementSamplingSolver`].
#[derive(Debug, Clone, Copy)]
pub struct ElementSamplingConfig {
    /// Element sampling probability `ρ`.
    pub rho: f64,
    /// Target approximation factor `α` (sets the pick threshold
    /// `τ = max(1, ρ·n/α)`).
    pub alpha: f64,
}

impl ElementSamplingConfig {
    /// The canonical parameterization for factor `α`: `ρ = c·log₂(m)/α`
    /// (clamped to 1), threshold `τ = ρ·n/α`.
    pub fn for_alpha(alpha: f64, m: usize, c: f64) -> Self {
        assert!(alpha >= 1.0);
        let rho = (c * setcover_core::math::log2f(m).max(1.0) / alpha).min(1.0);
        ElementSamplingConfig { rho, alpha }
    }
}

/// The element-sampling solver. See the [module docs](self).
#[derive(Debug)]
pub struct ElementSamplingSolver<R: Recorder = NoopRecorder> {
    m: usize,
    n: usize,
    threshold: u32,
    /// `U'` membership.
    sampled: Vec<bool>,
    /// Stored projections: per set, its sampled elements seen so far.
    /// Lazily allocated; the meter counts stored edges.
    projections: Vec<Vec<ElemId>>,
    /// Uncovered-sampled counter per set (only of *currently uncovered*
    /// sampled elements observed; monotone approximation — elements
    /// covered later are not decremented, which only makes picking more
    /// eager and is absorbed in the α budget).
    uncovered_gain: Vec<u32>,
    marked: MarkSet,
    first: FirstSetMap,
    sol: SolutionBuilder,
    meter: SpaceMeter,
    rec: R,
}

impl ElementSamplingSolver {
    /// Create a solver for an instance with `m` sets and `n` elements.
    pub fn new(m: usize, n: usize, config: ElementSamplingConfig, seed: u64) -> Self {
        Self::with_recorder(m, n, config, seed, NoopRecorder)
    }
}

impl<R: Recorder> ElementSamplingSolver<R> {
    /// [`ElementSamplingSolver::new`] with a metrics recorder. The
    /// sub-universe `U'` is drawn at construction, so this path records
    /// [`Metric::EsSampledElems`] too.
    pub fn with_recorder(
        m: usize,
        n: usize,
        config: ElementSamplingConfig,
        seed: u64,
        mut rec: R,
    ) -> Self {
        let mut meter = SpaceMeter::new();
        let marked = MarkSet::new(n, &mut meter);
        let first = FirstSetMap::new(n, &mut meter);
        let mut rng: SmallRng = seeded_rng(seed);

        let mut sampled = vec![false; n];
        let mut sample_count = 0usize;
        for s in sampled.iter_mut() {
            if coin(&mut rng, config.rho) {
                *s = true;
                sample_count += 1;
            }
        }
        // The sample membership bitset is n bits of state.
        meter.charge(SpaceComponent::Other, bitset_words(n));

        let tau = (config.rho * n as f64 / config.alpha).ceil().max(1.0) as u32;
        rec.counter(Metric::EsSampledElems, sample_count as u64);

        ElementSamplingSolver {
            m,
            n,
            threshold: tau,
            sampled,
            projections: vec![Vec::new(); m],
            uncovered_gain: vec![0; m],
            marked,
            first,
            sol: SolutionBuilder::new(m, n),
            meter,
            rec,
        }
    }

    /// The pick threshold `τ`.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Total stored projection edges (the measured Õ(mn·ρ) space).
    pub fn stored_edges(&self) -> usize {
        self.projections.iter().map(Vec::len).sum()
    }
}

impl<R: Recorder> StreamingSetCover for ElementSamplingSolver<R> {
    fn name(&self) -> &'static str {
        "element-sampling"
    }

    fn process_edge(&mut self, e: Edge) {
        self.first.observe(e.elem, e.set);

        if self.sol.contains(e.set) {
            // Picked sets certify their elements as they arrive.
            self.marked.mark(e.elem);
            self.sol.certify(e.elem, e.set, &mut self.meter);
            return;
        }
        if !self.sampled[e.elem.index()] {
            return;
        }
        // Store the projection edge.
        self.projections[e.set.index()].push(e.elem);
        self.meter.charge(SpaceComponent::StoredEdges, 1);
        self.rec.counter(Metric::EsEdgesStored, 1);

        if !self.marked.is_marked(e.elem) {
            let g = &mut self.uncovered_gain[e.set.index()];
            *g += 1;
            if *g >= self.threshold && self.sol.add(e.set, &mut self.meter) {
                self.rec.counter(Metric::EsThresholdPicks, 1);
                self.rec
                    .event("es.pick", e.set.index() as u64, u64::from(*g));
                self.marked.mark(e.elem);
                self.sol.certify(e.elem, e.set, &mut self.meter);
            }
        }
    }

    fn finalize(&mut self) -> Cover {
        // Greedy over stored projections for still-uncovered sampled
        // elements: certificates are valid because each stored edge was
        // observed in the stream.
        let mut uncovered: Vec<bool> = (0..self.n)
            .map(|u| self.sampled[u] && !self.sol.has_witness(ElemId(u as u32)))
            .collect();
        let mut remaining = uncovered.iter().filter(|&&b| b).count();
        while remaining > 0 {
            // Pick the set covering the most uncovered sampled elements.
            let mut best: Option<(usize, u32)> = None;
            for s in 0..self.m {
                let gain = self.projections[s]
                    .iter()
                    .filter(|u| uncovered[u.index()])
                    .count();
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, s as u32));
                }
            }
            let Some((_, s)) = best else { break };
            let sid = SetId(s);
            self.sol.add(sid, &mut self.meter);
            // Certify and retire its uncovered sampled elements.
            let proj = std::mem::take(&mut self.projections[s as usize]);
            for &u in &proj {
                if uncovered[u.index()] {
                    uncovered[u.index()] = false;
                    remaining -= 1;
                    self.marked.mark(u);
                    self.sol.certify(u, sid, &mut self.meter);
                }
            }
            self.projections[s as usize] = proj;
        }

        let sol = std::mem::replace(&mut self.sol, SolutionBuilder::new(0, 0));
        let first = &self.first;
        sol.finish_with(|u| first.get(u))
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::solver::run_streaming;
    use setcover_core::stream::{stream_of, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn produces_valid_cover() {
        let p = planted(&PlantedConfig::exact(200, 800, 10), 1);
        let inst = &p.workload.instance;
        for order in [
            StreamOrder::Uniform(2),
            StreamOrder::Interleaved,
            StreamOrder::SetArrival,
        ] {
            let out = run_streaming(
                ElementSamplingSolver::new(
                    inst.m(),
                    inst.n(),
                    ElementSamplingConfig::for_alpha(14.0, inst.m(), 1.0),
                    3,
                ),
                stream_of(inst, order),
            );
            out.cover.verify(inst).unwrap();
        }
    }

    #[test]
    fn stored_edges_scale_with_rho() {
        let p = planted(&PlantedConfig::exact(400, 2000, 20), 2);
        let inst = &p.workload.instance;
        let run = |rho: f64| {
            let mut s = ElementSamplingSolver::new(
                inst.m(),
                inst.n(),
                ElementSamplingConfig { rho, alpha: 20.0 },
                7,
            );
            for e in setcover_core::stream::order_edges(inst, StreamOrder::Uniform(8)) {
                s.process_edge(e);
            }
            s.stored_edges()
        };
        let lo = run(0.05);
        let hi = run(0.5);
        assert!(lo < hi, "stored edges must grow with rho: {lo} !< {hi}");
        // Roughly proportional (generous envelope 3x-30x for 10x rho).
        assert!(hi >= 3 * lo && hi <= 30 * lo.max(1), "lo={lo} hi={hi}");
    }

    #[test]
    fn rho_one_recovers_near_greedy_quality() {
        let p = planted(&PlantedConfig::exact(150, 600, 10), 3);
        let inst = &p.workload.instance;
        let out = run_streaming(
            ElementSamplingSolver::new(
                inst.m(),
                inst.n(),
                // rho = 1 stores everything; alpha = sqrt(n) sets the pick
                // threshold to n/alpha = sqrt(n).
                ElementSamplingConfig {
                    rho: 1.0,
                    alpha: (inst.n() as f64).sqrt(),
                },
                4,
            ),
            stream_of(inst, StreamOrder::Uniform(5)),
        );
        out.cover.verify(inst).unwrap();
        // Everything is stored; the streaming threshold rule pays its
        // O(alpha) = O(sqrt(n)) factor for eager picks, and the
        // finalize-greedy covers leftovers — the ratio stays within the
        // sqrt(n) envelope and far below patch-everything (n/OPT = 15).
        let ratio = out.cover.size() as f64 / 10.0;
        let sqrt_n = (inst.n() as f64).sqrt();
        assert!(
            ratio <= 1.5 * sqrt_n,
            "ratio {ratio} above 1.5*sqrt(n) = {}",
            1.5 * sqrt_n
        );
        assert!(
            out.cover.size() < inst.n() / 2,
            "cover {} not sublinear",
            out.cover.size()
        );
    }

    #[test]
    fn threshold_formula() {
        let s = ElementSamplingSolver::new(
            1000,
            400,
            ElementSamplingConfig {
                rho: 0.5,
                alpha: 20.0,
            },
            0,
        );
        assert_eq!(s.threshold(), 10); // 0.5*400/20
    }

    #[test]
    fn for_alpha_clamps_rho() {
        let c = ElementSamplingConfig::for_alpha(1.0, 1024, 1.0);
        assert_eq!(c.rho, 1.0);
        let c2 = ElementSamplingConfig::for_alpha(100.0, 1024, 1.0);
        assert!((c2.rho - 0.1).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = planted(&PlantedConfig::exact(60, 240, 6), 4);
        let inst = &p.workload.instance;
        let run = |seed| {
            run_streaming(
                ElementSamplingSolver::new(
                    inst.m(),
                    inst.n(),
                    ElementSamplingConfig::for_alpha(8.0, inst.m(), 1.0),
                    seed,
                ),
                stream_of(inst, StreamOrder::Uniform(9)),
            )
            .cover
        };
        assert_eq!(run(11), run(11));
    }
}
