//! Trivial baseline solvers: the two endpoints of the space/quality
//! trade-off.
//!
//! * [`FirstSetSolver`] — keep only `R(u)` (the first set seen per
//!   element) and output `{R(u) : u ∈ U}`. `Õ(n)` space, cover size up to
//!   `n`: the "patch everything" strategy every paper algorithm falls back
//!   on for leftovers (Algorithm 1 line 38, Algorithm 2 line 25). Its
//!   cover size on a workload measures how much the clever machinery
//!   actually saves.
//! * [`StoreAllSolver`] — buffer the entire stream and run offline greedy
//!   at the end. `O(N)` space, near-OPT quality: the quality ceiling for
//!   one-pass algorithms.

use setcover_core::space::{SpaceComponent, SpaceMeter};
use setcover_core::{Cover, Edge, InstanceBuilder, SpaceReport, StreamingSetCover};

use crate::common::{FirstSetMap, SolutionBuilder};
use crate::greedy::greedy_cover;

/// The `Õ(n)`-space patch-everything baseline.
#[derive(Debug)]
pub struct FirstSetSolver {
    first: FirstSetMap,
    m: usize,
    n: usize,
    meter: SpaceMeter,
}

impl FirstSetSolver {
    /// Create a solver for an instance with `m` sets and `n` elements.
    pub fn new(m: usize, n: usize) -> Self {
        let mut meter = SpaceMeter::new();
        let first = FirstSetMap::new(n, &mut meter);
        FirstSetSolver { first, m, n, meter }
    }
}

impl StreamingSetCover for FirstSetSolver {
    fn name(&self) -> &'static str {
        "first-set"
    }

    fn process_edge(&mut self, e: Edge) {
        self.first.observe(e.elem, e.set);
    }

    fn finalize(&mut self) -> Cover {
        let sol = SolutionBuilder::new(self.m, self.n);
        sol.finish_with(|u| self.first.get(u))
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

/// The `O(N)`-space store-everything baseline (offline greedy at the end).
#[derive(Debug)]
pub struct StoreAllSolver {
    m: usize,
    n: usize,
    edges: Vec<Edge>,
    meter: SpaceMeter,
}

impl StoreAllSolver {
    /// Create a solver for an instance with `m` sets and `n` elements.
    pub fn new(m: usize, n: usize) -> Self {
        StoreAllSolver {
            m,
            n,
            edges: Vec::new(),
            meter: SpaceMeter::new(),
        }
    }
}

impl StreamingSetCover for StoreAllSolver {
    fn name(&self) -> &'static str {
        "store-all-greedy"
    }

    fn process_edge(&mut self, e: Edge) {
        self.edges.push(e);
        self.meter.charge(SpaceComponent::StoredEdges, 2);
    }

    fn finalize(&mut self) -> Cover {
        let mut b = InstanceBuilder::new(self.m, self.n).with_edge_capacity(self.edges.len());
        for e in &self.edges {
            b.add_edge(e.set, e.elem);
        }
        let inst = b
            .build()
            .expect("replayed full stream is the original feasible instance");
        greedy_cover(&inst)
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::solver::run_streaming;
    use setcover_core::stream::{stream_of, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn first_set_covers_everything() {
        let p = planted(&PlantedConfig::exact(120, 60, 6), 1);
        let inst = &p.workload.instance;
        let out = run_streaming(
            FirstSetSolver::new(inst.m(), inst.n()),
            stream_of(inst, StreamOrder::Uniform(3)),
        );
        out.cover.verify(inst).unwrap();
        assert!(out.cover.size() <= inst.n());
    }

    #[test]
    fn first_set_space_is_linear_in_n() {
        let p = planted(&PlantedConfig::exact(100, 400, 10), 2);
        let inst = &p.workload.instance;
        let out = run_streaming(
            FirstSetSolver::new(inst.m(), inst.n()),
            stream_of(inst, StreamOrder::SetArrival),
        );
        // n words for R(u) (+ solution/certificate growth at finalize).
        assert!(out.space.peak_words <= 2 * inst.n() + 64);
    }

    #[test]
    fn store_all_matches_offline_greedy() {
        let p = planted(&PlantedConfig::exact(90, 45, 9), 7);
        let inst = &p.workload.instance;
        let offline = greedy_cover(inst);
        for order in [StreamOrder::Uniform(1), StreamOrder::Interleaved] {
            let out = run_streaming(
                StoreAllSolver::new(inst.m(), inst.n()),
                stream_of(inst, order),
            );
            out.cover.verify(inst).unwrap();
            assert_eq!(out.cover.size(), offline.size(), "order {:?}", order);
        }
    }

    #[test]
    fn store_all_space_is_stream_length() {
        let p = planted(&PlantedConfig::exact(50, 25, 5), 3);
        let inst = &p.workload.instance;
        let out = run_streaming(
            StoreAllSolver::new(inst.m(), inst.n()),
            stream_of(inst, StreamOrder::SetArrival),
        );
        assert_eq!(out.space.peak_words, 2 * inst.num_edges());
    }

    #[test]
    fn first_set_quality_is_trivial_cover() {
        // On a set-arrival stream in id order, R(u) equals the smallest-id
        // containing set, so the first-set cover equals the instance's
        // trivial cover.
        let p = planted(&PlantedConfig::exact(80, 40, 8), 9);
        let inst = &p.workload.instance;
        let out = run_streaming(
            FirstSetSolver::new(inst.m(), inst.n()),
            stream_of(inst, StreamOrder::SetArrival),
        );
        assert_eq!(out.cover.size(), inst.trivial_cover_size());
    }
}
