//! Error types for instance construction and solution verification.

use std::fmt;

use crate::ids::{ElemId, SetId};

/// Errors produced while building instances or verifying covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The instance declares an empty universe (`n == 0`).
    EmptyUniverse,
    /// The instance declares an empty set family (`m == 0`).
    EmptyFamily,
    /// An edge references a set index `>= m`.
    SetOutOfRange {
        /// The offending set id.
        set: SetId,
        /// The declared number of sets `m`.
        m: usize,
    },
    /// An edge references an element index `>= n`.
    ElemOutOfRange {
        /// The offending element id.
        elem: ElemId,
        /// The declared universe size `n`.
        n: usize,
    },
    /// Some element is not contained in any set, so no cover exists.
    /// The paper (§2) assumes instances are feasible.
    UncoverableElement(ElemId),
    /// A claimed cover leaves this element uncovered.
    ElementNotCovered(ElemId),
    /// A cover certificate maps an element to a set that does not contain it.
    BadCertificate {
        /// The element whose certificate is wrong.
        elem: ElemId,
        /// The set the certificate names.
        set: SetId,
    },
    /// A cover certificate names a set that is not part of the cover.
    CertificateSetNotInCover {
        /// The element whose certificate is wrong.
        elem: ElemId,
        /// The set the certificate names.
        set: SetId,
    },
    /// A cover certificate is missing for this element.
    MissingCertificate(ElemId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyUniverse => write!(f, "instance has an empty universe (n = 0)"),
            CoreError::EmptyFamily => write!(f, "instance has an empty set family (m = 0)"),
            CoreError::SetOutOfRange { set, m } => {
                write!(f, "edge references {set} but the family has only {m} sets")
            }
            CoreError::ElemOutOfRange { elem, n } => {
                write!(
                    f,
                    "edge references {elem} but the universe has only {n} elements"
                )
            }
            CoreError::UncoverableElement(u) => {
                write!(
                    f,
                    "element {u} is contained in no set; the instance is infeasible"
                )
            }
            CoreError::ElementNotCovered(u) => {
                write!(f, "claimed cover does not cover element {u}")
            }
            CoreError::BadCertificate { elem, set } => {
                write!(
                    f,
                    "certificate maps {elem} to {set}, which does not contain it"
                )
            }
            CoreError::CertificateSetNotInCover { elem, set } => {
                write!(
                    f,
                    "certificate maps {elem} to {set}, which is not in the cover"
                )
            }
            CoreError::MissingCertificate(u) => {
                write!(f, "cover certificate is missing for element {u}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Errors detected by the guarded ingestion layer
/// ([`crate::stream::guard::GuardedStream`]) while validating an incoming
/// edge stream against the model's delivery contract (each edge arrives
/// exactly once, ids in range, declared length honored).
///
/// Every variant carries enough position information to point at the
/// offending edge: `pos` is the 0-based index in the *incoming* stream
/// (what the transport handed the guard), so an operator can replay a
/// seeded stream and land on the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The edge at `pos` references a set index `>= m`.
    SetOutOfRange {
        /// 0-based position of the offending edge in the incoming stream.
        pos: usize,
        /// The offending set id.
        set: SetId,
        /// The declared number of sets `m`.
        m: usize,
    },
    /// The edge at `pos` references an element index `>= n`.
    ElemOutOfRange {
        /// 0-based position of the offending edge in the incoming stream.
        pos: usize,
        /// The offending element id.
        elem: ElemId,
        /// The declared universe size `n`.
        n: usize,
    },
    /// The edge at `pos` repeats an edge seen within the guard's dedup
    /// window — the model promises each edge arrives exactly once.
    DuplicateEdge {
        /// 0-based position of the duplicate copy in the incoming stream.
        pos: usize,
        /// The repeated set id.
        set: SetId,
        /// The repeated element id.
        elem: ElemId,
    },
    /// The stream ended after `delivered` edges but declared `declared`
    /// (`len_hint`): edges were dropped, the stream was truncated, or
    /// extras (duplicates) arrived.
    LengthMismatch {
        /// The length the stream declared up front.
        declared: usize,
        /// The number of edges that actually arrived.
        delivered: usize,
    },
}

impl StreamError {
    /// The stream position the error points at, if it is a positioned
    /// (per-edge) fault; length mismatches are end-of-stream conditions.
    pub fn position(&self) -> Option<usize> {
        match self {
            StreamError::SetOutOfRange { pos, .. }
            | StreamError::ElemOutOfRange { pos, .. }
            | StreamError::DuplicateEdge { pos, .. } => Some(*pos),
            StreamError::LengthMismatch { .. } => None,
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::SetOutOfRange { pos, set, m } => {
                write!(
                    f,
                    "stream position {pos}: edge references {set} but the family has only {m} sets"
                )
            }
            StreamError::ElemOutOfRange { pos, elem, n } => {
                write!(
                    f,
                    "stream position {pos}: edge references {elem} but the universe has only {n} elements"
                )
            }
            StreamError::DuplicateEdge { pos, set, elem } => {
                write!(
                    f,
                    "stream position {pos}: duplicate edge ({set}, {elem}) — each edge must arrive exactly once"
                )
            }
            StreamError::LengthMismatch {
                declared,
                delivered,
            } => {
                write!(
                    f,
                    "stream ended after {delivered} edges but declared {declared}"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = CoreError::SetOutOfRange {
            set: SetId(9),
            m: 4,
        };
        assert!(e.to_string().contains("S9"));
        assert!(e.to_string().contains('4'));

        let e = CoreError::BadCertificate {
            elem: ElemId(2),
            set: SetId(1),
        };
        assert!(e.to_string().contains("u2"));
        assert!(e.to_string().contains("S1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<CoreError>();
        assert_err::<StreamError>();
    }

    #[test]
    fn stream_errors_carry_positions() {
        let e = StreamError::DuplicateEdge {
            pos: 17,
            set: SetId(3),
            elem: ElemId(5),
        };
        assert_eq!(e.position(), Some(17));
        let s = e.to_string();
        assert!(s.contains("position 17"));
        assert!(s.contains("S3"));
        assert!(s.contains("u5"));

        let e = StreamError::LengthMismatch {
            declared: 100,
            delivered: 90,
        };
        assert_eq!(e.position(), None);
        assert!(e.to_string().contains("90"));
        assert!(e.to_string().contains("100"));

        let e = StreamError::SetOutOfRange {
            pos: 2,
            set: SetId(9),
            m: 4,
        };
        assert_eq!(e.position(), Some(2));
        assert!(e.to_string().contains("S9"));
    }
}
