//! Error types for instance construction and solution verification.

use std::fmt;

use crate::ids::{ElemId, SetId};

/// Errors produced while building instances or verifying covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The instance declares an empty universe (`n == 0`).
    EmptyUniverse,
    /// The instance declares an empty set family (`m == 0`).
    EmptyFamily,
    /// An edge references a set index `>= m`.
    SetOutOfRange {
        /// The offending set id.
        set: SetId,
        /// The declared number of sets `m`.
        m: usize,
    },
    /// An edge references an element index `>= n`.
    ElemOutOfRange {
        /// The offending element id.
        elem: ElemId,
        /// The declared universe size `n`.
        n: usize,
    },
    /// Some element is not contained in any set, so no cover exists.
    /// The paper (§2) assumes instances are feasible.
    UncoverableElement(ElemId),
    /// A claimed cover leaves this element uncovered.
    ElementNotCovered(ElemId),
    /// A cover certificate maps an element to a set that does not contain it.
    BadCertificate {
        /// The element whose certificate is wrong.
        elem: ElemId,
        /// The set the certificate names.
        set: SetId,
    },
    /// A cover certificate names a set that is not part of the cover.
    CertificateSetNotInCover {
        /// The element whose certificate is wrong.
        elem: ElemId,
        /// The set the certificate names.
        set: SetId,
    },
    /// A cover certificate is missing for this element.
    MissingCertificate(ElemId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyUniverse => write!(f, "instance has an empty universe (n = 0)"),
            CoreError::EmptyFamily => write!(f, "instance has an empty set family (m = 0)"),
            CoreError::SetOutOfRange { set, m } => {
                write!(f, "edge references {set} but the family has only {m} sets")
            }
            CoreError::ElemOutOfRange { elem, n } => {
                write!(
                    f,
                    "edge references {elem} but the universe has only {n} elements"
                )
            }
            CoreError::UncoverableElement(u) => {
                write!(
                    f,
                    "element {u} is contained in no set; the instance is infeasible"
                )
            }
            CoreError::ElementNotCovered(u) => {
                write!(f, "claimed cover does not cover element {u}")
            }
            CoreError::BadCertificate { elem, set } => {
                write!(
                    f,
                    "certificate maps {elem} to {set}, which does not contain it"
                )
            }
            CoreError::CertificateSetNotInCover { elem, set } => {
                write!(
                    f,
                    "certificate maps {elem} to {set}, which is not in the cover"
                )
            }
            CoreError::MissingCertificate(u) => {
                write!(f, "cover certificate is missing for element {u}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = CoreError::SetOutOfRange {
            set: SetId(9),
            m: 4,
        };
        assert!(e.to_string().contains("S9"));
        assert!(e.to_string().contains('4'));

        let e = CoreError::BadCertificate {
            elem: ElemId(2),
            set: SetId(1),
        };
        assert!(e.to_string().contains("u2"));
        assert!(e.to_string().contains("S1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<CoreError>();
    }
}
