//! Observability: counters, gauges, log2 histograms and labeled spans.
//!
//! The paper's analysis reasons about quantities the solvers never
//! exposed — epoch transitions and sample-set churn in Algorithm 1,
//! level promotions in Algorithm 2 / KK, ingestion-guard violations by
//! kind. This module records them without taxing the hot loops:
//!
//! * [`Recorder`] is the instrumentation sink trait. Solvers are generic
//!   over it, so the default [`NoopRecorder`] — a zero-sized type whose
//!   methods are empty and `#[inline(always)]` — monomorphizes every
//!   call site away. The disabled path costs nothing; there is no branch,
//!   no atomic, no allocation.
//! * [`MetricsRecorder`] is the concrete enabled sink: dense per-metric
//!   arrays (one add per event), log2-bucketed histograms, wall-clock
//!   spans, and an optional bounded trace-event buffer.
//! * [`MetricsSnapshot`] is the deterministic export: only counters,
//!   gauges and histogram buckets (never wall-clock quantities) are part
//!   of its canonical JSON, and [`MetricsSnapshot::merge`] uses only
//!   commutative, associative operations (sum / max), so aggregating
//!   per-trial snapshots in grid order yields byte-identical output for
//!   any worker count.
//!
//! Metric identities are a closed enum ([`Metric`]) rather than string
//! keys: recording is an array index away, names are stable across runs,
//! and the export layer can enumerate everything that exists.

use std::collections::BTreeMap;
use std::time::Instant;

/// Number of log2 buckets: bucket `0` holds zeros, bucket `b ≥ 1` holds
/// values in `[2^(b-1), 2^b)`. 64 value buckets + the zero bucket cover
/// all of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// The log2 bucket index for `v`: `0` for `0`, else `floor(log2 v) + 1`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive lower bound of values landing in `bucket`.
pub fn bucket_floor(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b => 1u64 << (b - 1),
    }
}

macro_rules! metrics {
    ($($variant:ident => $name:literal / $kind:ident),+ $(,)?) => {
        /// Every quantity the instrumentation records, as a closed enum.
        ///
        /// Names (see [`Metric::name`]) are dotted `component.quantity`
        /// strings, stable across runs — they are the keys of the manifest
        /// JSON and must not be renamed casually.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        #[allow(missing_docs)] // the names below are the documentation
        pub enum Metric {
            $($variant),+
        }

        impl Metric {
            /// Number of metrics.
            pub const COUNT: usize = [$(Metric::$variant),+].len();

            /// Every metric, in declaration (= index) order.
            pub const ALL: [Metric; Metric::COUNT] = [$(Metric::$variant),+];

            /// Stable dotted name, e.g. `"kk.level_crossings"`.
            pub fn name(self) -> &'static str {
                match self {
                    $(Metric::$variant => $name),+
                }
            }

            /// How this metric is recorded and merged.
            pub fn kind(self) -> MetricKind {
                match self {
                    $(Metric::$variant => MetricKind::$kind),+
                }
            }
        }
    };
}

metrics! {
    // Driver-level.
    DriverEdges => "driver.edges" / Counter,
    TrialSpan => "trial.span" / Span,
    // Algorithm 1 (random-order): epochs, sample churn, probes.
    RoEpochs => "ro.epochs" / Counter,
    RoSubepochs => "ro.subepochs" / Counter,
    RoCounterResets => "ro.counter_resets" / Counter,
    RoEpoch0Sampled => "ro.epoch0_sampled" / Counter,
    RoEpoch0Marked => "ro.epoch0_marked" / Counter,
    RoSamplesTracked => "ro.samples_tracked" / Counter,
    RoSamplesEvicted => "ro.samples_evicted" / Counter,
    RoProbeUpdates => "ro.probe_updates" / Counter,
    RoSpecials => "ro.specials" / Counter,
    RoSolAdded => "ro.sol_added" / Counter,
    RoMarkedByTracking => "ro.marked_by_tracking" / Counter,
    // KK-algorithm: degree-threshold crossings and inclusions.
    KkEdges => "kk.edges" / Counter,
    KkLevelCrossings => "kk.level_crossings" / Counter,
    KkInclusions => "kk.inclusions" / Counter,
    KkLevelAtInclusion => "kk.level_at_inclusion" / Histogram,
    // Algorithm 2 (adversarial-low-space): level promotions.
    AdvPresampled => "adv.presampled" / Counter,
    AdvPromotions => "adv.promotions" / Counter,
    AdvInclusions => "adv.inclusions" / Counter,
    AdvLevelAtInclusion => "adv.level_at_inclusion" / Histogram,
    AdvLevelsPeak => "adv.levels_peak" / Gauge,
    // Element sampling: stored projections and threshold picks.
    EsSampledElems => "es.sampled_elems" / Counter,
    EsEdgesStored => "es.edges_stored" / Counter,
    EsThresholdPicks => "es.threshold_picks" / Counter,
    // Set-arrival threshold solver: buffer flushes and picks.
    SaFlushes => "sa.flushes" / Counter,
    SaPicks => "sa.picks" / Counter,
    SaBufferPeak => "sa.buffer_peak" / Gauge,
    // Ingestion guard: violations by kind, reactions by policy outcome.
    GuardDuplicates => "guard.duplicates" / Counter,
    GuardSetOutOfRange => "guard.set_out_of_range" / Counter,
    GuardElemOutOfRange => "guard.elem_out_of_range" / Counter,
    GuardLengthMismatch => "guard.length_mismatch" / Counter,
    GuardRepaired => "guard.repaired" / Counter,
    GuardRejected => "guard.rejected" / Counter,
    GuardFailed => "guard.failed" / Counter,
    // Trace-buffer saturation (never silently dropped).
    TraceEventsDropped => "obs.trace_events_dropped" / Counter,
}

/// Recording/merge discipline of a [`Metric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone sum (merged by addition).
    Counter,
    /// Last-set value (merged by max — the only order-free choice).
    Gauge,
    /// Log2-bucketed value distribution (buckets merged by addition).
    Histogram,
    /// Wall-clock duration; excluded from deterministic snapshots.
    Span,
}

/// The instrumentation sink. Solvers, the ingestion guard and the
/// drivers are generic over `R: Recorder`; the default [`NoopRecorder`]
/// compiles every call away.
pub trait Recorder {
    /// `false` only for [`NoopRecorder`]: lets instrumentation sites skip
    /// *computing* expensive values (not just recording them) without a
    /// runtime branch.
    const ENABLED: bool;

    /// Add `delta` to a [`MetricKind::Counter`].
    fn counter(&mut self, m: Metric, delta: u64);

    /// Set a [`MetricKind::Gauge`] to `max(current, value)`.
    fn gauge(&mut self, m: Metric, value: u64);

    /// Record `value` into a [`MetricKind::Histogram`]'s log2 bucket.
    fn observe(&mut self, m: Metric, value: u64);

    /// Open a [`MetricKind::Span`] (wall-clock; non-deterministic).
    fn span_enter(&mut self, m: Metric);

    /// Close the span opened by [`Recorder::span_enter`].
    fn span_exit(&mut self, m: Metric);

    /// Append a trace event (no-op unless the sink buffers traces).
    fn event(&mut self, name: &'static str, a: u64, b: u64);
}

/// The zero-cost disabled sink: a zero-sized type with empty inlined
/// methods. `Solver<NoopRecorder>` monomorphizes to exactly the
/// uninstrumented solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn counter(&mut self, _m: Metric, _delta: u64) {}
    #[inline(always)]
    fn gauge(&mut self, _m: Metric, _value: u64) {}
    #[inline(always)]
    fn observe(&mut self, _m: Metric, _value: u64) {}
    #[inline(always)]
    fn span_enter(&mut self, _m: Metric) {}
    #[inline(always)]
    fn span_exit(&mut self, _m: Metric) {}
    #[inline(always)]
    fn event(&mut self, _name: &'static str, _a: u64, _b: u64) {}
}

/// Forwarding impl: a caller keeps ownership of a [`MetricsRecorder`]
/// and lends `&mut` handles to the solver, the guard and the driver —
/// the borrow ends when the component is dropped, and the caller reads
/// the recorder back out.
impl<R: Recorder> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn counter(&mut self, m: Metric, delta: u64) {
        (**self).counter(m, delta);
    }
    #[inline(always)]
    fn gauge(&mut self, m: Metric, value: u64) {
        (**self).gauge(m, value);
    }
    #[inline(always)]
    fn observe(&mut self, m: Metric, value: u64) {
        (**self).observe(m, value);
    }
    #[inline(always)]
    fn span_enter(&mut self, m: Metric) {
        (**self).span_enter(m);
    }
    #[inline(always)]
    fn span_exit(&mut self, m: Metric) {
        (**self).span_exit(m);
    }
    #[inline(always)]
    fn event(&mut self, name: &'static str, a: u64, b: u64) {
        (**self).event(name, a, b);
    }
}

/// One buffered trace event: a label plus two payload words (positions,
/// ids, levels — whatever the site records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event label (static, from the instrumentation site).
    pub name: &'static str,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Hard cap on buffered trace events per recorder. Overflow is counted
/// in [`Metric::TraceEventsDropped`] — bounded memory, never a silent
/// truncation.
pub const TRACE_EVENT_CAP: usize = 1 << 16;

/// The concrete enabled sink: dense arrays indexed by [`Metric`].
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    counters: [u64; Metric::COUNT],
    gauges: [u64; Metric::COUNT],
    hist: Vec<u64>, // Metric::COUNT × HIST_BUCKETS, row-major
    span_total_ns: [u64; Metric::COUNT],
    span_count: [u64; Metric::COUNT],
    span_open: [Option<Instant>; Metric::COUNT],
    trace: Option<Vec<TraceEvent>>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::new()
    }
}

impl MetricsRecorder {
    /// A fresh recorder with trace buffering disabled.
    pub fn new() -> Self {
        MetricsRecorder {
            counters: [0; Metric::COUNT],
            gauges: [0; Metric::COUNT],
            hist: vec![0; Metric::COUNT * HIST_BUCKETS],
            span_total_ns: [0; Metric::COUNT],
            span_count: [0; Metric::COUNT],
            span_open: [None; Metric::COUNT],
            trace: None,
        }
    }

    /// A fresh recorder that also buffers up to [`TRACE_EVENT_CAP`]
    /// trace events.
    pub fn with_trace() -> Self {
        let mut r = MetricsRecorder::new();
        r.trace = Some(Vec::new());
        r
    }

    /// Current value of a counter.
    pub fn counter_value(&self, m: Metric) -> u64 {
        self.counters[m as usize]
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, m: Metric) -> u64 {
        self.gauges[m as usize]
    }

    /// Histogram bucket counts for `m` (length [`HIST_BUCKETS`]).
    pub fn hist_buckets(&self, m: Metric) -> &[u64] {
        let base = m as usize * HIST_BUCKETS;
        &self.hist[base..base + HIST_BUCKETS]
    }

    /// Buffered trace events (empty unless built with
    /// [`MetricsRecorder::with_trace`]).
    pub fn events(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Export the deterministic view of everything recorded. Span
    /// wall-clock totals are reported separately (see
    /// [`MetricsSnapshot::spans`]) and are *not* part of the canonical
    /// JSON.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for m in Metric::ALL {
            let i = m as usize;
            match m.kind() {
                MetricKind::Counter => {
                    if self.counters[i] > 0 {
                        s.counters.insert(m.name(), self.counters[i]);
                    }
                }
                MetricKind::Gauge => {
                    if self.gauges[i] > 0 {
                        s.gauges.insert(m.name(), self.gauges[i]);
                    }
                }
                MetricKind::Histogram => {
                    let buckets: Vec<(usize, u64)> = self
                        .hist_buckets(m)
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(b, &c)| (b, c))
                        .collect();
                    if !buckets.is_empty() {
                        s.histograms.insert(m.name(), buckets);
                    }
                }
                MetricKind::Span => {
                    if self.span_count[i] > 0 {
                        s.spans
                            .insert(m.name(), (self.span_count[i], self.span_total_ns[i]));
                    }
                }
            }
        }
        s
    }
}

impl Recorder for MetricsRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn counter(&mut self, m: Metric, delta: u64) {
        self.counters[m as usize] += delta;
    }

    #[inline]
    fn gauge(&mut self, m: Metric, value: u64) {
        let g = &mut self.gauges[m as usize];
        *g = (*g).max(value);
    }

    #[inline]
    fn observe(&mut self, m: Metric, value: u64) {
        self.hist[m as usize * HIST_BUCKETS + bucket_of(value)] += 1;
    }

    fn span_enter(&mut self, m: Metric) {
        self.span_open[m as usize] = Some(Instant::now());
    }

    fn span_exit(&mut self, m: Metric) {
        if let Some(start) = self.span_open[m as usize].take() {
            self.span_total_ns[m as usize] += start.elapsed().as_nanos() as u64;
            self.span_count[m as usize] += 1;
        }
    }

    fn event(&mut self, name: &'static str, a: u64, b: u64) {
        if let Some(buf) = &mut self.trace {
            if buf.len() < TRACE_EVENT_CAP {
                buf.push(TraceEvent { name, a, b });
            } else {
                self.counters[Metric::TraceEventsDropped as usize] += 1;
            }
        }
    }
}

/// A deterministic, mergeable export of a [`MetricsRecorder`].
///
/// Only non-zero entries are kept, keyed by stable metric name in a
/// `BTreeMap`, so [`MetricsSnapshot::to_json`] is canonical: two
/// snapshots with the same recorded values serialize to the same bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by metric name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Non-empty histogram buckets by metric name, as
    /// `(bucket index, count)` in bucket order.
    pub histograms: BTreeMap<&'static str, Vec<(usize, u64)>>,
    /// Span `(count, total wall-clock ns)` by metric name. **Excluded**
    /// from [`MetricsSnapshot::to_json`]: wall clocks are not
    /// deterministic. Exporters report them out-of-band.
    pub spans: BTreeMap<&'static str, (u64, u64)>,
}

impl MetricsSnapshot {
    /// Whether nothing deterministic was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge `other` into `self` with order-free operations only:
    /// counters and histogram buckets add, gauges take the max. Merging
    /// per-trial snapshots in any order yields the same result.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            let e = self.gauges.entry(k).or_insert(0);
            *e = (*e).max(v);
        }
        for (&k, buckets) in &other.histograms {
            let mine = self.histograms.entry(k).or_default();
            for &(b, c) in buckets {
                match mine.binary_search_by_key(&b, |&(mb, _)| mb) {
                    Ok(i) => mine[i].1 += c,
                    Err(i) => mine.insert(i, (b, c)),
                }
            }
        }
        for (&k, &(n, ns)) in &other.spans {
            let e = self.spans.entry(k).or_insert((0, 0));
            e.0 += n;
            e.1 += ns;
        }
    }

    /// Canonical compact JSON of the deterministic content:
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{"b":c}}}`.
    /// Keys are sorted, no whitespace, spans excluded.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        push_u64_map(&mut out, self.counters.iter().map(|(&k, &v)| (k, v)));
        out.push_str("},\"gauges\":{");
        push_u64_map(&mut out, self.gauges.iter().map(|(&k, &v)| (k, v)));
        out.push_str("},\"histograms\":{");
        for (i, (k, buckets)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{{");
            push_u64_map(&mut out, buckets.iter().map(|&(b, c)| (bucket_key(b), c)));
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parse a snapshot back from [`MetricsSnapshot::to_json`] output.
    ///
    /// Returns `None` on malformed input or on metric / bucket names
    /// that do not exist — the round-trip is exact for valid snapshots.
    pub fn from_json(s: &str) -> Option<MetricsSnapshot> {
        let v = json::parse(s)?;
        let obj = v.as_object()?;
        let mut snap = MetricsSnapshot::default();
        for (key, val) in obj {
            match key.as_str() {
                "counters" => {
                    for (k, v) in val.as_object()? {
                        snap.counters.insert(intern_metric(k)?, v.as_u64()?);
                    }
                }
                "gauges" => {
                    for (k, v) in val.as_object()? {
                        snap.gauges.insert(intern_metric(k)?, v.as_u64()?);
                    }
                }
                "histograms" => {
                    for (k, v) in val.as_object()? {
                        let mut buckets = Vec::new();
                        for (bk, bv) in v.as_object()? {
                            buckets.push((bk.parse::<usize>().ok()?, bv.as_u64()?));
                        }
                        buckets.sort_unstable_by_key(|&(b, _)| b);
                        snap.histograms.insert(intern_metric(k)?, buckets);
                    }
                }
                _ => return None,
            }
        }
        Some(snap)
    }
}

/// Resolve a parsed metric name back to its static string.
fn intern_metric(name: &str) -> Option<&'static str> {
    Metric::ALL.iter().map(|m| m.name()).find(|&n| n == name)
}

fn bucket_key(b: usize) -> String {
    b.to_string()
}

fn push_u64_map<K: AsRef<str>>(out: &mut String, entries: impl Iterator<Item = (K, u64)>) {
    use std::fmt::Write as _;
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", k.as_ref(), v);
    }
}

pub mod json {
    //! A minimal JSON reader for the observability exports: objects,
    //! arrays, strings (no escapes beyond `\"` / `\\`), unsigned
    //! integers, floats, booleans and null. Used to validate manifests
    //! and round-trip [`super::MetricsSnapshot`]s without external
    //! dependencies; not a general-purpose parser.

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (also see [`Value::as_u64`]).
        Num(f64),
        /// A string (escapes `\"` and `\\` only).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }

        /// The array items, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The number as an exact `u64`, if it is one.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                    Some(*f as u64)
                }
                _ => None,
            }
        }

        /// Look up a key in an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }

    /// Parse `s` as a single JSON value (trailing whitespace allowed).
    pub fn parse(s: &str) -> Option<Value> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos == b.len() {
            Some(v)
        } else {
            None
        }
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Option<Value> {
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b'{' => object(b, pos),
            b'[' => array(b, pos),
            b'"' => Some(Value::Str(string(b, pos)?)),
            b't' => lit(b, pos, "true", Value::Bool(true)),
            b'f' => lit(b, pos, "false", Value::Bool(false)),
            b'n' => lit(b, pos, "null", Value::Null),
            _ => number(b, pos),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Option<Value> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Option<Value> {
        eat(b, pos, b'{')?;
        let mut entries = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Some(Value::Obj(entries));
        }
        loop {
            skip_ws(b, pos);
            let k = string(b, pos)?;
            eat(b, pos, b':')?;
            let v = value(b, pos)?;
            entries.push((k, v));
            skip_ws(b, pos);
            match b.get(*pos)? {
                b',' => *pos += 1,
                b'}' => {
                    *pos += 1;
                    return Some(Value::Obj(entries));
                }
                _ => return None,
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Option<Value> {
        eat(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Some(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos)? {
                b',' => *pos += 1,
                b']' => {
                    *pos += 1;
                    return Some(Value::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Option<String> {
        if *b.get(*pos)? != b'"' {
            return None;
        }
        *pos += 1;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match *b.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        _ => return None,
                    }
                    *pos += 1;
                }
                c => {
                    out.push(c as char);
                    *pos += 1;
                }
            }
        }
        None
    }

    fn number(b: &[u8], pos: &mut usize) -> Option<Value> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Value::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // ENABLED is the claim under test
    fn noop_recorder_is_zero_sized_and_free() {
        // The whole point: the disabled sink allocates no counters at
        // all — it *is* nothing.
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        assert!(!NoopRecorder::ENABLED);
        let mut r = NoopRecorder;
        r.counter(Metric::KkEdges, 1);
        r.gauge(Metric::AdvLevelsPeak, 9);
        r.observe(Metric::KkLevelAtInclusion, 3);
        r.event("x", 1, 2);
    }

    #[test]
    fn bucketing_is_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every power of two starts a new bucket, and floors invert.
        for b in 1..HIST_BUCKETS {
            let lo = bucket_floor(b);
            assert_eq!(bucket_of(lo), b, "floor of bucket {b}");
            if b > 1 {
                assert_eq!(bucket_of(lo - 1), b - 1, "below floor of bucket {b}");
            }
        }
        assert_eq!(bucket_floor(0), 0);
    }

    #[test]
    fn histogram_records_into_buckets() {
        let mut r = MetricsRecorder::new();
        for v in [0, 1, 1, 2, 3, 8, 1 << 20] {
            r.observe(Metric::KkLevelAtInclusion, v);
        }
        let h = r.hist_buckets(Metric::KkLevelAtInclusion);
        assert_eq!(h[0], 1); // the zero
        assert_eq!(h[1], 2); // the ones
        assert_eq!(h[2], 2); // 2 and 3
        assert_eq!(h[4], 1); // 8
        assert_eq!(h[21], 1); // 2^20
        assert_eq!(h.iter().sum::<u64>(), 7);
    }

    #[test]
    fn counters_gauges_and_spans_record() {
        let mut r = MetricsRecorder::new();
        r.counter(Metric::KkEdges, 5);
        r.counter(Metric::KkEdges, 2);
        assert_eq!(r.counter_value(Metric::KkEdges), 7);
        r.gauge(Metric::AdvLevelsPeak, 4);
        r.gauge(Metric::AdvLevelsPeak, 2); // max semantics: stays 4
        assert_eq!(r.gauge_value(Metric::AdvLevelsPeak), 4);
        r.span_enter(Metric::TrialSpan);
        r.span_exit(Metric::TrialSpan);
        let s = r.snapshot();
        assert_eq!(s.spans.get("trial.span").map(|&(n, _)| n), Some(1));
        // Unpaired exit is ignored.
        r.span_exit(Metric::TrialSpan);
        assert_eq!(r.snapshot().spans["trial.span"].0, 1);
    }

    #[test]
    fn trace_buffer_caps_and_counts_drops() {
        let mut r = MetricsRecorder::with_trace();
        for i in 0..(TRACE_EVENT_CAP as u64 + 10) {
            r.event("e", i, 0);
        }
        assert_eq!(r.events().len(), TRACE_EVENT_CAP);
        assert_eq!(r.counter_value(Metric::TraceEventsDropped), 10);
        // Untraced recorder buffers nothing.
        let mut q = MetricsRecorder::new();
        q.event("e", 1, 2);
        assert!(q.events().is_empty());
        assert_eq!(q.counter_value(Metric::TraceEventsDropped), 0);
    }

    #[test]
    fn snapshot_merge_is_order_free() {
        let mut a = MetricsRecorder::new();
        a.counter(Metric::KkEdges, 3);
        a.gauge(Metric::AdvLevelsPeak, 2);
        a.observe(Metric::KkLevelAtInclusion, 5);
        let mut b = MetricsRecorder::new();
        b.counter(Metric::KkEdges, 4);
        b.counter(Metric::RoEpochs, 1);
        b.gauge(Metric::AdvLevelsPeak, 7);
        b.observe(Metric::KkLevelAtInclusion, 1);
        b.observe(Metric::KkLevelAtInclusion, 5);

        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.counters["kk.edges"], 7);
        assert_eq!(ab.gauges["adv.levels_peak"], 7);
        assert_eq!(ab.histograms["kk.level_at_inclusion"], vec![(1, 1), (3, 2)]);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut r = MetricsRecorder::new();
        r.counter(Metric::GuardDuplicates, 11);
        r.counter(Metric::RoSolAdded, 2);
        r.gauge(Metric::SaBufferPeak, 40);
        r.observe(Metric::AdvLevelAtInclusion, 0);
        r.observe(Metric::AdvLevelAtInclusion, 9);
        r.span_enter(Metric::TrialSpan);
        r.span_exit(Metric::TrialSpan);
        let snap = r.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parse back");
        // Spans are intentionally absent from the deterministic JSON.
        let mut expect = snap.clone();
        expect.spans.clear();
        assert_eq!(back, expect);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn empty_snapshot_is_canonical() {
        let snap = MetricsRecorder::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(
            snap.to_json(),
            r#"{"counters":{},"gauges":{},"histograms":{}}"#
        );
        assert_eq!(
            MetricsSnapshot::from_json(&snap.to_json()).unwrap(),
            MetricsSnapshot::default()
        );
    }

    #[test]
    fn from_json_rejects_unknown_names_and_garbage() {
        assert!(MetricsSnapshot::from_json("").is_none());
        assert!(MetricsSnapshot::from_json("{").is_none());
        assert!(MetricsSnapshot::from_json(
            r#"{"counters":{"no.such.metric":1},"gauges":{},"histograms":{}}"#
        )
        .is_none());
        assert!(MetricsSnapshot::from_json(
            r#"{"counters":{},"gauges":{},"histograms":{},"extra":{}}"#
        )
        .is_none());
    }

    #[test]
    fn json_reader_handles_the_manifest_shapes() {
        let v = json::parse(
            r#"{"a":[1,2.5,-3],"b":{"c":"hi \" there","d":null},"e":true,"f":18446744073709551615}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("hi \" there")
        );
        assert_eq!(v.get("e"), Some(&json::Value::Bool(true)));
        assert!(json::parse("{} trailing").is_none());
    }

    #[test]
    fn metric_names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
        for n in names {
            assert!(n.contains('.'), "metric name {n:?} must be dotted");
        }
    }
}
