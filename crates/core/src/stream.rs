//! Edge streams and arrival-order adapters.
//!
//! A one-pass algorithm observes the edge set `E` of the instance in some
//! order. The paper distinguishes **adversarially ordered** streams (the
//! algorithm must work for *every* permutation; Theorems 1, 2, 4) and
//! **random order** streams (the permutation is uniform; Theorem 3).
//!
//! An adversary is not a constructive object, so experiments exercise a
//! portfolio of concrete orders that are known to stress streaming set-cover
//! algorithms in different ways (see [`StreamOrder`]):
//!
//! * [`StreamOrder::SetArrival`] — all edges of a set are contiguous. This
//!   emulates the classical set-arrival model inside the edge-arrival model
//!   and is the *easiest* order for degree-counting algorithms.
//! * [`StreamOrder::Interleaved`] — round-robin across sets, so every set is
//!   spread over the whole stream. This is the order the paper's
//!   introduction identifies as the key difficulty of the edge-arrival
//!   model ("sets may be spread out over the input stream").
//! * [`StreamOrder::ElementGrouped`] — all edges of an element are
//!   contiguous; stresses covered-element bookkeeping.
//! * [`StreamOrder::Uniform`] — a uniformly random permutation (Theorem 3's
//!   model), from a seeded PRNG for reproducibility.
//! * [`StreamOrder::GreedyTrap`] — small sets first, large sets last, each
//!   set contiguous; lures eager algorithms into committing to poor sets.

use rand::seq::SliceRandom;

use crate::instance::{Edge, SetCoverInstance};
use crate::rng::seeded_rng;

pub mod chaos;
pub mod guard;

/// A one-pass source of edges.
///
/// Implementors yield each edge of the instance exactly once. The driver
/// ([`crate::solver::run_streaming`]) pulls edges until exhaustion.
pub trait EdgeStream {
    /// The next edge, or `None` when the stream is exhausted.
    fn next_edge(&mut self) -> Option<Edge>;

    /// Total number of edges this stream will yield, when known. All
    /// built-in streams know their length (`N` in the paper; Algorithm 1
    /// assumes `N` is known, which §4.1 argues is w.l.o.g.).
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// An [`EdgeStream`] over a materialized edge vector.
#[derive(Debug, Clone)]
pub struct VecStream {
    edges: Vec<Edge>,
    pos: usize,
}

impl VecStream {
    /// Wrap an edge vector.
    pub fn new(edges: Vec<Edge>) -> Self {
        VecStream { edges, pos: 0 }
    }

    /// The underlying edges (in stream order), e.g. for replay.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }
}

impl EdgeStream for VecStream {
    #[inline]
    fn next_edge(&mut self) -> Option<Edge> {
        let e = self.edges.get(self.pos).copied();
        if e.is_some() {
            self.pos += 1;
        }
        e
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.edges.len())
    }
}

/// Arrival orders used in experiments and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrder {
    /// Sets arrive one after another with all their elements (set-arrival
    /// emulation), sets in index order.
    SetArrival,
    /// Sets arrive contiguously but in a seeded random set order.
    SetArrivalShuffled(u64),
    /// Round-robin across sets: the `r`-th elements of all (remaining) sets
    /// arrive in round `r`. Maximally spreads each set over the stream.
    Interleaved,
    /// All edges of element `0`, then element `1`, ... (reverse grouping).
    ElementGrouped,
    /// Uniformly random permutation with the given seed (Theorem 3 model).
    Uniform(u64),
    /// Sets arrive contiguously, smallest sets first; within ties, by index.
    /// Adversarial for eager/greedy inclusion rules.
    GreedyTrap,
    /// Semi-random: the set-arrival (adversarial) order, shuffled within
    /// consecutive blocks of `block` edges. `block = 1` is fully
    /// adversarial; `block ≥ N` is a uniformly random permutation of the
    /// set-arrival order. Interpolates between the two models for
    /// robustness sweeps (how much randomness does Theorem 3's algorithm
    /// actually need?).
    BlockShuffled {
        /// Shuffle window length in edges.
        block: usize,
        /// Shuffle seed.
        seed: u64,
    },
}

impl StreamOrder {
    /// Short stable name for reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            StreamOrder::SetArrival => "set-arrival",
            StreamOrder::SetArrivalShuffled(_) => "set-arrival-shuffled",
            StreamOrder::Interleaved => "interleaved",
            StreamOrder::ElementGrouped => "element-grouped",
            StreamOrder::Uniform(_) => "uniform-random",
            StreamOrder::GreedyTrap => "greedy-trap",
            StreamOrder::BlockShuffled { .. } => "block-shuffled",
        }
    }

    /// Whether this order is (a sample from) the random-order model.
    pub fn is_random(&self) -> bool {
        matches!(self, StreamOrder::Uniform(_))
    }
}

/// Materialize the instance's edges in the given arrival order.
///
/// This is the reference oracle for [`LazyStream`]: the lazy stream must
/// yield this exact sequence. Production paths go through [`stream_of`]
/// and never build the `Vec<Edge>`; call this only when a materialized
/// buffer is genuinely needed (replay analysis, file export, tests).
pub fn order_edges(inst: &SetCoverInstance, order: StreamOrder) -> Vec<Edge> {
    match order {
        StreamOrder::SetArrival => inst.edge_vec(),
        StreamOrder::SetArrivalShuffled(seed) => {
            let mut rng = seeded_rng(seed);
            let mut set_ids: Vec<u32> = (0..inst.m() as u32).collect();
            set_ids.shuffle(&mut rng);
            let mut out = Vec::with_capacity(inst.num_edges());
            for s in set_ids {
                let sid = crate::ids::SetId(s);
                out.extend(inst.set(sid).iter().map(|&u| Edge { set: sid, elem: u }));
            }
            out
        }
        StreamOrder::Interleaved => {
            // Keep a live list of non-exhausted sets and retire them in
            // place: each round scans only the sets that still have an
            // element to emit, so total work is O(N + m) instead of the
            // O(m × max-set-size) of rescanning all m sets every round —
            // quadratic on skewed (e.g. Zipf) instances where one set is
            // much longer than the rest.
            let mut out = Vec::with_capacity(inst.num_edges());
            let mut live: Vec<u32> = (0..inst.m() as u32)
                .filter(|&s| inst.set_size(crate::ids::SetId(s)) > 0)
                .collect();
            let mut round = 0usize;
            while !live.is_empty() {
                // `retain` preserves index order (the round-robin emits
                // sets in increasing id within a round) and compacts the
                // exhausted ones away for every later round.
                live.retain(|&s| {
                    let sid = crate::ids::SetId(s);
                    let elems = inst.set(sid);
                    out.push(Edge {
                        set: sid,
                        elem: elems[round],
                    });
                    elems.len() > round + 1
                });
                round += 1;
            }
            out
        }
        StreamOrder::ElementGrouped => {
            let mut out = Vec::with_capacity(inst.num_edges());
            for u in 0..inst.n() as u32 {
                let uid = crate::ids::ElemId(u);
                out.extend(
                    inst.sets_containing(uid)
                        .iter()
                        .map(|&s| Edge { set: s, elem: uid }),
                );
            }
            out
        }
        StreamOrder::Uniform(seed) => {
            let mut edges = inst.edge_vec();
            let mut rng = seeded_rng(seed);
            edges.shuffle(&mut rng);
            edges
        }
        StreamOrder::GreedyTrap => {
            let mut set_ids: Vec<u32> = (0..inst.m() as u32).collect();
            set_ids.sort_by_key(|&s| (inst.set_size(crate::ids::SetId(s)), s));
            let mut out = Vec::with_capacity(inst.num_edges());
            for s in set_ids {
                let sid = crate::ids::SetId(s);
                out.extend(inst.set(sid).iter().map(|&u| Edge { set: sid, elem: u }));
            }
            out
        }
        StreamOrder::BlockShuffled { block, seed } => {
            let mut edges = order_edges(inst, StreamOrder::SetArrival);
            let mut rng = seeded_rng(seed);
            let block = block.max(1);
            for chunk in edges.chunks_mut(block) {
                chunk.shuffle(&mut rng);
            }
            edges
        }
    }
}

/// Internal cursor state of a [`LazyStream`], one variant per traversal
/// shape. Auxiliary state is O(m) `u32`s for set-permuted orders, O(N)
/// `u32`s for edge-permuted orders, and O(1) otherwise — never a
/// `Vec<Edge>`.
#[derive(Debug, Clone)]
enum LazyState {
    /// Sets contiguous, visited in `order` (or id order when `None`):
    /// `SetArrival`, `SetArrivalShuffled`, `GreedyTrap`.
    Sets {
        /// Permutation of set ids, or `None` for the identity.
        order: Option<Vec<u32>>,
        /// Index into `order` (or the id range) of the current set.
        set_pos: usize,
        /// Index of the next element within the current set.
        elem_pos: usize,
    },
    /// Elements contiguous in id order: `ElementGrouped`.
    Elems {
        /// Current element id.
        elem_pos: usize,
        /// Index of the next set within `sets_containing(elem_pos)`.
        set_pos: usize,
    },
    /// Round-robin with in-place retirement: `Interleaved`. This is the
    /// live-list `retain` of [`order_edges`] unrolled into an incremental
    /// read/write cursor pair: sets that still have an element after the
    /// current round are compacted to the front for the next round.
    Interleaved {
        /// Non-exhausted set ids; `..write` is the compacted next round,
        /// `read..` the remainder of the current round.
        live: Vec<u32>,
        /// Next slot of the current round to read.
        read: usize,
        /// Next slot to compact a surviving set into.
        write: usize,
        /// Current round-robin round (element index within each set).
        round: usize,
    },
    /// A permutation of canonical edge indices decoded on the fly via
    /// [`SetCoverInstance::edge_at`]: `Uniform`, `BlockShuffled`.
    Perm {
        /// Shuffled canonical edge indices (`u32`: ⅓ of a `Vec<Edge>`).
        idx: Vec<u32>,
        /// Next position in `idx`.
        pos: usize,
    },
}

/// A lazily generated [`EdgeStream`] yielding edges straight from the
/// instance CSR, byte-identical to [`order_edges`] for the same
/// [`StreamOrder`] (asserted by the equivalence test suite) but without
/// ever materializing a `Vec<Edge>`.
#[derive(Debug, Clone)]
pub struct LazyStream<'a> {
    inst: &'a SetCoverInstance,
    state: LazyState,
    yielded: usize,
    total: usize,
}

impl<'a> LazyStream<'a> {
    /// Build the lazy stream for `order` over `inst`. Seeded orders consume
    /// their RNG exactly as [`order_edges`] does (Fisher–Yates is
    /// value-independent, so shuffling an index array draws the same
    /// random sequence as shuffling the edges themselves).
    pub fn new(inst: &'a SetCoverInstance, order: StreamOrder) -> Self {
        let total = inst.num_edges();
        debug_assert!(u32::try_from(total.max(inst.m())).is_ok());
        let state = match order {
            StreamOrder::SetArrival => LazyState::Sets {
                order: None,
                set_pos: 0,
                elem_pos: 0,
            },
            StreamOrder::SetArrivalShuffled(seed) => {
                let mut rng = seeded_rng(seed);
                let mut set_ids: Vec<u32> = (0..inst.m() as u32).collect();
                set_ids.shuffle(&mut rng);
                LazyState::Sets {
                    order: Some(set_ids),
                    set_pos: 0,
                    elem_pos: 0,
                }
            }
            StreamOrder::GreedyTrap => {
                let mut set_ids: Vec<u32> = (0..inst.m() as u32).collect();
                set_ids.sort_by_key(|&s| (inst.set_size(crate::ids::SetId(s)), s));
                LazyState::Sets {
                    order: Some(set_ids),
                    set_pos: 0,
                    elem_pos: 0,
                }
            }
            StreamOrder::ElementGrouped => LazyState::Elems {
                elem_pos: 0,
                set_pos: 0,
            },
            StreamOrder::Interleaved => {
                let live: Vec<u32> = (0..inst.m() as u32)
                    .filter(|&s| inst.set_size(crate::ids::SetId(s)) > 0)
                    .collect();
                LazyState::Interleaved {
                    live,
                    read: 0,
                    write: 0,
                    round: 0,
                }
            }
            StreamOrder::Uniform(seed) => {
                let mut idx: Vec<u32> = (0..total as u32).collect();
                let mut rng = seeded_rng(seed);
                idx.shuffle(&mut rng);
                LazyState::Perm { idx, pos: 0 }
            }
            StreamOrder::BlockShuffled { block, seed } => {
                let mut idx: Vec<u32> = (0..total as u32).collect();
                let mut rng = seeded_rng(seed);
                let block = block.max(1);
                for chunk in idx.chunks_mut(block) {
                    chunk.shuffle(&mut rng);
                }
                LazyState::Perm { idx, pos: 0 }
            }
        };
        LazyStream {
            inst,
            state,
            yielded: 0,
            total,
        }
    }

    /// Words of auxiliary cursor state (in `u32`s), for memory-model tests
    /// and footers: 0 for `SetArrival`/`ElementGrouped`, ≤ m for the other
    /// set-contiguous orders and `Interleaved`, N for permuted orders —
    /// always at most ⅓ the `8 N` bytes a materialized `Vec<Edge>` costs.
    pub fn aux_u32s(&self) -> usize {
        match &self.state {
            LazyState::Sets { order, .. } => order.as_ref().map_or(0, |v| v.len()),
            LazyState::Elems { .. } => 0,
            LazyState::Interleaved { live, .. } => live.len(),
            LazyState::Perm { idx, .. } => idx.len(),
        }
    }
}

impl EdgeStream for LazyStream<'_> {
    fn next_edge(&mut self) -> Option<Edge> {
        let inst = self.inst;
        let e = match &mut self.state {
            LazyState::Sets {
                order,
                set_pos,
                elem_pos,
            } => loop {
                if *set_pos >= inst.m() {
                    break None;
                }
                let s = match order {
                    Some(ids) => ids[*set_pos],
                    None => *set_pos as u32,
                };
                let sid = crate::ids::SetId(s);
                let elems = inst.set(sid);
                if *elem_pos < elems.len() {
                    let e = Edge {
                        set: sid,
                        elem: elems[*elem_pos],
                    };
                    *elem_pos += 1;
                    break Some(e);
                }
                *set_pos += 1;
                *elem_pos = 0;
            },
            LazyState::Elems { elem_pos, set_pos } => loop {
                if *elem_pos >= inst.n() {
                    break None;
                }
                let uid = crate::ids::ElemId(*elem_pos as u32);
                let sets = inst.sets_containing(uid);
                if *set_pos < sets.len() {
                    let e = Edge {
                        set: sets[*set_pos],
                        elem: uid,
                    };
                    *set_pos += 1;
                    break Some(e);
                }
                *elem_pos += 1;
                *set_pos = 0;
            },
            LazyState::Interleaved {
                live,
                read,
                write,
                round,
            } => loop {
                if *read >= live.len() {
                    // Round over: survivors were compacted to `..write`.
                    live.truncate(*write);
                    *read = 0;
                    *write = 0;
                    *round += 1;
                    if live.is_empty() {
                        break None;
                    }
                    continue;
                }
                let s = live[*read];
                *read += 1;
                let sid = crate::ids::SetId(s);
                let elems = inst.set(sid);
                let e = Edge {
                    set: sid,
                    elem: elems[*round],
                };
                if elems.len() > *round + 1 {
                    live[*write] = s;
                    *write += 1;
                }
                break Some(e);
            },
            LazyState::Perm { idx, pos } => {
                if *pos < idx.len() {
                    let e = inst.edge_at(idx[*pos] as usize);
                    *pos += 1;
                    Some(e)
                } else {
                    None
                }
            }
        };
        match e {
            Some(_) => self.yielded += 1,
            None => debug_assert_eq!(
                self.yielded, self.total,
                "lazy stream exhausted early: yielded {} of {} edges",
                self.yielded, self.total
            ),
        }
        e
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.total)
    }
}

impl Iterator for LazyStream<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        self.next_edge()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.yielded;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for LazyStream<'_> {}

/// The lazy ordered stream for the instance: yields the identical edge
/// sequence to `VecStream::new(order_edges(inst, order))` with O(m) (or,
/// for edge-permuted orders, `N` `u32`s of) cursor state instead of a
/// materialized `Vec<Edge>`.
pub fn stream_of(inst: &SetCoverInstance, order: StreamOrder) -> LazyStream<'_> {
    LazyStream::new(inst, order)
}

/// The adversarial order portfolio used by experiments: every deterministic
/// order plus one shuffled-set-arrival sample.
pub fn adversarial_portfolio(seed: u64) -> Vec<StreamOrder> {
    vec![
        StreamOrder::SetArrival,
        StreamOrder::SetArrivalShuffled(seed),
        StreamOrder::Interleaved,
        StreamOrder::ElementGrouped,
        StreamOrder::GreedyTrap,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst() -> SetCoverInstance {
        let mut b = InstanceBuilder::new(3, 5);
        b.add_set_elems(0, [0, 1, 2, 3, 4]);
        b.add_set_elems(1, [0, 2]);
        b.add_set_elems(2, [4]);
        b.build().unwrap()
    }

    fn is_permutation(inst: &SetCoverInstance, edges: &[Edge]) -> bool {
        let mut a = edges.to_vec();
        a.sort();
        a.dedup();
        a.len() == inst.num_edges() && a == inst.edge_vec()
    }

    #[test]
    fn all_orders_are_permutations() {
        let inst = inst();
        for order in [
            StreamOrder::SetArrival,
            StreamOrder::SetArrivalShuffled(7),
            StreamOrder::Interleaved,
            StreamOrder::ElementGrouped,
            StreamOrder::Uniform(42),
            StreamOrder::GreedyTrap,
            StreamOrder::BlockShuffled { block: 3, seed: 1 },
            StreamOrder::BlockShuffled {
                block: 1000,
                seed: 1,
            },
        ] {
            let edges = order_edges(&inst, order);
            assert!(
                is_permutation(&inst, &edges),
                "order {:?} lost edges",
                order
            );
        }
    }

    #[test]
    fn block_shuffled_interpolates() {
        let inst = inst();
        // block = 1: exactly the set-arrival order.
        let b1 = order_edges(&inst, StreamOrder::BlockShuffled { block: 1, seed: 7 });
        assert_eq!(b1, order_edges(&inst, StreamOrder::SetArrival));
        // block >= N: a (seeded) permutation of everything; overwhelmingly
        // different from set-arrival for this instance.
        let big = order_edges(
            &inst,
            StreamOrder::BlockShuffled {
                block: inst.num_edges(),
                seed: 7,
            },
        );
        assert_ne!(big, b1);
        // Deterministic per seed.
        assert_eq!(
            big,
            order_edges(
                &inst,
                StreamOrder::BlockShuffled {
                    block: inst.num_edges(),
                    seed: 7
                }
            )
        );
        assert_eq!(
            StreamOrder::BlockShuffled { block: 4, seed: 0 }.name(),
            "block-shuffled"
        );
    }

    /// Reference (pre-optimization) interleaving: rescan all m sets per
    /// round. Kept as the spec the live-list version must match.
    fn interleaved_naive(inst: &SetCoverInstance) -> Vec<Edge> {
        let mut out = Vec::with_capacity(inst.num_edges());
        let mut round = 0usize;
        loop {
            let mut emitted = false;
            for s in 0..inst.m() as u32 {
                let sid = crate::ids::SetId(s);
                if let Some(&u) = inst.set(sid).get(round) {
                    out.push(Edge { set: sid, elem: u });
                    emitted = true;
                }
            }
            if !emitted {
                break;
            }
            round += 1;
        }
        out
    }

    #[test]
    fn interleaved_matches_naive_on_skewed_instance() {
        // Zipf-like skew: set 0 covers the whole universe, the rest are
        // tiny — the regime where rescanning all m sets per round was
        // O(m × max-set-size). The live-list version must be the exact
        // same stream, not merely a permutation.
        let n = 512;
        let m = 300;
        let mut b = InstanceBuilder::new(m, n);
        b.add_set_elems(0, 0..n as u32); // one giant set: n rounds
        for s in 1..m {
            b.add_set_elems(s as u32, [(s % n) as u32, ((s * 7) % n) as u32]);
        }
        let inst = b.build().unwrap();
        let edges = order_edges(&inst, StreamOrder::Interleaved);
        assert_eq!(edges, interleaved_naive(&inst));
        assert!(is_permutation(&inst, &edges));
    }

    #[test]
    fn interleaved_matches_naive_with_empty_and_uneven_sets() {
        // Mix of sizes including size-0 sets (never emitted, retired
        // before round 0) and ties; also exercises retire-in-place order.
        let mut b = InstanceBuilder::new(6, 8);
        b.add_set_elems(0, [0, 1, 2, 3, 4, 5, 6, 7]);
        // set 1 left empty
        b.add_set_elems(2, [3]);
        b.add_set_elems(3, [4, 5, 6]);
        // set 4 left empty
        b.add_set_elems(5, [7, 0]);
        let inst = b.build().unwrap();
        let edges = order_edges(&inst, StreamOrder::Interleaved);
        assert_eq!(edges, interleaved_naive(&inst));
    }

    #[test]
    fn set_arrival_groups_sets_contiguously() {
        let inst = inst();
        let edges = order_edges(&inst, StreamOrder::SetArrival);
        // After the first edge of set s appears, no edge of an earlier-seen
        // different set may appear again.
        let mut seen_done: Vec<bool> = vec![false; inst.m()];
        let mut current: Option<u32> = None;
        for e in &edges {
            match current {
                Some(c) if c == e.set.0 => {}
                _ => {
                    if let Some(c) = current {
                        seen_done[c as usize] = true;
                    }
                    assert!(!seen_done[e.set.index()], "set revisited");
                    current = Some(e.set.0);
                }
            }
        }
    }

    #[test]
    fn interleaved_spreads_sets() {
        let inst = inst();
        let edges = order_edges(&inst, StreamOrder::Interleaved);
        // Round-robin: first |active sets| edges are the first elements of
        // each set.
        assert_eq!(edges[0].set, crate::ids::SetId(0));
        assert_eq!(edges[1].set, crate::ids::SetId(1));
        assert_eq!(edges[2].set, crate::ids::SetId(2));
        assert!(is_permutation(&inst, &edges));
    }

    #[test]
    fn uniform_is_seeded_deterministic() {
        let inst = inst();
        let a = order_edges(&inst, StreamOrder::Uniform(9));
        let b = order_edges(&inst, StreamOrder::Uniform(9));
        let c = order_edges(&inst, StreamOrder::Uniform(10));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn greedy_trap_orders_small_sets_first() {
        let inst = inst();
        let edges = order_edges(&inst, StreamOrder::GreedyTrap);
        assert_eq!(edges[0].set, crate::ids::SetId(2)); // size 1
        assert_eq!(edges[1].set, crate::ids::SetId(1)); // size 2
        assert_eq!(edges.last().unwrap().set, crate::ids::SetId(0)); // size 5
    }

    #[test]
    fn vec_stream_yields_all_edges_once() {
        let inst = inst();
        let mut s = stream_of(&inst, StreamOrder::SetArrival);
        assert_eq!(s.len_hint(), Some(inst.num_edges()));
        let mut count = 0;
        while s.next_edge().is_some() {
            count += 1;
        }
        assert_eq!(count, inst.num_edges());
        assert!(s.next_edge().is_none());
    }

    fn all_orders() -> Vec<StreamOrder> {
        vec![
            StreamOrder::SetArrival,
            StreamOrder::SetArrivalShuffled(7),
            StreamOrder::Interleaved,
            StreamOrder::ElementGrouped,
            StreamOrder::Uniform(42),
            StreamOrder::GreedyTrap,
            StreamOrder::BlockShuffled { block: 3, seed: 1 },
            StreamOrder::BlockShuffled {
                block: 1000,
                seed: 1,
            },
        ]
    }

    #[test]
    fn lazy_streams_match_order_edges() {
        let inst = inst();
        for order in all_orders() {
            let lazy: Vec<Edge> = LazyStream::new(&inst, order).collect();
            assert_eq!(lazy, order_edges(&inst, order), "lazy diverged: {order:?}");
        }
    }

    #[test]
    fn lazy_streams_know_their_length_and_stay_exhausted() {
        let inst = inst();
        for order in all_orders() {
            let mut s = LazyStream::new(&inst, order);
            assert_eq!(s.len_hint(), Some(inst.num_edges()), "{order:?}");
            let mut count = 0;
            while s.next_edge().is_some() {
                count += 1;
            }
            assert_eq!(count, inst.num_edges(), "{order:?}");
            // Exhausted streams must stay exhausted, without panicking or
            // advancing internal cursors without bound.
            for _ in 0..3 {
                assert!(s.next_edge().is_none(), "{order:?}");
            }
        }
    }

    #[test]
    fn lazy_streams_never_hold_edge_buffers() {
        // The whole point: auxiliary state is at most N u32s (edge-index
        // permutations), m u32s (set permutations / live list), or zero.
        let inst = inst();
        let n_edges = inst.num_edges();
        let m = inst.m();
        assert_eq!(
            LazyStream::new(&inst, StreamOrder::SetArrival).aux_u32s(),
            0
        );
        assert_eq!(
            LazyStream::new(&inst, StreamOrder::ElementGrouped).aux_u32s(),
            0
        );
        assert_eq!(
            LazyStream::new(&inst, StreamOrder::SetArrivalShuffled(3)).aux_u32s(),
            m
        );
        assert_eq!(
            LazyStream::new(&inst, StreamOrder::GreedyTrap).aux_u32s(),
            m
        );
        assert!(LazyStream::new(&inst, StreamOrder::Interleaved).aux_u32s() <= m);
        assert_eq!(
            LazyStream::new(&inst, StreamOrder::Uniform(5)).aux_u32s(),
            n_edges
        );
        assert_eq!(
            LazyStream::new(&inst, StreamOrder::BlockShuffled { block: 4, seed: 5 }).aux_u32s(),
            n_edges
        );
    }

    #[test]
    fn vec_stream_does_not_advance_past_end() {
        let edges = inst().edge_vec();
        let len = edges.len();
        let mut s = VecStream::new(edges);
        for _ in 0..len {
            assert!(s.next_edge().is_some());
        }
        // Repeated exhausted calls must be stable no-ops.
        for _ in 0..10 {
            assert!(s.next_edge().is_none());
        }
        assert_eq!(s.edges().len(), len);
    }

    #[test]
    fn portfolio_contains_no_random_order() {
        for o in adversarial_portfolio(1) {
            assert!(!o.is_random());
        }
    }

    #[test]
    fn order_names_are_stable() {
        assert_eq!(StreamOrder::Uniform(3).name(), "uniform-random");
        assert_eq!(StreamOrder::Interleaved.name(), "interleaved");
    }
}
