//! Solver traits and the streaming driver.
//!
//! All one-pass algorithms implement [`StreamingSetCover`]: they are
//! constructed with the instance's public parameters (`m`, `n`, and the
//! stream length `N` — §4.1 argues knowing `N` is w.l.o.g. via parallel
//! guessing, which [`crate::solver`]-level wrappers in `setcover-algos`
//! implement), consume edges one at a time, and finalize into a
//! [`Cover`].
//!
//! Offline baselines (greedy, exact-by-construction references) implement
//! [`OfflineSetCover`] and see the whole instance.

use std::time::{Duration, Instant};

use crate::cover::Cover;
use crate::error::StreamError;
use crate::instance::{Edge, SetCoverInstance};
use crate::obs::{Metric, NoopRecorder, Recorder};
use crate::space::SpaceReport;
use crate::stream::guard::{GuardConfig, GuardReport, GuardedStream};
use crate::stream::EdgeStream;

/// A one-pass edge-arrival streaming Set Cover algorithm.
pub trait StreamingSetCover {
    /// Stable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Consume the next edge of the stream.
    fn process_edge(&mut self, e: Edge);

    /// The stream has ended: run post-processing (patching) and emit the
    /// cover with its certificate.
    fn finalize(&mut self) -> Cover;

    /// Space accounting for the run so far (peak live words).
    fn space(&self) -> SpaceReport;
}

/// A multi-pass edge-arrival streaming Set Cover algorithm.
///
/// The paper's related work (§1, [Bateni–Esfandiari–Mirrokni]) trades
/// passes for approximation: `p` passes over the same stream admit
/// `O(p·n^{1/p})`-style factors. Implementors see the stream `passes()`
/// times; [`run_multipass`] drives the loop and allows early exit.
pub trait MultiPassSetCover {
    /// Stable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Maximum number of passes the algorithm may take.
    fn max_passes(&self) -> usize;

    /// Called before pass `pass` (0-based). Return `false` to stop early
    /// (e.g. everything is already covered).
    fn begin_pass(&mut self, pass: usize) -> bool;

    /// Consume the next edge of the current pass.
    fn process_edge(&mut self, e: Edge);

    /// All passes done (or stopped early): emit the cover.
    fn finalize(&mut self) -> Cover;

    /// Space accounting (peak live words across all passes).
    fn space(&self) -> SpaceReport;
}

/// Outcome of a multi-pass run.
#[derive(Debug, Clone)]
pub struct MultiPassOutcome {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// The produced cover.
    pub cover: Cover,
    /// Peak space accounting.
    pub space: SpaceReport,
    /// Passes actually performed.
    pub passes_used: usize,
    /// Total edges consumed across all passes.
    pub edges_processed: usize,
    /// Wall-clock time over all passes.
    pub elapsed: Duration,
}

/// Drive a multi-pass solver over a replayable edge sequence.
pub fn run_multipass<A: MultiPassSetCover>(mut solver: A, edges: &[Edge]) -> MultiPassOutcome {
    let start = Instant::now();
    let mut passes_used = 0usize;
    let mut processed = 0usize;
    for pass in 0..solver.max_passes() {
        if !solver.begin_pass(pass) {
            break;
        }
        passes_used += 1;
        for &e in edges {
            solver.process_edge(e);
        }
        processed += edges.len();
    }
    let cover = solver.finalize();
    MultiPassOutcome {
        algorithm: solver.name(),
        cover,
        space: solver.space(),
        passes_used,
        edges_processed: processed,
        elapsed: start.elapsed(),
    }
}

/// Drive a multi-pass solver with a **fresh stream per pass** instead of a
/// replay buffer: `make_stream` is called once per pass and must yield the
/// same edge sequence each time (lazy [`crate::stream::stream_of`] streams
/// do — they are deterministic in the order's seed). This is the
/// zero-materialization analogue of [`run_multipass`].
pub fn run_multipass_streams<A, S, F>(mut solver: A, mut make_stream: F) -> MultiPassOutcome
where
    A: MultiPassSetCover,
    S: EdgeStream,
    F: FnMut() -> S,
{
    let start = Instant::now();
    let mut passes_used = 0usize;
    let mut processed = 0usize;
    for pass in 0..solver.max_passes() {
        if !solver.begin_pass(pass) {
            break;
        }
        passes_used += 1;
        let mut stream = make_stream();
        while let Some(e) = stream.next_edge() {
            solver.process_edge(e);
            processed += 1;
        }
    }
    let cover = solver.finalize();
    MultiPassOutcome {
        algorithm: solver.name(),
        cover,
        space: solver.space(),
        passes_used,
        edges_processed: processed,
        elapsed: start.elapsed(),
    }
}

/// An offline (whole-instance) Set Cover algorithm.
pub trait OfflineSetCover {
    /// Stable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Solve the instance.
    fn solve(&self, inst: &SetCoverInstance) -> Cover;
}

/// The result of driving a streaming solver over a stream.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// The produced cover (verify with [`Cover::verify`]).
    pub cover: Cover,
    /// Peak space accounting.
    pub space: SpaceReport,
    /// Number of edges consumed.
    pub edges_processed: usize,
    /// Wall-clock time spent in `process_edge` + `finalize`.
    pub elapsed: Duration,
}

impl RunOutcome {
    /// Throughput in edges per second.
    ///
    /// Returns [`f64::NAN`] when the run was below timer resolution: a
    /// `0.0` here would silently drag down throughput aggregates over
    /// small instances, whereas NaN forces aggregators to skip the run
    /// (see `Summary`'s NaN handling in `setcover-bench`).
    pub fn edges_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            f64::NAN
        } else {
            self.edges_processed as f64 / secs
        }
    }
}

/// Debug-build enforcement of the one-pass protocol: `process_edge`
/// after `finalize` is a contract violation (the solver has already
/// committed its cover), as is finalizing twice.
///
/// The check lives here — in the drivers — rather than in every solver,
/// so each algorithm's `process_edge` stays branch-free and there is
/// exactly one place defining the contract. [`run_streaming`],
/// [`run_on_edges`] and [`run_guarded`] wrap their solver in this
/// automatically; it is public so harnesses driving solvers by hand can
/// opt in too. In release builds the wrapper compiles to nothing.
#[derive(Debug)]
pub struct ContractChecked<A> {
    inner: A,
    #[cfg(debug_assertions)]
    finalized: bool,
}

impl<A: StreamingSetCover> ContractChecked<A> {
    /// Wrap `solver` with protocol checks (debug builds only).
    pub fn new(solver: A) -> Self {
        ContractChecked {
            inner: solver,
            #[cfg(debug_assertions)]
            finalized: false,
        }
    }

    /// Unwrap the inner solver.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: StreamingSetCover> StreamingSetCover for ContractChecked<A> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn process_edge(&mut self, e: Edge) {
        #[cfg(debug_assertions)]
        debug_assert!(
            !self.finalized,
            "protocol violation: process_edge after finalize ({})",
            self.inner.name()
        );
        self.inner.process_edge(e);
    }

    fn finalize(&mut self) -> Cover {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                !self.finalized,
                "protocol violation: finalize called twice ({})",
                self.inner.name()
            );
            self.finalized = true;
        }
        self.inner.finalize()
    }

    fn space(&self) -> SpaceReport {
        self.inner.space()
    }
}

/// Drive `solver` over `stream` to completion.
pub fn run_streaming<A: StreamingSetCover, S: EdgeStream>(solver: A, stream: S) -> RunOutcome {
    run_streaming_with(solver, stream, NoopRecorder)
}

/// [`run_streaming`] with an instrumentation sink: the driver brackets
/// the run in a [`Metric::TrialSpan`] and records the edges it fed the
/// solver. The solver's own instrumentation is attached separately (via
/// its `with_recorder` constructor) — the two can share one
/// [`crate::obs::MetricsRecorder`] only sequentially, so callers
/// typically lend the driver a second recorder and merge snapshots.
pub fn run_streaming_with<A, S, R>(solver: A, mut stream: S, mut rec: R) -> RunOutcome
where
    A: StreamingSetCover,
    S: EdgeStream,
    R: Recorder,
{
    let mut solver = ContractChecked::new(solver);
    rec.span_enter(Metric::TrialSpan);
    let start = Instant::now();
    let mut edges = 0usize;
    while let Some(e) = stream.next_edge() {
        solver.process_edge(e);
        edges += 1;
    }
    let cover = solver.finalize();
    rec.counter(Metric::DriverEdges, edges as u64);
    rec.span_exit(Metric::TrialSpan);
    RunOutcome {
        algorithm: solver.name(),
        cover,
        space: solver.space(),
        edges_processed: edges,
        elapsed: start.elapsed(),
    }
}

/// Drive `solver` over an edge slice (convenience for replayed streams).
pub fn run_on_edges<A: StreamingSetCover>(solver: A, edges: &[Edge]) -> RunOutcome {
    let mut solver = ContractChecked::new(solver);
    let start = Instant::now();
    for &e in edges {
        solver.process_edge(e);
    }
    let cover = solver.finalize();
    RunOutcome {
        algorithm: solver.name(),
        cover,
        space: solver.space(),
        edges_processed: edges.len(),
        elapsed: start.elapsed(),
    }
}

/// The result of a guarded run: the solver outcome plus what the
/// ingestion guard saw and did. `run.space` already merges the guard's
/// footprint (charged to [`crate::space::SpaceComponent::Guard`]) with
/// the solver's.
#[derive(Debug, Clone)]
pub struct GuardedOutcome {
    /// The solver's outcome over the guarded (validated) stream.
    pub run: RunOutcome,
    /// Ingestion counters: `edges_ok` / `edges_repaired` /
    /// `edges_rejected` and the anomaly breakdown.
    pub guard: GuardReport,
}

/// Drive `solver` over `stream` through a [`GuardedStream`] with policy
/// `cfg`, for an instance with `m` sets and `n` elements.
///
/// Under [`crate::stream::guard::GuardPolicy::Strict`] the first contract
/// violation aborts the run with a positioned [`StreamError`] — the
/// solver is dropped unfinalized. Under `Repair`/`Observe` the run always
/// completes and the guard's counters land in
/// [`GuardedOutcome::guard`].
pub fn run_guarded<A: StreamingSetCover, S: EdgeStream>(
    solver: A,
    stream: S,
    m: usize,
    n: usize,
    cfg: GuardConfig,
) -> Result<GuardedOutcome, StreamError> {
    run_guarded_with(solver, stream, m, n, cfg, NoopRecorder)
}

/// [`run_guarded`] with an instrumentation sink attached to the
/// **guard**: violations are counted by kind
/// ([`Metric::GuardDuplicates`], [`Metric::GuardSetOutOfRange`], ...)
/// and by policy outcome ([`Metric::GuardRepaired`] /
/// [`Metric::GuardRejected`] / [`Metric::GuardFailed`]), with a
/// positioned trace event per violation. The driver additionally records
/// [`Metric::DriverEdges`] and the [`Metric::TrialSpan`] wall clock.
pub fn run_guarded_with<A, S, R>(
    solver: A,
    stream: S,
    m: usize,
    n: usize,
    cfg: GuardConfig,
    mut rec: R,
) -> Result<GuardedOutcome, StreamError>
where
    A: StreamingSetCover,
    S: EdgeStream,
    R: Recorder,
{
    let mut solver = ContractChecked::new(solver);
    rec.span_enter(Metric::TrialSpan);
    let mut guard = GuardedStream::new(stream, m, n, cfg).with_recorder(&mut rec);
    let start = Instant::now();
    let mut edges = 0usize;
    let failure = loop {
        match guard.try_next_edge() {
            Ok(Some(e)) => {
                solver.process_edge(e);
                edges += 1;
            }
            Ok(None) => break None,
            Err(e) => break Some(e),
        }
    };
    let elapsed = start.elapsed();
    let (space_guard, report) = (guard.space(), guard.report());
    drop(guard); // returns the borrow of `rec`
    rec.counter(Metric::DriverEdges, edges as u64);
    rec.span_exit(Metric::TrialSpan);
    if let Some(e) = failure {
        return Err(e);
    }
    let cover = solver.finalize();
    let space = solver.space().merged(&space_guard);
    Ok(GuardedOutcome {
        run: RunOutcome {
            algorithm: solver.name(),
            cover,
            space,
            edges_processed: edges,
            elapsed,
        },
        guard: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::PartialCertificate;
    use crate::ids::{ElemId, SetId};
    use crate::instance::InstanceBuilder;
    use crate::stream::{stream_of, StreamOrder};

    /// A toy solver: remembers the first set seen for each element and
    /// patches everything — the "trivial" baseline.
    struct FirstSeen {
        first: Vec<Option<SetId>>,
    }

    impl FirstSeen {
        fn new(n: usize) -> Self {
            FirstSeen {
                first: vec![None; n],
            }
        }
    }

    impl StreamingSetCover for FirstSeen {
        fn name(&self) -> &'static str {
            "first-seen"
        }
        fn process_edge(&mut self, e: Edge) {
            let slot = &mut self.first[e.elem.index()];
            if slot.is_none() {
                *slot = Some(e.set);
            }
        }
        fn finalize(&mut self) -> Cover {
            let pc = PartialCertificate::new(self.first.len());
            let first = std::mem::take(&mut self.first);
            let cert = pc.finish_with(|u| first[u.index()]);
            Cover::from_certificate(cert)
        }
        fn space(&self) -> SpaceReport {
            SpaceReport::empty()
        }
    }

    #[test]
    fn driver_runs_to_completion_and_verifies() {
        let mut b = InstanceBuilder::new(3, 4);
        b.add_set_elems(0, [0, 1]);
        b.add_set_elems(1, [1, 2]);
        b.add_set_elems(2, [2, 3]);
        let inst = b.build().unwrap();

        for order in [
            StreamOrder::SetArrival,
            StreamOrder::Uniform(5),
            StreamOrder::Interleaved,
        ] {
            let out = run_streaming(FirstSeen::new(inst.n()), stream_of(&inst, order));
            assert_eq!(out.edges_processed, inst.num_edges());
            out.cover.verify(&inst).unwrap();
            assert_eq!(out.algorithm, "first-seen");
        }
    }

    #[test]
    fn run_on_edges_matches_stream_run() {
        let mut b = InstanceBuilder::new(2, 2);
        b.add_set_elems(0, [0]);
        b.add_set_elems(1, [1]);
        let inst = b.build().unwrap();
        let edges = inst.edge_vec();
        let a = run_on_edges(FirstSeen::new(inst.n()), &edges);
        let b2 = run_streaming(
            FirstSeen::new(inst.n()),
            stream_of(&inst, StreamOrder::SetArrival),
        );
        assert_eq!(a.cover, b2.cover);
        assert_eq!(a.edges_processed, b2.edges_processed);
    }

    #[test]
    fn outcome_reports_throughput() {
        let mut b = InstanceBuilder::new(1, 1);
        b.add_edge(SetId(0), ElemId(0));
        let inst = b.build().unwrap();
        let out = run_on_edges(FirstSeen::new(1), &inst.edge_vec());
        let tp = out.edges_per_sec();
        assert!(tp.is_nan() || tp > 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "protocol violation: process_edge after finalize")]
    fn contract_check_rejects_edges_after_finalize() {
        let mut solver = ContractChecked::new(FirstSeen::new(1));
        solver.process_edge(Edge {
            set: SetId(0),
            elem: ElemId(0),
        });
        let _ = solver.finalize();
        solver.process_edge(Edge {
            set: SetId(0),
            elem: ElemId(0),
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "protocol violation: finalize called twice")]
    fn contract_check_rejects_double_finalize() {
        let mut solver = ContractChecked::new(FirstSeen::new(1));
        solver.process_edge(Edge {
            set: SetId(0),
            elem: ElemId(0),
        });
        let _ = solver.finalize();
        let _ = solver.finalize();
    }

    #[test]
    fn run_guarded_repairs_and_merges_space() {
        use crate::stream::chaos::{ChaosConfig, ChaosStream, FaultKind};
        use crate::stream::guard::GuardConfig;
        use crate::stream::VecStream;

        let mut b = InstanceBuilder::new(3, 4);
        b.add_set_elems(0, [0, 1]);
        b.add_set_elems(1, [1, 2]);
        b.add_set_elems(2, [2, 3]);
        let inst = b.build().unwrap();
        let edges = inst.edge_vec();

        let chaos = ChaosStream::new(
            VecStream::new(edges),
            inst.m(),
            inst.n(),
            ChaosConfig::uniform(FaultKind::DuplicateAdjacent, 0.4, 13),
        );
        let out = run_guarded(
            FirstSeen::new(inst.n()),
            chaos,
            inst.m(),
            inst.n(),
            GuardConfig::repair(),
        )
        .expect("repair never aborts");
        out.run.cover.verify(&inst).unwrap();
        // Every injected duplicate is removed, either as a windowed dedup
        // hit or by the declared-length clamp draining the excess.
        assert!(out.guard.edges_repaired > 0);
        assert!(out.guard.edges_repaired >= out.guard.duplicates);
        assert_eq!(out.guard.edges_ok, inst.num_edges());
        assert!(
            out.run.space.peak_of(crate::space::SpaceComponent::Guard) > 0,
            "guard footprint must be merged into the outcome"
        );
    }

    #[test]
    fn run_guarded_strict_positions_the_failure() {
        use crate::stream::guard::GuardConfig;
        use crate::stream::VecStream;

        let edges = vec![
            Edge {
                set: SetId(0),
                elem: ElemId(0),
            },
            Edge {
                set: SetId(0),
                elem: ElemId(0),
            },
        ];
        let err = run_guarded(
            FirstSeen::new(1),
            VecStream::new(edges),
            1,
            1,
            GuardConfig::strict(),
        )
        .unwrap_err();
        assert_eq!(err.position(), Some(1));
    }

    #[test]
    fn sub_resolution_runs_report_nan_not_zero() {
        let out = RunOutcome {
            algorithm: "x",
            cover: Cover::from_certificate(PartialCertificate::new(0).finish_with(|_| None)),
            space: SpaceReport::empty(),
            edges_processed: 100,
            elapsed: Duration::ZERO,
        };
        assert!(out.edges_per_sec().is_nan());
    }
}
