//! Solver traits and the streaming driver.
//!
//! All one-pass algorithms implement [`StreamingSetCover`]: they are
//! constructed with the instance's public parameters (`m`, `n`, and the
//! stream length `N` — §4.1 argues knowing `N` is w.l.o.g. via parallel
//! guessing, which [`crate::solver`]-level wrappers in `setcover-algos`
//! implement), consume edges one at a time, and finalize into a
//! [`Cover`].
//!
//! Offline baselines (greedy, exact-by-construction references) implement
//! [`OfflineSetCover`] and see the whole instance.

use std::time::{Duration, Instant};

use crate::cover::Cover;
use crate::instance::{Edge, SetCoverInstance};
use crate::space::SpaceReport;
use crate::stream::EdgeStream;

/// A one-pass edge-arrival streaming Set Cover algorithm.
pub trait StreamingSetCover {
    /// Stable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Consume the next edge of the stream.
    fn process_edge(&mut self, e: Edge);

    /// The stream has ended: run post-processing (patching) and emit the
    /// cover with its certificate.
    fn finalize(&mut self) -> Cover;

    /// Space accounting for the run so far (peak live words).
    fn space(&self) -> SpaceReport;
}

/// A multi-pass edge-arrival streaming Set Cover algorithm.
///
/// The paper's related work (§1, [Bateni–Esfandiari–Mirrokni]) trades
/// passes for approximation: `p` passes over the same stream admit
/// `O(p·n^{1/p})`-style factors. Implementors see the stream `passes()`
/// times; [`run_multipass`] drives the loop and allows early exit.
pub trait MultiPassSetCover {
    /// Stable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Maximum number of passes the algorithm may take.
    fn max_passes(&self) -> usize;

    /// Called before pass `pass` (0-based). Return `false` to stop early
    /// (e.g. everything is already covered).
    fn begin_pass(&mut self, pass: usize) -> bool;

    /// Consume the next edge of the current pass.
    fn process_edge(&mut self, e: Edge);

    /// All passes done (or stopped early): emit the cover.
    fn finalize(&mut self) -> Cover;

    /// Space accounting (peak live words across all passes).
    fn space(&self) -> SpaceReport;
}

/// Outcome of a multi-pass run.
#[derive(Debug, Clone)]
pub struct MultiPassOutcome {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// The produced cover.
    pub cover: Cover,
    /// Peak space accounting.
    pub space: SpaceReport,
    /// Passes actually performed.
    pub passes_used: usize,
    /// Total edges consumed across all passes.
    pub edges_processed: usize,
    /// Wall-clock time over all passes.
    pub elapsed: Duration,
}

/// Drive a multi-pass solver over a replayable edge sequence.
pub fn run_multipass<A: MultiPassSetCover>(mut solver: A, edges: &[Edge]) -> MultiPassOutcome {
    let start = Instant::now();
    let mut passes_used = 0usize;
    let mut processed = 0usize;
    for pass in 0..solver.max_passes() {
        if !solver.begin_pass(pass) {
            break;
        }
        passes_used += 1;
        for &e in edges {
            solver.process_edge(e);
        }
        processed += edges.len();
    }
    let cover = solver.finalize();
    MultiPassOutcome {
        algorithm: solver.name(),
        cover,
        space: solver.space(),
        passes_used,
        edges_processed: processed,
        elapsed: start.elapsed(),
    }
}

/// Drive a multi-pass solver with a **fresh stream per pass** instead of a
/// replay buffer: `make_stream` is called once per pass and must yield the
/// same edge sequence each time (lazy [`crate::stream::stream_of`] streams
/// do — they are deterministic in the order's seed). This is the
/// zero-materialization analogue of [`run_multipass`].
pub fn run_multipass_streams<A, S, F>(mut solver: A, mut make_stream: F) -> MultiPassOutcome
where
    A: MultiPassSetCover,
    S: EdgeStream,
    F: FnMut() -> S,
{
    let start = Instant::now();
    let mut passes_used = 0usize;
    let mut processed = 0usize;
    for pass in 0..solver.max_passes() {
        if !solver.begin_pass(pass) {
            break;
        }
        passes_used += 1;
        let mut stream = make_stream();
        while let Some(e) = stream.next_edge() {
            solver.process_edge(e);
            processed += 1;
        }
    }
    let cover = solver.finalize();
    MultiPassOutcome {
        algorithm: solver.name(),
        cover,
        space: solver.space(),
        passes_used,
        edges_processed: processed,
        elapsed: start.elapsed(),
    }
}

/// An offline (whole-instance) Set Cover algorithm.
pub trait OfflineSetCover {
    /// Stable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Solve the instance.
    fn solve(&self, inst: &SetCoverInstance) -> Cover;
}

/// The result of driving a streaming solver over a stream.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// The produced cover (verify with [`Cover::verify`]).
    pub cover: Cover,
    /// Peak space accounting.
    pub space: SpaceReport,
    /// Number of edges consumed.
    pub edges_processed: usize,
    /// Wall-clock time spent in `process_edge` + `finalize`.
    pub elapsed: Duration,
}

impl RunOutcome {
    /// Throughput in edges per second.
    ///
    /// Returns [`f64::NAN`] when the run was below timer resolution: a
    /// `0.0` here would silently drag down throughput aggregates over
    /// small instances, whereas NaN forces aggregators to skip the run
    /// (see `Summary`'s NaN handling in `setcover-bench`).
    pub fn edges_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            f64::NAN
        } else {
            self.edges_processed as f64 / secs
        }
    }
}

/// Drive `solver` over `stream` to completion.
pub fn run_streaming<A: StreamingSetCover, S: EdgeStream>(
    mut solver: A,
    mut stream: S,
) -> RunOutcome {
    let start = Instant::now();
    let mut edges = 0usize;
    while let Some(e) = stream.next_edge() {
        solver.process_edge(e);
        edges += 1;
    }
    let cover = solver.finalize();
    RunOutcome {
        algorithm: solver.name(),
        cover,
        space: solver.space(),
        edges_processed: edges,
        elapsed: start.elapsed(),
    }
}

/// Drive `solver` over an edge slice (convenience for replayed streams).
pub fn run_on_edges<A: StreamingSetCover>(mut solver: A, edges: &[Edge]) -> RunOutcome {
    let start = Instant::now();
    for &e in edges {
        solver.process_edge(e);
    }
    let cover = solver.finalize();
    RunOutcome {
        algorithm: solver.name(),
        cover,
        space: solver.space(),
        edges_processed: edges.len(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::PartialCertificate;
    use crate::ids::{ElemId, SetId};
    use crate::instance::InstanceBuilder;
    use crate::stream::{stream_of, StreamOrder};

    /// A toy solver: remembers the first set seen for each element and
    /// patches everything — the "trivial" baseline.
    struct FirstSeen {
        first: Vec<Option<SetId>>,
    }

    impl FirstSeen {
        fn new(n: usize) -> Self {
            FirstSeen {
                first: vec![None; n],
            }
        }
    }

    impl StreamingSetCover for FirstSeen {
        fn name(&self) -> &'static str {
            "first-seen"
        }
        fn process_edge(&mut self, e: Edge) {
            let slot = &mut self.first[e.elem.index()];
            if slot.is_none() {
                *slot = Some(e.set);
            }
        }
        fn finalize(&mut self) -> Cover {
            let pc = PartialCertificate::new(self.first.len());
            let first = std::mem::take(&mut self.first);
            let cert = pc.finish_with(|u| first[u.index()]);
            Cover::from_certificate(cert)
        }
        fn space(&self) -> SpaceReport {
            SpaceReport::empty()
        }
    }

    #[test]
    fn driver_runs_to_completion_and_verifies() {
        let mut b = InstanceBuilder::new(3, 4);
        b.add_set_elems(0, [0, 1]);
        b.add_set_elems(1, [1, 2]);
        b.add_set_elems(2, [2, 3]);
        let inst = b.build().unwrap();

        for order in [
            StreamOrder::SetArrival,
            StreamOrder::Uniform(5),
            StreamOrder::Interleaved,
        ] {
            let out = run_streaming(FirstSeen::new(inst.n()), stream_of(&inst, order));
            assert_eq!(out.edges_processed, inst.num_edges());
            out.cover.verify(&inst).unwrap();
            assert_eq!(out.algorithm, "first-seen");
        }
    }

    #[test]
    fn run_on_edges_matches_stream_run() {
        let mut b = InstanceBuilder::new(2, 2);
        b.add_set_elems(0, [0]);
        b.add_set_elems(1, [1]);
        let inst = b.build().unwrap();
        let edges = inst.edge_vec();
        let a = run_on_edges(FirstSeen::new(inst.n()), &edges);
        let b2 = run_streaming(
            FirstSeen::new(inst.n()),
            stream_of(&inst, StreamOrder::SetArrival),
        );
        assert_eq!(a.cover, b2.cover);
        assert_eq!(a.edges_processed, b2.edges_processed);
    }

    #[test]
    fn outcome_reports_throughput() {
        let mut b = InstanceBuilder::new(1, 1);
        b.add_edge(SetId(0), ElemId(0));
        let inst = b.build().unwrap();
        let out = run_on_edges(FirstSeen::new(1), &inst.edge_vec());
        let tp = out.edges_per_sec();
        assert!(tp.is_nan() || tp > 0.0);
    }

    #[test]
    fn sub_resolution_runs_report_nan_not_zero() {
        let out = RunOutcome {
            algorithm: "x",
            cover: Cover::from_certificate(PartialCertificate::new(0).finish_with(|_| None)),
            space: SpaceReport::empty(),
            edges_processed: 100,
            elapsed: Duration::ZERO,
        };
        assert!(out.edges_per_sec().is_nan());
    }
}
