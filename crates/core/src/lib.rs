//! # setcover-core
//!
//! Core types for the **one-pass edge-arrival streaming Set Cover** problem,
//! as studied by Khanna, Konrad and Alexandru,
//! *"Set Cover in the One-pass Edge-arrival Streaming Model"*, PODS 2023.
//!
//! In this model a Set Cover instance over a universe `U` of size `n` and a
//! family `S = {S_1, ..., S_m}` of `m` subsets of `U` arrives as a stream of
//! *edges* `(S, u)`, each indicating that element `u` is contained in set
//! `S`. Equivalently, the instance is a bipartite graph `G = (S, U, E)` with
//! `(S_i, u) ∈ E` iff `u ∈ S_i` (paper §2), and the stream is a permutation
//! of `E`.
//!
//! This crate provides the *substrate* every algorithm in the companion
//! crates builds on:
//!
//! * [`instance::SetCoverInstance`] — an immutable, validated instance with
//!   its bipartite representation;
//! * [`stream`] — edge streams and arrival-order adapters (adversarial
//!   permutations, uniformly random order, set-arrival emulation, ...);
//! * [`cover::Cover`] — a solution: a subfamily of sets plus the *cover
//!   certificate* `C : U → T` required by the problem definition, and
//!   verification against the instance;
//! * [`solver`] — the [`solver::StreamingSetCover`] trait implemented by all
//!   one-pass algorithms, and drivers that run a solver over a stream;
//! * [`space::SpaceMeter`] — machine-word space accounting used to validate
//!   the paper's space bounds empirically;
//! * [`rng`] — deterministic, seedable randomness including the `Coin(p)`
//!   primitive of Algorithm 2;
//! * [`math`] — integer/floating helpers (`isqrt`, `ilog2`, threshold
//!   schedules) shared by the algorithm crates;
//! * [`io`] — plain-text instance (`.sc`) and ordered-stream (`.scs`)
//!   formats for exchanging workloads with other implementations.
//!
//! ## Conventions
//!
//! * Elements and sets are dense `u32` indices wrapped in newtypes
//!   ([`ids::ElemId`], [`ids::SetId`]).
//! * Every element is contained in at least one set (paper §2 assumes
//!   feasibility); [`instance::InstanceBuilder::build`] enforces this.
//! * "Space" is counted in machine words of live algorithmic state; see
//!   [`space`] for the exact accounting rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod error;
pub mod ids;
pub mod instance;
pub mod io;
pub mod math;
pub mod obs;
pub mod rng;
pub mod solver;
pub mod space;
pub mod stream;

pub use cover::{Cover, CoverStats};
pub use error::{CoreError, StreamError};
pub use ids::{ElemId, SetId};
pub use instance::{Edge, InstanceBuilder, InstanceStats, SetCoverInstance};
pub use obs::{Metric, MetricsRecorder, MetricsSnapshot, NoopRecorder, Recorder, TraceEvent};
pub use solver::{
    run_guarded, run_guarded_with, run_multipass, run_streaming, run_streaming_with,
    ContractChecked, GuardedOutcome, MultiPassOutcome, MultiPassSetCover, OfflineSetCover,
    RunOutcome, StreamingSetCover,
};
pub use space::{SpaceMeter, SpaceReport};
pub use stream::chaos::{ChaosConfig, ChaosStream, FaultKind, FaultLog, FaultRecord};
pub use stream::guard::{GuardConfig, GuardPolicy, GuardReport, GuardedStream};
pub use stream::{EdgeStream, StreamOrder};
