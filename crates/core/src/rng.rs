//! Deterministic, seedable randomness.
//!
//! Every randomized component in this workspace (algorithms, generators,
//! order adapters) takes an explicit `u64` seed so that experiments and
//! statistical tests are exactly reproducible. Independent sub-streams of
//! randomness are derived with [`derive_seed`] (a SplitMix64 mix), which
//! avoids correlated streams when one seed fans out to many components —
//! e.g. Algorithm 1's parallel `N`-guessing runs.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A fast, seeded PRNG. `SmallRng` is not cryptographic but is more than
/// adequate for Bernoulli sampling and shuffles, and is fast enough to sit
/// on the per-edge hot path.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive an independent seed from `(seed, salt)` using SplitMix64 output
/// mixing. Distinct salts yield (for all practical purposes) independent
/// streams.
pub fn derive_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `Coin(p)` primitive of Algorithm 2 (paper §5): evaluates to `true`
/// with probability `p` and `false` with probability `1 - p`.
///
/// Probabilities outside `[0, 1]` are clamped — the paper's inclusion
/// probabilities (e.g. `p_ℓ = (α²/n)^ℓ · α/m` or `2^i √n / m`) routinely
/// exceed 1, which simply means "include always".
#[inline]
pub fn coin<R: RngExt>(rng: &mut R, p: f64) -> bool {
    if p >= 1.0 {
        true
    } else if p <= 0.0 {
        false
    } else {
        rng.random::<f64>() < p
    }
}

/// Geometric-skip Bernoulli sampling: iterate the hit indices of `len`
/// independent `Coin(p)` flips in `O(expected hits)` time instead of `len`
/// RNG draws.
///
/// The number of failures before the next success of a Bernoulli(`p`)
/// process is geometric, so each hit is found with a single uniform draw
/// via inverse-transform sampling: `skip = ⌊ln(1−u) / ln(1−p)⌋`. The hit
/// *marginals* are exactly Bernoulli(`p`) per index, but the consumed RNG
/// stream differs from flipping `len` individual coins — callers switching
/// from a flip loop to this sampler change their seeded trajectories (one
/// draw per hit instead of one per index).
///
/// Edge cases mirror [`coin`]: `p >= 1` yields every index without
/// consuming any RNG draws; `p <= 0` yields nothing (also draw-free).
pub fn bernoulli_hits<'r, R: RngExt>(
    rng: &'r mut R,
    len: usize,
    p: f64,
) -> impl Iterator<Item = usize> + 'r {
    // ln(1-p) < 0 for p in (0,1); precompute once per call.
    let log_q = if p > 0.0 && p < 1.0 {
        (1.0 - p).ln()
    } else {
        f64::NAN
    };
    let mut next = 0usize;
    std::iter::from_fn(move || {
        if next >= len {
            return None;
        }
        if p >= 1.0 {
            let i = next;
            next += 1;
            return Some(i);
        }
        if p <= 0.0 {
            next = len;
            return None;
        }
        // Inverse-transform the geometric skip. `1 - u` is in (0, 1] so
        // the log is finite or -inf; -inf / log_q = +inf floors to a skip
        // past `len`, terminating cleanly.
        let u: f64 = rng.random();
        let skip = ((1.0 - u).ln() / log_q).floor();
        if !skip.is_finite() || skip >= (len - next) as f64 {
            next = len;
            return None;
        }
        let i = next + skip as usize;
        next = i + 1;
        Some(i)
    })
}

/// A counting wrapper around [`coin`] that records how many flips were made,
/// used by tests that validate sampling rates.
#[derive(Debug)]
pub struct CountingCoin {
    rng: SmallRng,
    /// Number of flips performed.
    pub flips: u64,
    /// Number of flips that came up `true`.
    pub heads: u64,
}

impl CountingCoin {
    /// Create a counting coin from a seed.
    pub fn new(seed: u64) -> Self {
        CountingCoin {
            rng: seeded_rng(seed),
            flips: 0,
            heads: 0,
        }
    }

    /// Flip a `p`-biased coin.
    pub fn flip(&mut self, p: f64) -> bool {
        self.flips += 1;
        let h = coin(&mut self.rng, p);
        if h {
            self.heads += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(1);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn derive_seed_separates_salts() {
        let s = 42;
        assert_ne!(derive_seed(s, 0), derive_seed(s, 1));
        assert_ne!(derive_seed(s, 1), derive_seed(s, 2));
        // deterministic
        assert_eq!(derive_seed(s, 7), derive_seed(s, 7));
    }

    #[test]
    fn coin_clamps_probabilities() {
        let mut rng = seeded_rng(3);
        assert!(coin(&mut rng, 1.5));
        assert!(coin(&mut rng, 1.0));
        assert!(!coin(&mut rng, 0.0));
        assert!(!coin(&mut rng, -0.3));
    }

    #[test]
    fn coin_rate_is_approximately_p() {
        let mut c = CountingCoin::new(99);
        let trials = 200_000;
        for _ in 0..trials {
            c.flip(0.3);
        }
        let rate = c.heads as f64 / c.flips as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} far from 0.3");
    }

    #[test]
    fn bernoulli_hits_edge_probabilities_consume_no_randomness() {
        let mut a = seeded_rng(5);
        let all: Vec<usize> = bernoulli_hits(&mut a, 7, 1.5).collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6]);
        let none: Vec<usize> = bernoulli_hits(&mut a, 7, -0.1).collect();
        assert!(none.is_empty());
        // The RNG state is untouched for p outside (0, 1): it must match a
        // fresh RNG with the same seed, exactly like `coin`'s early returns.
        let mut b = seeded_rng(5);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn bernoulli_hits_is_deterministic_and_sorted() {
        let mut a = seeded_rng(11);
        let mut b = seeded_rng(11);
        let ha: Vec<usize> = bernoulli_hits(&mut a, 10_000, 0.01).collect();
        let hb: Vec<usize> = bernoulli_hits(&mut b, 10_000, 0.01).collect();
        assert_eq!(ha, hb);
        assert!(ha.windows(2).all(|w| w[0] < w[1]), "hits must be ascending");
        assert!(ha.iter().all(|&i| i < 10_000));
    }

    #[test]
    fn bernoulli_hits_rate_is_approximately_p() {
        // Marginal hit rate over many independent runs ≈ p.
        let len = 1_000;
        let p = 0.05;
        let mut total = 0usize;
        let runs = 400;
        for seed in 0..runs {
            let mut rng = seeded_rng(seed);
            total += bernoulli_hits(&mut rng, len, p).count();
        }
        let rate = total as f64 / (len * runs as usize) as f64;
        assert!((rate - p).abs() < 0.005, "rate {rate} far from {p}");
    }

    #[test]
    fn bernoulli_hits_cost_scales_with_hits_not_len() {
        // O(expected hits): a sparse sample over a huge range terminates
        // immediately (this would spin for minutes with per-index flips).
        let mut rng = seeded_rng(2);
        let hits = bernoulli_hits(&mut rng, 1_000_000_000, 1e-8).count();
        assert!(hits < 100, "way too many hits: {hits}");
    }

    #[test]
    fn counting_coin_counts() {
        let mut c = CountingCoin::new(1);
        for _ in 0..10 {
            c.flip(1.0);
        }
        for _ in 0..5 {
            c.flip(0.0);
        }
        assert_eq!(c.flips, 15);
        assert_eq!(c.heads, 10);
    }
}
