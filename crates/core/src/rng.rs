//! Deterministic, seedable randomness.
//!
//! Every randomized component in this workspace (algorithms, generators,
//! order adapters) takes an explicit `u64` seed so that experiments and
//! statistical tests are exactly reproducible. Independent sub-streams of
//! randomness are derived with [`derive_seed`] (a SplitMix64 mix), which
//! avoids correlated streams when one seed fans out to many components —
//! e.g. Algorithm 1's parallel `N`-guessing runs.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A fast, seeded PRNG. `SmallRng` is not cryptographic but is more than
/// adequate for Bernoulli sampling and shuffles, and is fast enough to sit
/// on the per-edge hot path.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive an independent seed from `(seed, salt)` using SplitMix64 output
/// mixing. Distinct salts yield (for all practical purposes) independent
/// streams.
pub fn derive_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `Coin(p)` primitive of Algorithm 2 (paper §5): evaluates to `true`
/// with probability `p` and `false` with probability `1 - p`.
///
/// Probabilities outside `[0, 1]` are clamped — the paper's inclusion
/// probabilities (e.g. `p_ℓ = (α²/n)^ℓ · α/m` or `2^i √n / m`) routinely
/// exceed 1, which simply means "include always".
#[inline]
pub fn coin<R: RngExt>(rng: &mut R, p: f64) -> bool {
    if p >= 1.0 {
        true
    } else if p <= 0.0 {
        false
    } else {
        rng.random::<f64>() < p
    }
}

/// A counting wrapper around [`coin`] that records how many flips were made,
/// used by tests that validate sampling rates.
#[derive(Debug)]
pub struct CountingCoin {
    rng: SmallRng,
    /// Number of flips performed.
    pub flips: u64,
    /// Number of flips that came up `true`.
    pub heads: u64,
}

impl CountingCoin {
    /// Create a counting coin from a seed.
    pub fn new(seed: u64) -> Self {
        CountingCoin {
            rng: seeded_rng(seed),
            flips: 0,
            heads: 0,
        }
    }

    /// Flip a `p`-biased coin.
    pub fn flip(&mut self, p: f64) -> bool {
        self.flips += 1;
        let h = coin(&mut self.rng, p);
        if h {
            self.heads += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(1);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn derive_seed_separates_salts() {
        let s = 42;
        assert_ne!(derive_seed(s, 0), derive_seed(s, 1));
        assert_ne!(derive_seed(s, 1), derive_seed(s, 2));
        // deterministic
        assert_eq!(derive_seed(s, 7), derive_seed(s, 7));
    }

    #[test]
    fn coin_clamps_probabilities() {
        let mut rng = seeded_rng(3);
        assert!(coin(&mut rng, 1.5));
        assert!(coin(&mut rng, 1.0));
        assert!(!coin(&mut rng, 0.0));
        assert!(!coin(&mut rng, -0.3));
    }

    #[test]
    fn coin_rate_is_approximately_p() {
        let mut c = CountingCoin::new(99);
        let trials = 200_000;
        for _ in 0..trials {
            c.flip(0.3);
        }
        let rate = c.heads as f64 / c.flips as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} far from 0.3");
    }

    #[test]
    fn counting_coin_counts() {
        let mut c = CountingCoin::new(1);
        for _ in 0..10 {
            c.flip(1.0);
        }
        for _ in 0..5 {
            c.flip(0.0);
        }
        assert_eq!(c.flips, 15);
        assert_eq!(c.heads, 10);
    }
}
