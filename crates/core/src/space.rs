//! Machine-word space accounting.
//!
//! The paper's results are space bounds — Õ(m), Õ(m/√n), Õ(mn/α²) words —
//! so the reproduction must *measure* space, not just wall-clock time.
//!
//! ## Accounting rules
//!
//! * The unit is one machine word (one `O(log(mn))`-bit register in the
//!   paper's RAM model): a counter, an id, a level, a map entry component.
//! * Algorithms charge the meter when live state grows and release when it
//!   shrinks; [`SpaceMeter`] tracks the peak.
//! * A hash-map entry of `k` word-sized fields is charged `k + 1` words
//!   (one word of bucket overhead) — close enough to compare asymptotics.
//! * Per the paper's conventions, the *output* (the solution `Sol` of up to
//!   `Õ(√n)` or `n` sets, and the certificate) and the per-element arrays
//!   explicitly allowed by the algorithms (mark bits `O(n)`, first-set map
//!   `Õ(n)`) are charged by the algorithms that use them — the interesting
//!   comparisons (Õ(m) vs Õ(m/√n) vs Õ(mn/α²)) are all about the per-set
//!   state, which dominates in the regime `m = Ω̃(n²)`.
//!
//! Components can be labelled so experiment reports can break the peak down
//! by data structure.

use std::fmt;

/// A labelled component of an algorithm's live state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpaceComponent {
    /// Per-set counters or degrees (e.g. KK's uncovered-degrees, Algorithm
    /// 1's per-batch counters `C[S]`).
    Counters,
    /// Level maps (Algorithm 2's `L`).
    Levels,
    /// Marked/covered element bookkeeping (`O(n)` bits ≈ `n/64` words).
    Marks,
    /// First-set / patching map `R(u)` (`Õ(n)`).
    FirstSet,
    /// The solution under construction and certificates.
    Solution,
    /// Tracked special sets (`Q̃`, `Q̃'`) of Algorithm 1.
    TrackedSets,
    /// Tracked edges (`T`) of Algorithm 1.
    TrackedEdges,
    /// Stored sub-instance edges (element sampling) or whole sets
    /// (set-arrival baselines).
    StoredEdges,
    /// Ingestion-guard state (the dedup window of
    /// [`crate::stream::guard::GuardedStream`] plus its counters) —
    /// charged so guarding never silently breaks the paper's space bounds.
    Guard,
    /// Anything else.
    Other,
}

impl SpaceComponent {
    /// Number of components (array-table size for [`SpaceMeter`]).
    pub const COUNT: usize = 10;

    /// All components, for report iteration.
    pub const ALL: [SpaceComponent; SpaceComponent::COUNT] = [
        SpaceComponent::Counters,
        SpaceComponent::Levels,
        SpaceComponent::Marks,
        SpaceComponent::FirstSet,
        SpaceComponent::Solution,
        SpaceComponent::TrackedSets,
        SpaceComponent::TrackedEdges,
        SpaceComponent::StoredEdges,
        SpaceComponent::Guard,
        SpaceComponent::Other,
    ];

    /// Stable short name.
    pub fn name(&self) -> &'static str {
        match self {
            SpaceComponent::Counters => "counters",
            SpaceComponent::Levels => "levels",
            SpaceComponent::Marks => "marks",
            SpaceComponent::FirstSet => "first-set",
            SpaceComponent::Solution => "solution",
            SpaceComponent::TrackedSets => "tracked-sets",
            SpaceComponent::TrackedEdges => "tracked-edges",
            SpaceComponent::StoredEdges => "stored-edges",
            SpaceComponent::Guard => "guard",
            SpaceComponent::Other => "other",
        }
    }

    fn idx(self) -> usize {
        match self {
            SpaceComponent::Counters => 0,
            SpaceComponent::Levels => 1,
            SpaceComponent::Marks => 2,
            SpaceComponent::FirstSet => 3,
            SpaceComponent::Solution => 4,
            SpaceComponent::TrackedSets => 5,
            SpaceComponent::TrackedEdges => 6,
            SpaceComponent::StoredEdges => 7,
            SpaceComponent::Guard => 8,
            SpaceComponent::Other => 9,
        }
    }
}

/// Tracks current and peak words of live algorithmic state, per component.
#[derive(Debug, Clone, Default)]
pub struct SpaceMeter {
    current: [usize; SpaceComponent::COUNT],
    peak_by_comp: [usize; SpaceComponent::COUNT],
    current_total: usize,
    peak_total: usize,
}

impl SpaceMeter {
    /// A fresh meter with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `words` words of state were allocated in `comp`.
    #[inline]
    pub fn charge(&mut self, comp: SpaceComponent, words: usize) {
        let i = comp.idx();
        self.current[i] += words;
        self.current_total += words;
        if self.current[i] > self.peak_by_comp[i] {
            self.peak_by_comp[i] = self.current[i];
        }
        if self.current_total > self.peak_total {
            self.peak_total = self.current_total;
        }
    }

    /// Record that `words` words of state in `comp` were freed.
    ///
    /// Releasing more than is held saturates at zero (and debug-asserts),
    /// so accounting bugs surface in tests without poisoning release runs.
    #[inline]
    pub fn release(&mut self, comp: SpaceComponent, words: usize) {
        let i = comp.idx();
        debug_assert!(
            self.current[i] >= words,
            "space underflow in {}",
            comp.name()
        );
        let w = words.min(self.current[i]);
        self.current[i] -= w;
        self.current_total -= w;
    }

    /// Set the absolute current usage of a component (charging or releasing
    /// the difference). Convenient for structures whose size is recomputed.
    pub fn set(&mut self, comp: SpaceComponent, words: usize) {
        let cur = self.current[comp.idx()];
        if words > cur {
            self.charge(comp, words - cur);
        } else {
            self.release(comp, cur - words);
        }
    }

    /// Current total live words.
    pub fn current_words(&self) -> usize {
        self.current_total
    }

    /// Current live words in one component.
    pub fn current_of(&self, comp: SpaceComponent) -> usize {
        self.current[comp.idx()]
    }

    /// Peak total live words observed so far.
    pub fn peak_words(&self) -> usize {
        self.peak_total
    }

    /// Freeze into a report.
    pub fn report(&self) -> SpaceReport {
        SpaceReport {
            peak_words: self.peak_total,
            peak_by_component: SpaceComponent::ALL
                .iter()
                .map(|c| (*c, self.peak_by_comp[c.idx()]))
                .filter(|(_, w)| *w > 0)
                .collect(),
        }
    }
}

/// Immutable space summary attached to a run outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceReport {
    /// Peak total live words over the run.
    pub peak_words: usize,
    /// Per-component peaks (components with zero usage omitted). Component
    /// peaks may not sum to `peak_words`: they can occur at different times.
    pub peak_by_component: Vec<(SpaceComponent, usize)>,
}

impl SpaceReport {
    /// An empty report (e.g. for offline baselines where space is not the
    /// quantity of interest).
    pub fn empty() -> Self {
        SpaceReport {
            peak_words: 0,
            peak_by_component: Vec::new(),
        }
    }

    /// Peak words excluding the components the paper grants "for free" in
    /// all algorithms (per-element `O(n)`/`Õ(n)` state: marks, first-set
    /// map, solution/certificate). This isolates the per-set state the
    /// theorems actually bound (Õ(m) vs Õ(m/√n) vs Õ(mn/α²)).
    pub fn algorithmic_peak_words(&self) -> usize {
        self.peak_by_component
            .iter()
            .filter(|(c, _)| {
                !matches!(
                    c,
                    SpaceComponent::Marks | SpaceComponent::FirstSet | SpaceComponent::Solution
                )
            })
            .map(|(_, w)| *w)
            .sum()
    }

    /// Combine two reports from structures that were live at the same time
    /// but metered separately (e.g. a solver plus the ingestion guard in
    /// front of it). Peaks are summed — the two peaks may occur at
    /// different instants, so the result is a safe upper bound on the true
    /// combined peak.
    pub fn merged(&self, other: &SpaceReport) -> SpaceReport {
        let mut by_comp: Vec<(SpaceComponent, usize)> = Vec::new();
        for c in SpaceComponent::ALL {
            let w = self.peak_of(c) + other.peak_of(c);
            if w > 0 {
                by_comp.push((c, w));
            }
        }
        SpaceReport {
            peak_words: self.peak_words + other.peak_words,
            peak_by_component: by_comp,
        }
    }

    /// Peak words recorded for one component (0 if absent).
    pub fn peak_of(&self, comp: SpaceComponent) -> usize {
        self.peak_by_component
            .iter()
            .find(|(c, _)| *c == comp)
            .map(|(_, w)| *w)
            .unwrap_or(0)
    }
}

impl fmt::Display for SpaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peak {} words (", self.peak_words)?;
        for (i, (c, w)) in self.peak_by_component.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name(), w)?;
        }
        write!(f, ")")
    }
}

/// Words needed for a bitset over `n` items (rounded up to whole words).
pub fn bitset_words(n: usize) -> usize {
    n.div_ceil(64)
}

/// Accounting cost of one hash-map entry holding `fields` word-sized values.
pub fn map_entry_words(fields: usize) -> usize {
    fields + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_tracks_peak() {
        let mut m = SpaceMeter::new();
        m.charge(SpaceComponent::Counters, 100);
        m.charge(SpaceComponent::Levels, 50);
        assert_eq!(m.current_words(), 150);
        assert_eq!(m.peak_words(), 150);
        m.release(SpaceComponent::Counters, 100);
        assert_eq!(m.current_words(), 50);
        assert_eq!(m.peak_words(), 150, "peak must persist");
        m.charge(SpaceComponent::Counters, 60);
        assert_eq!(m.peak_words(), 150, "110 < old peak");
        m.charge(SpaceComponent::Counters, 200);
        assert_eq!(m.peak_words(), 310);
    }

    #[test]
    fn set_adjusts_in_both_directions() {
        let mut m = SpaceMeter::new();
        m.set(SpaceComponent::TrackedEdges, 40);
        assert_eq!(m.current_of(SpaceComponent::TrackedEdges), 40);
        m.set(SpaceComponent::TrackedEdges, 10);
        assert_eq!(m.current_of(SpaceComponent::TrackedEdges), 10);
        assert_eq!(m.peak_words(), 40);
    }

    #[test]
    fn report_breaks_down_components() {
        let mut m = SpaceMeter::new();
        m.charge(SpaceComponent::Marks, 2);
        m.charge(SpaceComponent::Counters, 7);
        let r = m.report();
        assert_eq!(r.peak_words, 9);
        assert!(r.peak_by_component.contains(&(SpaceComponent::Marks, 2)));
        assert!(r.peak_by_component.contains(&(SpaceComponent::Counters, 7)));
        assert_eq!(r.peak_by_component.len(), 2);
    }

    #[test]
    fn algorithmic_peak_excludes_free_components() {
        let mut m = SpaceMeter::new();
        m.charge(SpaceComponent::Marks, 100);
        m.charge(SpaceComponent::FirstSet, 200);
        m.charge(SpaceComponent::Solution, 50);
        m.charge(SpaceComponent::Counters, 30);
        m.charge(SpaceComponent::TrackedEdges, 5);
        let r = m.report();
        assert_eq!(r.algorithmic_peak_words(), 35);
        assert_eq!(r.peak_words, 385);
    }

    #[test]
    fn helpers() {
        assert_eq!(bitset_words(0), 0);
        assert_eq!(bitset_words(1), 1);
        assert_eq!(bitset_words(64), 1);
        assert_eq!(bitset_words(65), 2);
        assert_eq!(map_entry_words(2), 3);
    }

    #[test]
    fn merged_sums_peaks_per_component() {
        let mut a = SpaceMeter::new();
        a.charge(SpaceComponent::Counters, 10);
        a.charge(SpaceComponent::Marks, 2);
        let mut b = SpaceMeter::new();
        b.charge(SpaceComponent::Counters, 5);
        b.charge(SpaceComponent::Guard, 32);
        let m = a.report().merged(&b.report());
        assert_eq!(m.peak_words, 49);
        assert_eq!(m.peak_of(SpaceComponent::Counters), 15);
        assert_eq!(m.peak_of(SpaceComponent::Guard), 32);
        assert_eq!(m.peak_of(SpaceComponent::Levels), 0);
        // Guard state counts toward the algorithmic (per-set) bound checks.
        assert_eq!(m.algorithmic_peak_words(), 47);
    }

    #[test]
    fn display_is_informative() {
        let mut m = SpaceMeter::new();
        m.charge(SpaceComponent::Counters, 3);
        let s = m.report().to_string();
        assert!(s.contains("peak 3 words"));
        assert!(s.contains("counters 3"));
    }

    #[test]
    #[should_panic(expected = "space underflow")]
    #[cfg(debug_assertions)]
    fn release_underflow_debug_asserts() {
        let mut m = SpaceMeter::new();
        m.release(SpaceComponent::Counters, 1);
    }
}
