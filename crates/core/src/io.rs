//! Instance and stream (de)serialization.
//!
//! Two plain-text formats, chosen for interoperability with the practical
//! set-cover literature the paper cites (§1.3 — Cormode et al., Barlow et
//! al. evaluate on edge-list benchmark files):
//!
//! ## `.sc` — set-list format
//!
//! ```text
//! c optional comment lines
//! p setcover <m> <n>
//! s <set-id> <elem> <elem> ...
//! ```
//!
//! One `s` line per (non-empty) set; ids are zero-based. Sets may repeat
//! across lines (contents are merged).
//!
//! ## `.scs` — stream format
//!
//! ```text
//! c optional comment lines
//! p setstream <m> <n> <num-edges>
//! e <set-id> <elem-id>
//! ```
//!
//! One `e` line per stream token, **in arrival order** — this serializes
//! a concrete edge-arrival stream, not just the instance, so experiments
//! on a fixed adversarial order can be exchanged between implementations.
//!
//! Both readers validate against the declared dimensions and report line
//! numbers in errors; the stream reader preserves order and tolerates
//! duplicate edges (the robustness suite covers solver behaviour on
//! them).

use std::fmt::Write as _;
use std::io::{BufRead, Write};

use crate::ids::{ElemId, SetId};
use crate::instance::{Edge, InstanceBuilder, SetCoverInstance};

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Syntax or semantic problem at a specific line (1-based).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed data does not form a feasible instance.
    Invalid(crate::error::CoreError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Serialize an instance in `.sc` set-list format.
pub fn write_instance<W: Write>(inst: &SetCoverInstance, mut w: W) -> Result<(), IoError> {
    writeln!(w, "c edge-arrival-setcover instance")?;
    writeln!(w, "p setcover {} {}", inst.m(), inst.n())?;
    let mut line = String::new();
    for s in 0..inst.m() as u32 {
        let elems = inst.set(SetId(s));
        if elems.is_empty() {
            continue;
        }
        line.clear();
        let _ = write!(line, "s {s}");
        for u in elems {
            let _ = write!(line, " {}", u.0);
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Parse an instance from `.sc` set-list format.
pub fn read_instance<R: BufRead>(r: R) -> Result<SetCoverInstance, IoError> {
    let mut header: Option<(usize, usize)> = None;
    let mut builder: Option<InstanceBuilder> = None;
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if header.is_some() {
                return Err(parse_err(lineno, "duplicate problem line"));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("setcover") {
                return Err(parse_err(lineno, "expected `p setcover <m> <n>`"));
            }
            let m: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad m"))?;
            let n: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad n"))?;
            header = Some((m, n));
            builder = Some(InstanceBuilder::new(m, n));
            continue;
        }
        if let Some(rest) = line.strip_prefix("s ") {
            let b = builder
                .as_mut()
                .ok_or_else(|| parse_err(lineno, "`s` line before problem line"))?;
            let mut it = rest.split_whitespace();
            let s: u32 = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad set id"))?;
            for tok in it {
                let u: u32 = tok
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad element `{tok}`")))?;
                b.add_edge(SetId(s), ElemId(u));
            }
            continue;
        }
        return Err(parse_err(lineno, format!("unrecognized line `{line}`")));
    }
    let b = builder.ok_or_else(|| parse_err(0, "missing problem line"))?;
    b.build().map_err(IoError::Invalid)
}

/// Serialize a concrete stream (ordered edges) in `.scs` format.
///
/// Accepts any exact-size edge iterator, so a lazy
/// [`stream_of`](crate::stream::stream_of) stream serializes without
/// materializing a `Vec<Edge>`; pass `edges.iter().copied()` for a
/// buffer.
pub fn write_stream<I, W>(m: usize, n: usize, edges: I, mut w: W) -> Result<(), IoError>
where
    I: IntoIterator<Item = Edge>,
    I::IntoIter: ExactSizeIterator,
    W: Write,
{
    let edges = edges.into_iter();
    writeln!(w, "c edge-arrival-setcover stream (order is significant)")?;
    writeln!(w, "p setstream {m} {n} {}", edges.len())?;
    for e in edges {
        writeln!(w, "e {} {}", e.set.0, e.elem.0)?;
    }
    Ok(())
}

/// A parsed stream: dimensions plus the edge sequence in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedStream {
    /// Declared number of sets.
    pub m: usize,
    /// Declared universe size.
    pub n: usize,
    /// Edges in arrival order (duplicates preserved).
    pub edges: Vec<Edge>,
}

impl ParsedStream {
    /// Build the underlying instance (deduplicating edges). Fails if some
    /// element never appears (the stream's instance would be infeasible).
    pub fn to_instance(&self) -> Result<SetCoverInstance, IoError> {
        let mut b = InstanceBuilder::new(self.m, self.n).with_edge_capacity(self.edges.len());
        for e in &self.edges {
            b.add_edge(e.set, e.elem);
        }
        b.build().map_err(IoError::Invalid)
    }
}

/// Parse a `.scs` stream file.
pub fn read_stream<R: BufRead>(r: R) -> Result<ParsedStream, IoError> {
    let mut parsed: Option<ParsedStream> = None;
    let mut declared_edges = 0usize;
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if parsed.is_some() {
                return Err(parse_err(lineno, "duplicate problem line"));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("setstream") {
                return Err(parse_err(lineno, "expected `p setstream <m> <n> <edges>`"));
            }
            let m: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad m"))?;
            let n: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad n"))?;
            declared_edges = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad edge count"))?;
            parsed = Some(ParsedStream {
                m,
                n,
                edges: Vec::with_capacity(declared_edges),
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("e ") {
            let p = parsed
                .as_mut()
                .ok_or_else(|| parse_err(lineno, "`e` line before problem line"))?;
            let mut it = rest.split_whitespace();
            let s: u32 = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad set id"))?;
            let u: u32 = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad element id"))?;
            if s as usize >= p.m {
                return Err(parse_err(lineno, format!("set id {s} >= m = {}", p.m)));
            }
            if u as usize >= p.n {
                return Err(parse_err(lineno, format!("element id {u} >= n = {}", p.n)));
            }
            p.edges.push(Edge {
                set: SetId(s),
                elem: ElemId(u),
            });
            continue;
        }
        return Err(parse_err(lineno, format!("unrecognized line `{line}`")));
    }
    let p = parsed.ok_or_else(|| parse_err(0, "missing problem line"))?;
    if p.edges.len() != declared_edges {
        return Err(parse_err(
            0,
            format!("declared {declared_edges} edges, found {}", p.edges.len()),
        ));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{order_edges, StreamOrder};

    fn tiny() -> SetCoverInstance {
        let mut b = InstanceBuilder::new(3, 4);
        b.add_set_elems(0, [0, 1]);
        b.add_set_elems(1, [1, 2]);
        b.add_set_elems(2, [2, 3]);
        b.build().unwrap()
    }

    #[test]
    fn instance_roundtrip() {
        let inst = tiny();
        let mut buf = Vec::new();
        write_instance(&inst, &mut buf).unwrap();
        let back = read_instance(&buf[..]).unwrap();
        assert_eq!(back.m(), inst.m());
        assert_eq!(back.n(), inst.n());
        assert_eq!(back.edge_vec(), inst.edge_vec());
    }

    #[test]
    fn instance_format_is_stable() {
        let mut buf = Vec::new();
        write_instance(&tiny(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("p setcover 3 4"));
        assert!(text.contains("s 0 0 1"));
        assert!(text.contains("s 2 2 3"));
    }

    #[test]
    fn stream_roundtrip_preserves_order_and_duplicates() {
        let inst = tiny();
        let mut edges = order_edges(&inst, StreamOrder::Interleaved);
        edges.push(edges[0]); // inject a duplicate
        let mut buf = Vec::new();
        write_stream(inst.m(), inst.n(), edges.iter().copied(), &mut buf).unwrap();
        let back = read_stream(&buf[..]).unwrap();
        assert_eq!(back.m, 3);
        assert_eq!(back.n, 4);
        assert_eq!(back.edges, edges);
        // The instance view deduplicates.
        let again = back.to_instance().unwrap();
        assert_eq!(again.edge_vec(), inst.edge_vec());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "c hello\n\np setcover 2 2\nc mid comment\ns 0 0\ns 1 1\n";
        let inst = read_instance(text.as_bytes()).unwrap();
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.num_edges(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "p setcover 2 2\nx what\n";
        match read_instance(bad.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad = "s 0 1\n";
        assert!(matches!(
            read_instance(bad.as_bytes()),
            Err(IoError::Parse { line: 1, .. })
        ));
        let bad = "p setstream 2 2 5\ne 0 0\n";
        assert!(matches!(
            read_stream(bad.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn stream_rejects_out_of_range_ids() {
        let bad = "p setstream 2 2 1\ne 5 0\n";
        match read_stream(bad.as_bytes()) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains(">= m"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_parsed_instance_is_rejected() {
        let text = "p setcover 1 3\ns 0 0 2\n"; // element 1 uncovered
        assert!(matches!(
            read_instance(text.as_bytes()),
            Err(IoError::Invalid(_))
        ));
    }

    #[test]
    fn display_of_errors() {
        let e = parse_err(7, "boom");
        assert_eq!(e.to_string(), "line 7: boom");
    }
}
