//! Covers and cover certificates.
//!
//! Per the problem definition (paper §1), an algorithm must output a
//! subfamily `T ⊆ S` covering the universe **and** a cover certificate
//! `C : U → T` naming, for each element, a set in `T` that contains it.
//! (Theorem 2 notes its lower bound holds even for algorithms that only
//! estimate the cover *size* — our solvers always produce full
//! certificates.)

use crate::error::CoreError;
use crate::ids::{ElemId, SetId};
use crate::instance::{Edge, SetCoverInstance};

/// A claimed solution: a cover and its certificate.
///
/// Certificates are stored slot-wise as `Option<SetId>` so that covers can
/// be *partial*: a solver fed a truncated or lossy stream (see
/// [`crate::stream::chaos`]) can certify only the elements whose edges
/// arrived. [`Cover::verify`] requires a total certificate;
/// [`Cover::verify_delivered`] verifies against what actually arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    /// The chosen subfamily `T ⊆ S`, deduplicated, in ascending id order.
    sets: Vec<SetId>,
    /// `certificate[u]` is the set of `T` covering element `u`, or `None`
    /// for elements the solver could not certify (lossy streams only).
    certificate: Vec<Option<SetId>>,
}

impl Cover {
    /// Build a cover from a (possibly unsorted, possibly duplicated) list of
    /// sets and a full certificate. The certificate must have length `n`.
    pub fn new(sets: Vec<SetId>, certificate: Vec<SetId>) -> Self {
        Cover::new_partial(sets, certificate.into_iter().map(Some).collect())
    }

    /// Build a cover whose certificate may leave elements uncertified —
    /// the truncation-safe finalize path for solvers that consumed a lossy
    /// stream. The certificate must still have one slot per element.
    pub fn new_partial(mut sets: Vec<SetId>, certificate: Vec<Option<SetId>>) -> Self {
        sets.sort_unstable();
        sets.dedup();
        Cover { sets, certificate }
    }

    /// Build a cover from a certificate alone: the cover is exactly the sets
    /// the certificate uses.
    pub fn from_certificate(certificate: Vec<SetId>) -> Self {
        let sets = certificate.clone();
        Cover::new(sets, certificate)
    }

    /// The cover `T`, sorted ascending, duplicate-free.
    pub fn sets(&self) -> &[SetId] {
        &self.sets
    }

    /// Size `|T|` — the objective value.
    pub fn size(&self) -> usize {
        self.sets.len()
    }

    /// The certificate `C : U → T ∪ {⊥}`, one slot per element; `None`
    /// slots are uncertified (possible only after lossy streams).
    pub fn certificate(&self) -> &[Option<SetId>] {
        &self.certificate
    }

    /// Number of certified elements (slots holding a witness).
    pub fn certified_count(&self) -> usize {
        self.certificate.iter().filter(|s| s.is_some()).count()
    }

    /// Whether every element has a witness (the paper's nominal contract).
    pub fn is_total(&self) -> bool {
        self.certificate.iter().all(|s| s.is_some())
    }

    /// The set certified to cover element `u`.
    pub fn witness(&self, u: ElemId) -> Option<SetId> {
        self.certificate.get(u.index()).copied().flatten()
    }

    /// Verify this solution against the instance:
    /// 1. the certificate assigns every element a set;
    /// 2. each assigned set actually contains the element;
    /// 3. each assigned set belongs to the cover `T`.
    ///
    /// (1)–(3) together imply `⋃_{S ∈ T} S = U`.
    pub fn verify(&self, inst: &SetCoverInstance) -> Result<(), CoreError> {
        if self.certificate.len() != inst.n() {
            let first_missing = self.certificate.len().min(inst.n());
            return Err(CoreError::MissingCertificate(ElemId(first_missing as u32)));
        }
        for (u, slot) in self.certificate.iter().enumerate() {
            let uid = ElemId(u as u32);
            let s = slot.ok_or(CoreError::MissingCertificate(uid))?;
            if !inst.contains(s, uid) {
                return Err(CoreError::BadCertificate { elem: uid, set: s });
            }
            if self.sets.binary_search(&s).is_err() {
                return Err(CoreError::CertificateSetNotInCover { elem: uid, set: s });
            }
        }
        Ok(())
    }

    /// Verify this solution against the **delivered** sub-instance: the
    /// edges that actually reached the solver after faults and repairs.
    ///
    /// Every element with at least one delivered edge must be certified by
    /// a set the certificate can *prove* contains it — i.e. a delivered
    /// `(set, element)` pair — and that set must belong to the cover.
    /// Elements that never arrived are exempt: no one-pass algorithm can
    /// cover what it never saw. Delivered edges referencing out-of-range
    /// ids (possible under the `Observe` guard policy) are ignored — they
    /// name nothing in the universe.
    ///
    /// On a clean, complete stream this coincides with [`Cover::verify`]
    /// (every element arrives, and delivered pairs are exactly the
    /// instance's edges).
    pub fn verify_delivered(&self, n: usize, delivered: &[Edge]) -> Result<(), CoreError> {
        let mut seen = vec![false; n];
        let mut pairs: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::with_capacity(delivered.len());
        for e in delivered {
            if e.elem.index() < n {
                seen[e.elem.index()] = true;
                pairs.insert((e.set.0, e.elem.0));
            }
        }
        for (u, &was_seen) in seen.iter().enumerate() {
            if !was_seen {
                continue;
            }
            let uid = ElemId(u as u32);
            let s = self
                .witness(uid)
                .ok_or(CoreError::MissingCertificate(uid))?;
            if !pairs.contains(&(s.0, uid.0)) {
                return Err(CoreError::BadCertificate { elem: uid, set: s });
            }
            if self.sets.binary_search(&s).is_err() {
                return Err(CoreError::CertificateSetNotInCover { elem: uid, set: s });
            }
        }
        Ok(())
    }

    /// Summary statistics against a reference optimum (planted OPT or a
    /// lower bound).
    pub fn stats(&self, opt: usize) -> CoverStats {
        CoverStats {
            size: self.size(),
            opt,
            approx_ratio: crate::math::approx_ratio(self.size(), opt),
        }
    }
}

/// Solution quality summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverStats {
    /// `|T|`.
    pub size: usize,
    /// The reference optimum used for the ratio.
    pub opt: usize,
    /// `size / opt`.
    pub approx_ratio: f64,
}

/// Helper used by streaming algorithms while they build a certificate
/// incrementally: a partial map `U → S` with `n` slots.
///
/// Slots start unassigned; the first assignment wins unless `overwrite` is
/// used. Algorithms typically fill it with witnesses as covered edges
/// arrive, then patch the remaining slots from the first-set map `R(u)`.
#[derive(Debug, Clone)]
pub struct PartialCertificate {
    slots: Vec<Option<SetId>>,
    assigned: usize,
}

impl PartialCertificate {
    /// A certificate with `n` unassigned slots.
    pub fn new(n: usize) -> Self {
        PartialCertificate {
            slots: vec![None; n],
            assigned: 0,
        }
    }

    /// Assign a witness for `u` if it has none yet. Returns whether the
    /// assignment took place.
    #[inline]
    pub fn assign(&mut self, u: ElemId, s: SetId) -> bool {
        let slot = &mut self.slots[u.index()];
        if slot.is_none() {
            *slot = Some(s);
            self.assigned += 1;
            true
        } else {
            false
        }
    }

    /// Whether `u` already has a witness.
    #[inline]
    pub fn has(&self, u: ElemId) -> bool {
        self.slots[u.index()].is_some()
    }

    /// The witness of `u`, if assigned.
    pub fn get(&self, u: ElemId) -> Option<SetId> {
        self.slots[u.index()]
    }

    /// Number of assigned slots.
    pub fn assigned(&self) -> usize {
        self.assigned
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot exists.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterate over unassigned element ids.
    pub fn unassigned(&self) -> impl Iterator<Item = ElemId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(u, _)| ElemId(u as u32))
    }

    /// Finalize into a full certificate, patching every unassigned slot via
    /// `patch` (typically the first-set map `R(u)`; see Algorithm 1 line 38
    /// and Algorithm 2 line 25). Panics if `patch` returns `None` for an
    /// unassigned slot — the first-set map is total for feasible instances
    /// whose full stream arrived. For lossy streams use
    /// [`PartialCertificate::finish_partial`].
    pub fn finish_with<F: FnMut(ElemId) -> Option<SetId>>(self, mut patch: F) -> Vec<SetId> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(u, s)| {
                s.or_else(|| patch(ElemId(u as u32)))
                    .expect("patch function must cover all unassigned elements")
            })
            .collect()
    }

    /// Truncation-safe finalize: patch what `patch` can cover and leave the
    /// rest unassigned. Feed the result to [`Cover::new_partial`]; the
    /// cover then verifies against the delivered sub-instance via
    /// [`Cover::verify_delivered`].
    pub fn finish_partial<F: FnMut(ElemId) -> Option<SetId>>(
        self,
        mut patch: F,
    ) -> Vec<Option<SetId>> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(u, s)| s.or_else(|| patch(ElemId(u as u32))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst() -> SetCoverInstance {
        let mut b = InstanceBuilder::new(3, 4);
        b.add_set_elems(0, [0, 1]);
        b.add_set_elems(1, [1, 2]);
        b.add_set_elems(2, [2, 3]);
        b.build().unwrap()
    }

    #[test]
    fn valid_cover_verifies() {
        let inst = inst();
        let cover = Cover::new(
            vec![SetId(0), SetId(2)],
            vec![SetId(0), SetId(0), SetId(2), SetId(2)],
        );
        cover.verify(&inst).unwrap();
        assert_eq!(cover.size(), 2);
        assert_eq!(cover.witness(ElemId(1)), Some(SetId(0)));
    }

    #[test]
    fn duplicate_sets_are_deduped() {
        let cover = Cover::new(
            vec![SetId(2), SetId(0), SetId(0), SetId(2)],
            vec![SetId(0), SetId(0), SetId(2), SetId(2)],
        );
        assert_eq!(cover.sets(), &[SetId(0), SetId(2)]);
        assert_eq!(cover.size(), 2);
    }

    #[test]
    fn from_certificate_builds_minimal_family() {
        let cover = Cover::from_certificate(vec![SetId(0), SetId(0), SetId(1), SetId(2)]);
        assert_eq!(cover.sets(), &[SetId(0), SetId(1), SetId(2)]);
    }

    #[test]
    fn bad_certificate_detected() {
        let inst = inst();
        // S0 does not contain element 3.
        let cover = Cover::new(
            vec![SetId(0), SetId(2)],
            vec![SetId(0), SetId(0), SetId(2), SetId(0)],
        );
        assert_eq!(
            cover.verify(&inst).unwrap_err(),
            CoreError::BadCertificate {
                elem: ElemId(3),
                set: SetId(0)
            }
        );
    }

    #[test]
    fn certificate_set_must_be_in_cover() {
        let inst = inst();
        let cover = Cover::new(vec![SetId(0)], vec![SetId(0), SetId(0), SetId(1), SetId(2)]);
        assert!(matches!(
            cover.verify(&inst).unwrap_err(),
            CoreError::CertificateSetNotInCover { .. }
        ));
    }

    #[test]
    fn short_certificate_detected() {
        let inst = inst();
        let cover = Cover::new(vec![SetId(0)], vec![SetId(0), SetId(0)]);
        assert!(matches!(
            cover.verify(&inst).unwrap_err(),
            CoreError::MissingCertificate(_)
        ));
    }

    #[test]
    fn stats_compute_ratio() {
        let cover = Cover::from_certificate(vec![SetId(0), SetId(1)]);
        let st = cover.stats(1);
        assert_eq!(st.size, 2);
        assert_eq!(st.approx_ratio, 2.0);
    }

    #[test]
    fn partial_cover_fails_total_verify_but_passes_delivered() {
        let inst = inst();
        // Element 3's edges never arrived: certificate leaves it ⊥.
        let cover = Cover::new_partial(
            vec![SetId(0), SetId(1)],
            vec![Some(SetId(0)), Some(SetId(0)), Some(SetId(1)), None],
        );
        assert!(!cover.is_total());
        assert_eq!(cover.certified_count(), 3);
        assert_eq!(
            cover.verify(&inst).unwrap_err(),
            CoreError::MissingCertificate(ElemId(3))
        );
        let delivered = vec![
            Edge::new(0, 0),
            Edge::new(0, 1),
            Edge::new(1, 1),
            Edge::new(1, 2),
        ];
        cover.verify_delivered(inst.n(), &delivered).unwrap();
    }

    #[test]
    fn verify_delivered_demands_delivered_witness_pairs() {
        // S2 contains element 2 in the instance, but the edge (S2, u2)
        // never arrived — certifying u2 with S2 is a false claim about
        // the delivered stream.
        let cover = Cover::new_partial(vec![SetId(2)], vec![None, None, Some(SetId(2)), None]);
        let delivered = vec![Edge::new(2, 3), Edge::new(1, 2)];
        assert_eq!(
            cover.verify_delivered(4, &delivered).unwrap_err(),
            CoreError::BadCertificate {
                elem: ElemId(2),
                set: SetId(2)
            }
        );
        // An uncertified delivered element is also an error…
        let empty = Cover::new_partial(vec![], vec![None, None, None, None]);
        assert_eq!(
            empty.verify_delivered(4, &delivered).unwrap_err(),
            CoreError::MissingCertificate(ElemId(2))
        );
        // …and a witness outside the cover family is flagged.
        let outside = Cover::new_partial(
            vec![SetId(2)],
            vec![None, None, Some(SetId(1)), Some(SetId(2))],
        );
        assert_eq!(
            outside.verify_delivered(4, &delivered).unwrap_err(),
            CoreError::CertificateSetNotInCover {
                elem: ElemId(2),
                set: SetId(1)
            }
        );
    }

    #[test]
    fn verify_delivered_ignores_out_of_range_edges() {
        let cover = Cover::new_partial(vec![SetId(0)], vec![Some(SetId(0)), None]);
        // The second edge names element 9 in a 2-element universe
        // (corrupted, passed through by an Observe guard): exempt.
        let delivered = vec![Edge::new(0, 0), Edge::new(0, 9)];
        cover.verify_delivered(2, &delivered).unwrap();
    }

    #[test]
    fn partial_certificate_finish_partial_leaves_gaps() {
        let mut pc = PartialCertificate::new(3);
        pc.assign(ElemId(1), SetId(9));
        let slots = pc.finish_partial(|u| if u.0 == 0 { Some(SetId(4)) } else { None });
        assert_eq!(slots, vec![Some(SetId(4)), Some(SetId(9)), None]);
    }

    #[test]
    fn partial_certificate_first_assignment_wins() {
        let mut pc = PartialCertificate::new(3);
        assert!(pc.assign(ElemId(0), SetId(5)));
        assert!(!pc.assign(ElemId(0), SetId(6)));
        assert_eq!(pc.get(ElemId(0)), Some(SetId(5)));
        assert_eq!(pc.assigned(), 1);
        assert!(pc.has(ElemId(0)));
        assert!(!pc.has(ElemId(1)));
        let un: Vec<_> = pc.unassigned().collect();
        assert_eq!(un, vec![ElemId(1), ElemId(2)]);
    }

    #[test]
    fn partial_certificate_finish_patches() {
        let mut pc = PartialCertificate::new(3);
        pc.assign(ElemId(1), SetId(9));
        let full = pc.finish_with(|u| Some(SetId(u.0)));
        assert_eq!(full, vec![SetId(0), SetId(9), SetId(2)]);
    }

    #[test]
    #[should_panic(expected = "patch function")]
    fn partial_certificate_finish_requires_total_patch() {
        let pc = PartialCertificate::new(1);
        let _ = pc.finish_with(|_| None);
    }
}
