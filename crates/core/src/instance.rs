//! Set Cover instances and their bipartite-graph representation.
//!
//! Following §2 of the paper, an instance `(S, U)` with `m = |S|` sets and
//! `n = |U|` elements is represented as a bipartite graph
//! `G = (S, U, E)` with an edge `(S_i, u)` iff `u ∈ S_i`. The edge set `E`
//! is exactly what arrives in the stream, in some order.
//!
//! [`SetCoverInstance`] stores both adjacency directions in CSR
//! (compressed sparse row) form: element lists per set, and set lists per
//! element. Both are sorted, enabling `O(log)` membership queries and
//! cache-friendly iteration. Instances are immutable after construction;
//! build them with [`InstanceBuilder`].

use crate::error::CoreError;
use crate::ids::{ElemId, SetId};

/// A single stream token `(S, u)`: element `u` is contained in set `S`.
///
/// The paper writes tuples both as `(S, u)` and `(u, S)`; the orientation is
/// immaterial, an [`Edge`] always carries both endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// The set endpoint `S`.
    pub set: SetId,
    /// The element endpoint `u`.
    pub elem: ElemId,
}

impl Edge {
    /// Construct an edge from raw indices.
    #[inline]
    pub fn new(set: u32, elem: u32) -> Self {
        Edge {
            set: SetId(set),
            elem: ElemId(elem),
        }
    }
}

/// An immutable Set Cover instance in bipartite CSR representation.
///
/// Invariants (enforced by [`InstanceBuilder::build`]):
/// * `n >= 1`, `m >= 1`;
/// * every element is contained in at least one set (feasibility, §2);
/// * adjacency lists are sorted and duplicate-free;
/// * both adjacency directions describe the same edge set.
#[derive(Debug, Clone)]
pub struct SetCoverInstance {
    n: usize,
    m: usize,
    /// CSR offsets into `set_elems`; length `m + 1`.
    set_offsets: Vec<usize>,
    /// Concatenated, per-set-sorted element lists.
    set_elems: Vec<ElemId>,
    /// CSR offsets into `elem_sets`; length `n + 1`.
    elem_offsets: Vec<usize>,
    /// Concatenated, per-element-sorted set lists.
    elem_sets: Vec<SetId>,
}

impl SetCoverInstance {
    /// Universe size `n = |U|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of sets `m = |S|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of edges `N = |E| = Σ_i |S_i|` — the stream length.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.set_elems.len()
    }

    /// The elements of set `s`, sorted ascending. This is `N(S)` in the
    /// paper's notation.
    #[inline]
    pub fn set(&self, s: SetId) -> &[ElemId] {
        let i = s.index();
        &self.set_elems[self.set_offsets[i]..self.set_offsets[i + 1]]
    }

    /// The sets containing element `u`, sorted ascending.
    #[inline]
    pub fn sets_containing(&self, u: ElemId) -> &[SetId] {
        let i = u.index();
        &self.elem_sets[self.elem_offsets[i]..self.elem_offsets[i + 1]]
    }

    /// Size `|S_s|` of set `s`.
    #[inline]
    pub fn set_size(&self, s: SetId) -> usize {
        let i = s.index();
        self.set_offsets[i + 1] - self.set_offsets[i]
    }

    /// Degree of element `u`: the number of sets containing it.
    #[inline]
    pub fn elem_degree(&self, u: ElemId) -> usize {
        let i = u.index();
        self.elem_offsets[i + 1] - self.elem_offsets[i]
    }

    /// Whether `u ∈ S_s`, by binary search (`O(log |S_s|)`).
    pub fn contains(&self, s: SetId, u: ElemId) -> bool {
        self.set(s).binary_search(&u).is_ok()
    }

    /// The `idx`-th edge in canonical order (by set, then element) — the
    /// order [`edge_vec`](Self::edge_vec) materializes. Decodes the flat
    /// edge index directly from the CSR arrays: the owning set is found by
    /// binary search on `set_offsets` (`O(log m)`), the element is a direct
    /// lookup. This is what lets shuffled stream orders store a compact
    /// `u32` index permutation instead of a `Vec<Edge>`.
    #[inline]
    pub fn edge_at(&self, idx: usize) -> Edge {
        debug_assert!(idx < self.num_edges());
        // Last offset <= idx owns the edge; `partition_point` skips over
        // empty sets (whose offsets tie with their successor's).
        let s = self.set_offsets.partition_point(|&o| o <= idx) - 1;
        Edge {
            set: SetId(s as u32),
            elem: self.set_elems[idx],
        }
    }

    /// Iterate over all edges in canonical order (by set, then element).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.m).flat_map(move |i| {
            let s = SetId(i as u32);
            self.set(s).iter().map(move |&u| Edge { set: s, elem: u })
        })
    }

    /// Collect all edges into a vector (canonical order). This materializes
    /// the stream content; order adapters in [`crate::stream`] permute it.
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Summary statistics used by generators, experiments and reports.
    pub fn stats(&self) -> InstanceStats {
        let mut min_set = usize::MAX;
        let mut max_set = 0usize;
        for i in 0..self.m {
            let sz = self.set_offsets[i + 1] - self.set_offsets[i];
            min_set = min_set.min(sz);
            max_set = max_set.max(sz);
        }
        let mut min_deg = usize::MAX;
        let mut max_deg = 0usize;
        for i in 0..self.n {
            let d = self.elem_offsets[i + 1] - self.elem_offsets[i];
            min_deg = min_deg.min(d);
            max_deg = max_deg.max(d);
        }
        // Degenerate instances (the loops above never ran, or every slot is
        // empty) must not leak the `usize::MAX` fold identity into reports.
        if min_set == usize::MAX {
            min_set = 0;
        }
        if min_deg == usize::MAX {
            min_deg = 0;
        }
        InstanceStats {
            n: self.n,
            m: self.m,
            edges: self.num_edges(),
            min_set_size: min_set,
            max_set_size: max_set,
            avg_set_size: self.num_edges() as f64 / self.m as f64,
            min_elem_degree: min_deg,
            max_elem_degree: max_deg,
            avg_elem_degree: self.num_edges() as f64 / self.n as f64,
        }
    }

    /// A trivial upper bound on OPT: one (arbitrary, here: smallest-id) set
    /// per element, deduplicated. Used as the patching baseline ("first set"
    /// rule, Algorithm 1 line 38 / Algorithm 2 line 25 use the stream-order
    /// analogue).
    pub fn trivial_cover_size(&self) -> usize {
        let mut chosen = vec![false; self.m];
        let mut count = 0usize;
        for u in 0..self.n {
            let s = self.elem_sets[self.elem_offsets[u]];
            if !chosen[s.index()] {
                chosen[s.index()] = true;
                count += 1;
            }
        }
        count
    }
}

/// Summary statistics of an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Universe size.
    pub n: usize,
    /// Number of sets.
    pub m: usize,
    /// Number of edges (stream length).
    pub edges: usize,
    /// Smallest set size.
    pub min_set_size: usize,
    /// Largest set size.
    pub max_set_size: usize,
    /// Mean set size.
    pub avg_set_size: f64,
    /// Smallest element degree.
    pub min_elem_degree: usize,
    /// Largest element degree.
    pub max_elem_degree: usize,
    /// Mean element degree.
    pub avg_elem_degree: f64,
}

/// Incremental builder for [`SetCoverInstance`].
///
/// Accepts edges in any order, deduplicates them, validates ranges and
/// feasibility, and produces both CSR directions.
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    n: usize,
    m: usize,
    edges: Vec<Edge>,
}

impl InstanceBuilder {
    /// Start building an instance with `m` sets over a universe of size `n`.
    pub fn new(m: usize, n: usize) -> Self {
        InstanceBuilder {
            n,
            m,
            edges: Vec::new(),
        }
    }

    /// Pre-allocate for `cap` edges.
    pub fn with_edge_capacity(mut self, cap: usize) -> Self {
        self.edges.reserve(cap);
        self
    }

    /// Add a single membership `u ∈ S_s`. Duplicates are tolerated and
    /// removed at [`build`](Self::build) time.
    #[inline]
    pub fn add_edge(&mut self, s: SetId, u: ElemId) -> &mut Self {
        self.edges.push(Edge { set: s, elem: u });
        self
    }

    /// Add a whole set's contents at once.
    pub fn add_set_elems<I: IntoIterator<Item = u32>>(&mut self, s: u32, elems: I) -> &mut Self {
        for e in elems {
            self.add_edge(SetId(s), ElemId(e));
        }
        self
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validate and freeze into a [`SetCoverInstance`].
    ///
    /// Errors if the universe or family is empty, any edge is out of range,
    /// or some element is contained in no set (infeasible instance).
    pub fn build(mut self) -> Result<SetCoverInstance, CoreError> {
        if self.n == 0 {
            return Err(CoreError::EmptyUniverse);
        }
        if self.m == 0 {
            return Err(CoreError::EmptyFamily);
        }
        for e in &self.edges {
            if e.set.index() >= self.m {
                return Err(CoreError::SetOutOfRange {
                    set: e.set,
                    m: self.m,
                });
            }
            if e.elem.index() >= self.n {
                return Err(CoreError::ElemOutOfRange {
                    elem: e.elem,
                    n: self.n,
                });
            }
        }
        // Sort by (set, elem) and dedup: gives per-set sorted element lists.
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut set_offsets = vec![0usize; self.m + 1];
        for e in &self.edges {
            set_offsets[e.set.index() + 1] += 1;
        }
        for i in 0..self.m {
            set_offsets[i + 1] += set_offsets[i];
        }
        let set_elems: Vec<ElemId> = self.edges.iter().map(|e| e.elem).collect();

        // Reverse direction: counting sort by element keeps per-element set
        // lists sorted because we scan edges in (set, elem) order.
        let mut elem_offsets = vec![0usize; self.n + 1];
        for e in &self.edges {
            elem_offsets[e.elem.index() + 1] += 1;
        }
        for i in 0..self.n {
            elem_offsets[i + 1] += elem_offsets[i];
        }
        for (u, w) in elem_offsets.iter().enumerate().take(self.n) {
            if elem_offsets[u + 1] == *w {
                return Err(CoreError::UncoverableElement(ElemId(u as u32)));
            }
        }
        let mut cursor = elem_offsets.clone();
        let mut elem_sets = vec![SetId(0); self.edges.len()];
        for e in &self.edges {
            let c = &mut cursor[e.elem.index()];
            elem_sets[*c] = e.set;
            *c += 1;
        }

        Ok(SetCoverInstance {
            n: self.n,
            m: self.m,
            set_offsets,
            set_elems,
            elem_offsets,
            elem_sets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetCoverInstance {
        // S0 = {0,1}, S1 = {1,2}, S2 = {2,3}, n = 4
        let mut b = InstanceBuilder::new(3, 4);
        b.add_set_elems(0, [0, 1]);
        b.add_set_elems(1, [1, 2]);
        b.add_set_elems(2, [2, 3]);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_exposes_adjacency() {
        let inst = tiny();
        assert_eq!(inst.n(), 4);
        assert_eq!(inst.m(), 3);
        assert_eq!(inst.num_edges(), 6);
        assert_eq!(inst.set(SetId(0)), &[ElemId(0), ElemId(1)]);
        assert_eq!(inst.set(SetId(2)), &[ElemId(2), ElemId(3)]);
        assert_eq!(inst.sets_containing(ElemId(1)), &[SetId(0), SetId(1)]);
        assert_eq!(inst.sets_containing(ElemId(3)), &[SetId(2)]);
    }

    #[test]
    fn membership_queries() {
        let inst = tiny();
        assert!(inst.contains(SetId(0), ElemId(1)));
        assert!(!inst.contains(SetId(0), ElemId(3)));
        assert_eq!(inst.set_size(SetId(1)), 2);
        assert_eq!(inst.elem_degree(ElemId(2)), 2);
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let mut b = InstanceBuilder::new(1, 2);
        b.add_set_elems(0, [0, 1, 0, 1, 1]);
        let inst = b.build().unwrap();
        assert_eq!(inst.num_edges(), 2);
        assert_eq!(inst.set(SetId(0)).len(), 2);
    }

    #[test]
    fn edges_iterator_matches_counts() {
        let inst = tiny();
        let edges = inst.edge_vec();
        assert_eq!(edges.len(), inst.num_edges());
        assert!(edges.contains(&Edge::new(1, 2)));
        // Canonical order: sorted by (set, elem).
        let mut sorted = edges.clone();
        sorted.sort();
        assert_eq!(edges, sorted);
    }

    #[test]
    fn edge_at_decodes_canonical_indices() {
        // Mix of empty sets (offset ties) and uneven sizes: `edge_at` must
        // agree with `edge_vec` at every flat index.
        let mut b = InstanceBuilder::new(5, 6);
        // set 0 left empty
        b.add_set_elems(1, [0, 3, 5]);
        // set 2 left empty
        b.add_set_elems(3, [1]);
        b.add_set_elems(4, [2, 4]);
        let inst = b.build().unwrap();
        let edges = inst.edge_vec();
        for (i, &e) in edges.iter().enumerate() {
            assert_eq!(inst.edge_at(i), e, "index {i}");
        }
    }

    #[test]
    fn rejects_empty_universe_and_family() {
        assert_eq!(
            InstanceBuilder::new(1, 0).build().unwrap_err(),
            CoreError::EmptyUniverse
        );
        assert_eq!(
            InstanceBuilder::new(0, 1).build().unwrap_err(),
            CoreError::EmptyFamily
        );
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let mut b = InstanceBuilder::new(1, 1);
        b.add_edge(SetId(1), ElemId(0));
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::SetOutOfRange { .. }
        ));

        let mut b = InstanceBuilder::new(1, 1);
        b.add_edge(SetId(0), ElemId(5));
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::ElemOutOfRange { .. }
        ));
    }

    #[test]
    fn rejects_infeasible_instance() {
        let mut b = InstanceBuilder::new(2, 3);
        b.add_set_elems(0, [0]);
        b.add_set_elems(1, [2]);
        // element 1 uncovered
        assert_eq!(
            b.build().unwrap_err(),
            CoreError::UncoverableElement(ElemId(1))
        );
    }

    #[test]
    fn stats_are_consistent() {
        let inst = tiny();
        let st = inst.stats();
        assert_eq!(st.n, 4);
        assert_eq!(st.m, 3);
        assert_eq!(st.edges, 6);
        assert_eq!(st.min_set_size, 2);
        assert_eq!(st.max_set_size, 2);
        assert_eq!(st.min_elem_degree, 1);
        assert_eq!(st.max_elem_degree, 2);
        assert!((st.avg_set_size - 2.0).abs() < 1e-12);
        assert!((st.avg_elem_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trivial_cover_upper_bound() {
        let inst = tiny();
        let t = inst.trivial_cover_size();
        // first-set rule: u0->S0, u1->S0, u2->S1, u3->S2 => 3 sets
        assert_eq!(t, 3);
        assert!(t <= inst.n());
    }

    #[test]
    fn reverse_adjacency_is_sorted() {
        let mut b = InstanceBuilder::new(4, 3);
        b.add_set_elems(3, [0, 1]);
        b.add_set_elems(1, [0, 2]);
        b.add_set_elems(0, [1, 2]);
        b.add_set_elems(2, [2]);
        let inst = b.build().unwrap();
        for u in 0..inst.n() {
            let sets = inst.sets_containing(ElemId(u as u32));
            let mut sorted = sets.to_vec();
            sorted.sort();
            assert_eq!(sets, &sorted[..]);
        }
    }
}
