//! Dense integer identifiers for sets and elements.
//!
//! The paper's instances are indexed: sets `S_1..S_m` and universe
//! `U = [n]`. We use zero-based dense `u32` indices wrapped in newtypes so
//! that set indices and element indices cannot be confused at compile time.
//! `u32` keeps hot structures (edge lists, counters) compact; instances with
//! more than `2^32 - 1` sets or elements are out of scope for a single-node
//! reproduction.

use std::fmt;

/// Identifier of a set `S_i` in the family `S = {S_0, ..., S_{m-1}}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetId(pub u32);

/// Identifier of an element `u` in the universe `U = {0, ..., n-1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElemId(pub u32);

impl SetId {
    /// The set index as a `usize`, for direct indexing of per-set arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ElemId {
    /// The element index as a `usize`, for direct indexing of per-element
    /// arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for SetId {
    #[inline]
    fn from(v: u32) -> Self {
        SetId(v)
    }
}

impl From<u32> for ElemId {
    #[inline]
    fn from(v: u32) -> Self {
        ElemId(v)
    }
}

impl fmt::Display for SetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_id_roundtrip() {
        let s = SetId::from(7u32);
        assert_eq!(s.index(), 7);
        assert_eq!(s, SetId(7));
        assert_eq!(s.to_string(), "S7");
    }

    #[test]
    fn elem_id_roundtrip() {
        let u = ElemId::from(3u32);
        assert_eq!(u.index(), 3);
        assert_eq!(u, ElemId(3));
        assert_eq!(u.to_string(), "u3");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(SetId(1) < SetId(2));
        assert!(ElemId(0) < ElemId(10));
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<SetId>(), 4);
        assert_eq!(std::mem::size_of::<ElemId>(), 4);
        assert_eq!(std::mem::size_of::<Option<SetId>>(), 8);
    }
}
