//! Guarded ingestion: validate an edge stream against the model's
//! delivery contract before it reaches a solver.
//!
//! The paper's model (§2) promises each edge `(S, u)` arrives exactly
//! once, with in-range ids, and that the stream runs to its declared
//! length. [`GuardedStream`] checks those promises edge-by-edge and reacts
//! per a [`GuardPolicy`]:
//!
//! * [`GuardPolicy::Strict`] — fail fast with a positioned
//!   [`StreamError`] naming the stream position and cause.
//! * [`GuardPolicy::Repair`] — drop out-of-range ids, dedup within a
//!   bounded sliding window, and clamp the stream to its declared length;
//!   the solver sees a best-effort clean stream.
//! * [`GuardPolicy::Observe`] — pass everything through untouched but
//!   count every anomaly, for measuring what a fault mix does to an
//!   unguarded solver.
//!
//! The guard's own state — the dedup window plus its counters — is
//! charged to [`SpaceComponent::Guard`] on its [`SpaceMeter`], so a
//! harness can report guarded runs' total footprint honestly by merging
//! the guard's [`SpaceReport`] with the solver's.
//!
//! # Duplicate detection is windowed
//!
//! Exact stream-wide dedup needs Ω(N) state, which would defeat the
//! sublinear space story. The guard instead remembers the last
//! `w = dedup_window` edges (bounded ≤ `2w` keys internally) and flags a
//! repeat only if the original is still in the window. Adjacent and
//! short-delay replays — the common transport faults — are always caught;
//! a replay delayed beyond `w` positions is not (it will instead surface
//! as a [`StreamError::LengthMismatch`] at end of stream if the declared
//! length was honest). Window `0` disables dedup entirely.

use crate::error::StreamError;
use crate::instance::Edge;
use crate::obs::{Metric, NoopRecorder, Recorder};
use crate::space::{SpaceComponent, SpaceMeter, SpaceReport};
use crate::stream::EdgeStream;

/// How a [`GuardedStream`] reacts to a contract violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardPolicy {
    /// Fail fast: the first violation aborts the stream with a positioned
    /// [`StreamError`].
    Strict,
    /// Best-effort repair: drop out-of-range edges, suppress windowed
    /// duplicates, clamp to the declared length.
    Repair,
    /// Pass everything through, counting anomalies.
    Observe,
}

impl GuardPolicy {
    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            GuardPolicy::Strict => "strict",
            GuardPolicy::Repair => "repair",
            GuardPolicy::Observe => "observe",
        }
    }
}

/// Configuration for a [`GuardedStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Reaction policy.
    pub policy: GuardPolicy,
    /// Sliding dedup window size in edges (`0` disables dedup).
    pub dedup_window: usize,
}

impl GuardConfig {
    /// Default dedup window: catches retry storms and short replays while
    /// staying a rounding error next to solver state.
    pub const DEFAULT_WINDOW: usize = 64;

    /// Fail-fast configuration.
    pub fn strict() -> Self {
        GuardConfig {
            policy: GuardPolicy::Strict,
            dedup_window: Self::DEFAULT_WINDOW,
        }
    }

    /// Best-effort repair configuration.
    pub fn repair() -> Self {
        GuardConfig {
            policy: GuardPolicy::Repair,
            dedup_window: Self::DEFAULT_WINDOW,
        }
    }

    /// Count-only configuration.
    pub fn observe() -> Self {
        GuardConfig {
            policy: GuardPolicy::Observe,
            dedup_window: Self::DEFAULT_WINDOW,
        }
    }

    /// Override the dedup window.
    pub fn with_dedup_window(mut self, window: usize) -> Self {
        self.dedup_window = window;
        self
    }
}

/// What the guard saw and did, for harness footers and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardReport {
    /// Edges pulled from the wrapped stream.
    pub edges_in: usize,
    /// Edges delivered clean to the consumer.
    pub edges_ok: usize,
    /// Anomalous edges removed by [`GuardPolicy::Repair`].
    pub edges_repaired: usize,
    /// Anomalous edges *not* repaired: the fatal edge under
    /// [`GuardPolicy::Strict`], or anomalies passed through under
    /// [`GuardPolicy::Observe`].
    pub edges_rejected: usize,
    /// Duplicates detected within the dedup window.
    pub duplicates: usize,
    /// Edges with a set id `>= m`.
    pub set_out_of_range: usize,
    /// Edges with an element id `>= n`.
    pub elem_out_of_range: usize,
    /// `(declared, delivered)` when the stream length disagreed with its
    /// `len_hint`.
    pub length_mismatch: Option<(usize, usize)>,
    /// Words of guard-owned state (dedup window + counters).
    pub guard_words: usize,
}

/// Sliding-window duplicate detector over packed `(set, elem)` keys.
///
/// Generational open addressing: two hash tables of capacity
/// `8 * window` (rounded up to a power of two). Inserts go to the
/// *current* table; once it holds `window` keys it becomes the *previous*
/// table and a cleared table takes over. A lookup probes both, so any key
/// within the last `window` insertions is guaranteed found, and nothing
/// older than `2 * window` survives — bounded memory with no per-insert
/// deletions.
///
/// The 8× capacity is a deliberate space/time trade on the clean-stream
/// hot path: at a ≤ 1/8 load factor the home slot resolves almost every
/// probe, so the probe loops exit after one predictable iteration instead
/// of walking (and mispredicting through) collision chains. State is
/// still O(window) words and every word is charged to the meter.
#[derive(Debug)]
struct DedupWindow {
    current: Vec<u64>,
    previous: Vec<u64>,
    mask: u64,
    /// `64 - log2(capacity)`: the hash uses the *top* bits of the
    /// multiplicative mix, which are the well-mixed ones.
    shift: u32,
    in_current: usize,
    window: usize,
}

/// Empty-slot sentinel; never a valid packed key because set ids are
/// `u32` (a packed key's high bits can be all-ones only for set id
/// `u32::MAX`, which [`crate::ids::SetId`] construction from instances
/// bounded by `m < u32::MAX` never produces — and a colliding sentinel
/// would only cause a missed duplicate, never a false positive).
const EMPTY: u64 = u64::MAX;

impl DedupWindow {
    fn new(window: usize) -> Self {
        let cap = (window * 8).next_power_of_two().max(2);
        DedupWindow {
            current: vec![EMPTY; cap],
            previous: vec![EMPTY; cap],
            mask: (cap - 1) as u64,
            shift: 64 - cap.trailing_zeros(),
            in_current: 0,
            window,
        }
    }

    fn words(&self) -> usize {
        self.current.len() + self.previous.len() + 3
    }

    /// Returns `true` if `key` was seen within the window; records it
    /// either way.
    ///
    /// Hot path: one hash, then both tables' *home* slots loaded in
    /// parallel (they share the capacity, so one index serves both). At a
    /// ≤ 1/8 load factor both are empty for most keys, so the common case
    /// is two independent loads, one predictable branch, and one store —
    /// no probe-chain walk. Collisions fall through to the full
    /// EMPTY-terminated linear probes.
    #[inline]
    fn seen_or_insert(&mut self, key: u64) -> bool {
        if self.window == 0 {
            return false;
        }
        let start = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize;
        let c0 = self.current[start];
        let p0 = self.previous[start];
        if c0 == EMPTY && p0 == EMPTY {
            if self.in_current >= self.window {
                self.rotate();
                // The freshly cleared table's home slot is free too.
            }
            self.current[start] = key;
            self.in_current += 1;
            return false;
        }
        self.probe_slow(key, start)
    }

    /// Full two-chain probe + insert for keys whose home slot is taken.
    fn probe_slow(&mut self, key: u64, start: usize) -> bool {
        let mask = self.mask;
        let mut i = start as u64;
        let free = loop {
            let slot = self.current[i as usize];
            if slot == key {
                return true;
            }
            if slot == EMPTY {
                break i;
            }
            i = (i + 1) & mask;
        };
        let mut j = start as u64;
        loop {
            let slot = self.previous[j as usize];
            if slot == key {
                return true;
            }
            if slot == EMPTY {
                break;
            }
            j = (j + 1) & mask;
        }
        if self.in_current >= self.window {
            self.rotate();
            // The freshly cleared table is empty: the home slot is free.
            self.current[start] = key;
        } else {
            self.current[free as usize] = key;
        }
        self.in_current += 1;
        false
    }

    /// Retire the current generation: the previous table's keys (older
    /// than `2 * window` insertions) are forgotten wholesale.
    fn rotate(&mut self) {
        std::mem::swap(&mut self.current, &mut self.previous);
        self.current.fill(EMPTY);
        self.in_current = 0;
    }
}

/// A validating adapter over any [`EdgeStream`] (see module docs).
///
/// Drive it with [`GuardedStream::try_next_edge`] to surface
/// [`StreamError`]s, or through the plain [`EdgeStream`] interface —
/// there a Strict failure ends the stream early and the stored error is
/// available from [`GuardedStream::error`].
///
/// The guard is generic over a [`Recorder`]; the default
/// [`NoopRecorder`] keeps the clean-stream hot path exactly as fast as
/// an unobserved guard, while [`GuardedStream::with_recorder`] attaches
/// a sink that counts violations by kind and policy outcome.
#[derive(Debug)]
pub struct GuardedStream<S, R = NoopRecorder> {
    inner: S,
    rec: R,
    cfg: GuardConfig,
    m: usize,
    n: usize,
    declared: Option<usize>,
    /// Delivered-count threshold at which Repair starts clamping:
    /// `declared` under [`GuardPolicy::Repair`] with a known length,
    /// `usize::MAX` otherwise — one compare on the per-edge hot path.
    clamp_at: usize,
    dedup: DedupWindow,
    /// Running counters. `edges_in` is *not* maintained here — it always
    /// equals `pos`, so [`GuardedStream::report`] fills it on read and the
    /// hot path pays for one counter, not two. The delivered count is
    /// likewise derived: `edges_ok`, plus `edges_rejected` under
    /// [`GuardPolicy::Observe`] (the only policy that delivers anomalies).
    report: GuardReport,
    /// Position (0-based) of the next incoming edge.
    pos: usize,
    error: Option<StreamError>,
    ended: bool,
    meter: SpaceMeter,
}

impl<S: EdgeStream> GuardedStream<S> {
    /// Guard `inner` for an instance with `m` sets and `n` elements.
    pub fn new(inner: S, m: usize, n: usize, cfg: GuardConfig) -> Self {
        let declared = inner.len_hint();
        let dedup = DedupWindow::new(cfg.dedup_window);
        let mut meter = SpaceMeter::new();
        // Guard state is fixed at construction: the dedup tables plus the
        // counter block (GuardReport is 10 words on a 64-bit target).
        let guard_words = dedup.words() + 10;
        meter.charge(SpaceComponent::Guard, guard_words);
        let report = GuardReport {
            guard_words,
            ..GuardReport::default()
        };
        let clamp_at = match (cfg.policy, declared) {
            (GuardPolicy::Repair, Some(d)) => d,
            _ => usize::MAX,
        };
        GuardedStream {
            inner,
            rec: NoopRecorder,
            cfg,
            m,
            n,
            declared,
            clamp_at,
            dedup,
            report,
            pos: 0,
            error: None,
            ended: false,
            meter,
        }
    }
}

impl<S: EdgeStream, R: Recorder> GuardedStream<S, R> {
    /// Attach an instrumentation sink, replacing the current one. Call
    /// before draining: violation counters recorded so far stay in the
    /// old recorder.
    pub fn with_recorder<R2: Recorder>(self, rec: R2) -> GuardedStream<S, R2> {
        GuardedStream {
            inner: self.inner,
            rec,
            cfg: self.cfg,
            m: self.m,
            n: self.n,
            declared: self.declared,
            clamp_at: self.clamp_at,
            dedup: self.dedup,
            report: self.report,
            pos: self.pos,
            error: self.error,
            ended: self.ended,
            meter: self.meter,
        }
    }

    /// Pull the next validated edge, or the violation that stopped the
    /// stream. `Ok(None)` means a clean end of stream (after a Strict
    /// failure the stream stays ended and keeps returning the error).
    #[inline]
    pub fn try_next_edge(&mut self) -> Result<Option<Edge>, StreamError> {
        // A stored error implies `ended`, so one branch covers both.
        if self.ended {
            return match self.error {
                Some(e) => Err(e),
                None => Ok(None),
            };
        }
        loop {
            // Repair clamps to the declared length (edges_ok is the
            // delivered count under Repair; clamp_at is MAX otherwise).
            if self.report.edges_ok >= self.clamp_at {
                return self.clamp_excess();
            }
            let Some(e) = self.inner.next_edge() else {
                return self.end();
            };
            let pos = self.pos;
            self.pos += 1;
            if e.set.index() < self.m && e.elem.index() < self.n {
                let key = ((e.set.0 as u64) << 32) | e.elem.0 as u64;
                if !self.dedup.seen_or_insert(key) {
                    self.report.edges_ok += 1;
                    return Ok(Some(e));
                }
                match self.on_duplicate(e, pos)? {
                    Some(e) => return Ok(Some(e)),
                    None => continue,
                }
            }
            match self.on_out_of_range(e, pos)? {
                Some(e) => return Ok(Some(e)),
                None => continue,
            }
        }
    }

    /// Repair-policy clamp: the declared length has been delivered, so
    /// any remaining inner edges are excess (duplicates/replays) and are
    /// drained as repaired to keep the length ledger honest.
    #[cold]
    fn clamp_excess(&mut self) -> Result<Option<Edge>, StreamError> {
        let mut drained = 0u64;
        while self.inner.next_edge().is_some() {
            self.report.edges_repaired += 1;
            self.pos += 1;
            drained += 1;
        }
        if drained > 0 {
            self.rec.counter(Metric::GuardRepaired, drained);
            self.rec
                .event("guard.clamp_excess", self.pos as u64, drained);
        }
        self.end()
    }

    /// React to an edge whose set or element id is out of range.
    #[cold]
    fn on_out_of_range(&mut self, e: Edge, pos: usize) -> Result<Option<Edge>, StreamError> {
        let err = if e.set.index() >= self.m {
            self.report.set_out_of_range += 1;
            self.rec.counter(Metric::GuardSetOutOfRange, 1);
            self.rec
                .event("guard.set_out_of_range", pos as u64, e.set.0 as u64);
            StreamError::SetOutOfRange {
                pos,
                set: e.set,
                m: self.m,
            }
        } else {
            self.report.elem_out_of_range += 1;
            self.rec.counter(Metric::GuardElemOutOfRange, 1);
            self.rec
                .event("guard.elem_out_of_range", pos as u64, e.elem.0 as u64);
            StreamError::ElemOutOfRange {
                pos,
                elem: e.elem,
                n: self.n,
            }
        };
        self.react(e, err)
    }

    /// React to an edge the dedup window has seen before.
    #[cold]
    fn on_duplicate(&mut self, e: Edge, pos: usize) -> Result<Option<Edge>, StreamError> {
        self.report.duplicates += 1;
        self.rec.counter(Metric::GuardDuplicates, 1);
        self.rec.event(
            "guard.duplicate",
            pos as u64,
            ((e.set.0 as u64) << 32) | e.elem.0 as u64,
        );
        self.react(
            e,
            StreamError::DuplicateEdge {
                pos,
                set: e.set,
                elem: e.elem,
            },
        )
    }

    /// Apply the policy to an anomaly: `Err` stops the stream (Strict),
    /// `Ok(None)` swallows the edge (Repair), `Ok(Some)` delivers it
    /// anyway (Observe).
    fn react(&mut self, e: Edge, err: StreamError) -> Result<Option<Edge>, StreamError> {
        match self.cfg.policy {
            GuardPolicy::Strict => self.fail(err),
            GuardPolicy::Repair => {
                self.report.edges_repaired += 1;
                self.rec.counter(Metric::GuardRepaired, 1);
                Ok(None)
            }
            GuardPolicy::Observe => {
                self.report.edges_rejected += 1;
                self.rec.counter(Metric::GuardRejected, 1);
                Ok(Some(e))
            }
        }
    }

    /// Edges handed to the consumer so far: the clean ones, plus — under
    /// Observe, the only policy that delivers anomalies — the rejected.
    fn delivered(&self) -> usize {
        self.report.edges_ok
            + if self.cfg.policy == GuardPolicy::Observe {
                self.report.edges_rejected
            } else {
                0
            }
    }

    fn end(&mut self) -> Result<Option<Edge>, StreamError> {
        if !self.ended {
            self.ended = true;
            if let Some(d) = self.declared {
                // Compare what the consumer received: under Strict and
                // Observe this equals the raw arrival count, and under
                // Repair it is the post-repair count — a clamped stream
                // that hit its declared length has restored the contract.
                let delivered = self.delivered();
                if delivered != d {
                    self.report.length_mismatch = Some((d, delivered));
                    self.rec.counter(Metric::GuardLengthMismatch, 1);
                    self.rec
                        .event("guard.length_mismatch", d as u64, delivered as u64);
                    if self.cfg.policy == GuardPolicy::Strict {
                        let e = StreamError::LengthMismatch {
                            declared: d,
                            delivered,
                        };
                        self.error = Some(e);
                        return Err(e);
                    }
                }
            }
        }
        Ok(None)
    }

    fn fail(&mut self, e: StreamError) -> Result<Option<Edge>, StreamError> {
        self.report.edges_rejected += 1;
        self.rec.counter(Metric::GuardRejected, 1);
        self.rec.counter(Metric::GuardFailed, 1);
        self.error = Some(e);
        self.ended = true;
        Err(e)
    }

    /// The violation that stopped a Strict stream, if any.
    pub fn error(&self) -> Option<StreamError> {
        self.error
    }

    /// Counters so far (complete once the stream is drained).
    pub fn report(&self) -> GuardReport {
        let mut r = self.report;
        // Derived on read so the per-edge hot path maintains one counter.
        r.edges_in = self.pos;
        r
    }

    /// Space consumed by guard-owned state, charged to
    /// [`SpaceComponent::Guard`].
    pub fn space(&self) -> SpaceReport {
        self.meter.report()
    }

    /// The wrapped stream.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding guard state.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EdgeStream, R: Recorder> EdgeStream for GuardedStream<S, R> {
    /// [`EdgeStream`] view: a Strict violation ends the stream early;
    /// callers using this interface must check [`GuardedStream::error`]
    /// after draining (the `run_guarded` driver does this for you).
    #[inline]
    fn next_edge(&mut self) -> Option<Edge> {
        self.try_next_edge().unwrap_or(None)
    }

    fn len_hint(&self) -> Option<usize> {
        self.declared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ElemId, SetId};
    use crate::instance::InstanceBuilder;
    use crate::stream::chaos::{ChaosConfig, ChaosStream, FaultKind};
    use crate::stream::{order_edges, StreamOrder, VecStream};

    fn inst() -> crate::instance::SetCoverInstance {
        let mut b = InstanceBuilder::new(5, 10);
        for s in 0..5u32 {
            b.add_set_elems(s, (0..4u32).map(|k| (s * 2 + k) % 10));
        }
        b.build().unwrap()
    }

    fn edge(s: u32, u: u32) -> Edge {
        Edge {
            set: SetId(s),
            elem: ElemId(u),
        }
    }

    #[test]
    fn clean_stream_passes_untouched_under_every_policy() {
        let i = inst();
        let edges = order_edges(&i, StreamOrder::Uniform(3));
        for cfg in [
            GuardConfig::strict(),
            GuardConfig::repair(),
            GuardConfig::observe(),
        ] {
            let mut g = GuardedStream::new(VecStream::new(edges.clone()), i.m(), i.n(), cfg);
            let mut out = Vec::new();
            while let Some(e) = g.try_next_edge().expect("clean stream") {
                out.push(e);
            }
            assert_eq!(out, edges);
            let r = g.report();
            assert_eq!(r.edges_ok, edges.len());
            assert_eq!(r.edges_repaired, 0);
            assert_eq!(r.edges_rejected, 0);
            assert_eq!(r.length_mismatch, None);
            assert!(g.error().is_none());
        }
    }

    #[test]
    fn strict_fails_at_the_offending_position() {
        let edges = vec![edge(0, 1), edge(1, 2), edge(9, 3), edge(2, 4)];
        let mut g = GuardedStream::new(VecStream::new(edges), 5, 10, GuardConfig::strict());
        assert!(g.try_next_edge().unwrap().is_some());
        assert!(g.try_next_edge().unwrap().is_some());
        let err = g.try_next_edge().unwrap_err();
        assert_eq!(
            err,
            StreamError::SetOutOfRange {
                pos: 2,
                set: SetId(9),
                m: 5
            }
        );
        // The error is sticky.
        assert_eq!(g.try_next_edge().unwrap_err(), err);
        assert_eq!(g.error(), Some(err));
    }

    #[test]
    fn strict_catches_adjacent_duplicates() {
        let edges = vec![edge(0, 1), edge(0, 1)];
        let mut g = GuardedStream::new(VecStream::new(edges), 5, 10, GuardConfig::strict());
        assert!(g.try_next_edge().unwrap().is_some());
        let err = g.try_next_edge().unwrap_err();
        assert_eq!(
            err,
            StreamError::DuplicateEdge {
                pos: 1,
                set: SetId(0),
                elem: ElemId(1)
            }
        );
    }

    #[test]
    fn strict_reports_length_mismatch_at_end() {
        // VecStream declares its true length; drop an edge by declaring
        // via a chaos truncation instead: use a raw VecStream whose
        // len_hint is honest, then guard a chaos-truncated stream.
        let i = inst();
        let edges = order_edges(&i, StreamOrder::Uniform(1));
        let chaos = ChaosStream::new(
            VecStream::new(edges.clone()),
            i.m(),
            i.n(),
            ChaosConfig::uniform(FaultKind::Truncate, 0.5, 3),
        );
        let mut g = GuardedStream::new(chaos, i.m(), i.n(), GuardConfig::strict());
        let err = loop {
            match g.try_next_edge() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("strict must flag the truncation"),
                Err(e) => break e,
            }
        };
        assert_eq!(
            err,
            StreamError::LengthMismatch {
                declared: edges.len(),
                delivered: edges.len() / 2,
            }
        );
    }

    #[test]
    fn repair_drops_bad_ids_and_dedups() {
        let edges = vec![
            edge(0, 1),
            edge(9, 2),  // set oob
            edge(1, 42), // elem oob
            edge(0, 1),  // duplicate
            edge(2, 3),
        ];
        let mut g = GuardedStream::new(VecStream::new(edges), 5, 10, GuardConfig::repair());
        let mut out = Vec::new();
        while let Some(e) = g.try_next_edge().expect("repair never errors") {
            out.push(e);
        }
        assert_eq!(out, vec![edge(0, 1), edge(2, 3)]);
        let r = g.report();
        assert_eq!(r.edges_in, 5);
        assert_eq!(r.edges_ok, 2);
        assert_eq!(r.edges_repaired, 3);
        assert_eq!(r.edges_rejected, 0);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.set_out_of_range, 1);
        assert_eq!(r.elem_out_of_range, 1);
    }

    #[test]
    fn repair_clamps_to_declared_length() {
        let i = inst();
        let edges = order_edges(&i, StreamOrder::Uniform(2));
        // Heavy adjacent duplication: delivered stays at declared length.
        let chaos = ChaosStream::new(
            VecStream::new(edges.clone()),
            i.m(),
            i.n(),
            ChaosConfig::uniform(FaultKind::DuplicateAdjacent, 0.5, 4),
        );
        let mut g = GuardedStream::new(
            chaos,
            i.m(),
            i.n(),
            GuardConfig::repair().with_dedup_window(0),
        );
        let mut out = Vec::new();
        while let Some(e) = g.try_next_edge().unwrap() {
            out.push(e);
        }
        assert!(out.len() <= edges.len(), "clamped to declared length");
        let r = g.report();
        assert!(r.edges_repaired > 0, "excess edges drained as repaired");
        assert_eq!(r.length_mismatch, None, "clamp restores the contract");
    }

    #[test]
    fn observe_passes_anomalies_through_and_counts() {
        let edges = vec![edge(0, 1), edge(9, 2), edge(0, 1)];
        let mut g =
            GuardedStream::new(VecStream::new(edges.clone()), 5, 10, GuardConfig::observe());
        let mut out = Vec::new();
        while let Some(e) = g.try_next_edge().unwrap() {
            out.push(e);
        }
        assert_eq!(out, edges, "observe must not alter the stream");
        let r = g.report();
        assert_eq!(r.edges_ok, 1);
        assert_eq!(r.edges_rejected, 2);
        assert_eq!(r.set_out_of_range, 1);
        assert_eq!(r.duplicates, 1);
    }

    #[test]
    fn dedup_window_catches_within_and_forgets_beyond() {
        let w = 4;
        let mut g = GuardedStream::new(
            VecStream::new(Vec::new()),
            100,
            100,
            GuardConfig::repair().with_dedup_window(w),
        );
        // Direct window exercise: distance <= w always caught.
        assert!(!g.dedup.seen_or_insert(1));
        assert!(!g.dedup.seen_or_insert(2));
        assert!(!g.dedup.seen_or_insert(3));
        assert!(!g.dedup.seen_or_insert(4));
        assert!(g.dedup.seen_or_insert(1), "distance 4 = w is caught");
        // Push 2w fresh keys: key 1 must be gone.
        for k in 10..(10 + 2 * w as u64) {
            g.dedup.seen_or_insert(k);
        }
        assert!(!g.dedup.seen_or_insert(1), "beyond 2w is forgotten");
    }

    #[test]
    fn guard_space_is_charged_to_the_guard_component() {
        let i = inst();
        let edges = order_edges(&i, StreamOrder::Uniform(5));
        let g = GuardedStream::new(VecStream::new(edges), i.m(), i.n(), GuardConfig::repair());
        let sp = g.space();
        assert!(sp.peak_of(SpaceComponent::Guard) > 0);
        assert_eq!(sp.peak_of(SpaceComponent::Guard), g.report().guard_words);
        // Guard state counts toward the algorithmic footprint.
        assert!(sp.algorithmic_peak_words() >= sp.peak_of(SpaceComponent::Guard));
    }

    #[test]
    fn recorder_counts_violations_by_kind_and_outcome() {
        use crate::obs::{Metric, MetricsRecorder};
        let edges = vec![
            edge(0, 1),
            edge(9, 2),  // set oob
            edge(1, 42), // elem oob
            edge(0, 1),  // duplicate
            edge(2, 3),
        ];
        let mut rec = MetricsRecorder::with_trace();
        {
            let mut g =
                GuardedStream::new(VecStream::new(edges.clone()), 5, 10, GuardConfig::repair())
                    .with_recorder(&mut rec);
            while g.try_next_edge().expect("repair never errors").is_some() {}
        }
        assert_eq!(rec.counter_value(Metric::GuardDuplicates), 1);
        assert_eq!(rec.counter_value(Metric::GuardSetOutOfRange), 1);
        assert_eq!(rec.counter_value(Metric::GuardElemOutOfRange), 1);
        assert_eq!(rec.counter_value(Metric::GuardRepaired), 3);
        assert_eq!(rec.counter_value(Metric::GuardRejected), 0);
        // Mismatch: 5 arrived, 2 delivered (VecStream declares 5).
        assert_eq!(rec.counter_value(Metric::GuardLengthMismatch), 1);
        // Each violation left a positioned trace event.
        let names: Vec<&str> = rec.events().iter().map(|e| e.name).collect();
        assert!(names.contains(&"guard.duplicate"));
        assert!(names.contains(&"guard.set_out_of_range"));
        assert!(names.contains(&"guard.elem_out_of_range"));
        assert!(names.contains(&"guard.length_mismatch"));

        // Strict: the fatal edge is both rejected and failed.
        let mut rec = MetricsRecorder::new();
        {
            let mut g = GuardedStream::new(
                VecStream::new(vec![edge(0, 1), edge(0, 1)]),
                5,
                10,
                GuardConfig::strict(),
            )
            .with_recorder(&mut rec);
            assert!(g.try_next_edge().unwrap().is_some());
            assert!(g.try_next_edge().is_err());
        }
        assert_eq!(rec.counter_value(Metric::GuardRejected), 1);
        assert_eq!(rec.counter_value(Metric::GuardFailed), 1);
    }

    #[test]
    fn edgestream_view_swallows_strict_error_but_stores_it() {
        let edges = vec![edge(0, 1), edge(0, 1), edge(2, 3)];
        let mut g = GuardedStream::new(VecStream::new(edges), 5, 10, GuardConfig::strict());
        let mut out = Vec::new();
        while let Some(e) = g.next_edge() {
            out.push(e);
        }
        assert_eq!(out.len(), 1, "stream ends at the violation");
        assert!(matches!(
            g.error(),
            Some(StreamError::DuplicateEdge { pos: 1, .. })
        ));
    }
}
