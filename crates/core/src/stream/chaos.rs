//! Deterministic fault injection for edge streams.
//!
//! The paper's model promises each edge `(S, u)` arrives exactly once and
//! the stream completes. A production edge-arrival service gets
//! at-least-once delivery, truncated connections and corrupt records.
//! [`ChaosStream`] wraps any [`EdgeStream`] and injects a configurable
//! fault mix, with every fault drawn deterministically from the config
//! seed — the same `(inner stream, config)` pair always produces the same
//! delivered sequence and the same [`FaultLog`], so every chaos run is
//! replayable bit-for-bit.
//!
//! Fault kinds ([`FaultKind`]):
//!
//! * **Duplication** — adjacent (the copy follows immediately: retry storms)
//!   and delayed replay (the copy resurfaces up to
//!   [`ChaosConfig::max_delay`] input positions later: redelivery after a
//!   timeout).
//! * **Drop** — the edge never arrives.
//! * **Truncation** — the stream dies after a fraction of its declared
//!   length (connection loss); scheduled replays die with it.
//! * **Id corruption** — set or element index rewritten out of range, or
//!   the two ids swapped (which may stay in range — a silent corruption).
//! * **Burst reordering** — a window of consecutive edges is reordered by
//!   sorting on `(set, elem)`. Sorting (rather than shuffling) is the
//!   *worst-case* reordering for random-order guarantees: it locally
//!   recreates set-contiguous runs, breaking the exchangeability Theorem 3
//!   relies on while leaving adversarial-order guarantees (Theorems 1, 4)
//!   untouched.
//! * **Declared-N mismatch** — [`EdgeStream::len_hint`] lies by a factor.
//!
//! The ledger records each fault at the **output** position where it
//! manifests (what a downstream [`crate::stream::guard::GuardedStream`]
//! observes), which lets tests assert that `Strict` guarding flags exactly
//! the injected faults.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::RngExt;

use crate::ids::{ElemId, SetId};
use crate::instance::Edge;
use crate::rng::{coin, seeded_rng};
use crate::stream::EdgeStream;

/// The kinds of faults [`ChaosStream`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The edge is emitted twice in a row.
    DuplicateAdjacent,
    /// The edge is re-emitted after a bounded delay.
    DuplicateDelayed,
    /// The edge is dropped.
    Drop,
    /// The set id is rewritten out of range (`>= m`).
    CorruptSet,
    /// The element id is rewritten out of range (`>= n`).
    CorruptElem,
    /// Set and element ids are swapped (may stay in range).
    SwapIds,
    /// A window of consecutive output edges is reordered (sorted).
    Reorder,
    /// The stream dies after a fraction of its input.
    Truncate,
    /// `len_hint` declares a wrong length.
    MisdeclaredN,
}

impl FaultKind {
    /// All fault kinds, for sweep iteration.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::DuplicateAdjacent,
        FaultKind::DuplicateDelayed,
        FaultKind::Drop,
        FaultKind::CorruptSet,
        FaultKind::CorruptElem,
        FaultKind::SwapIds,
        FaultKind::Reorder,
        FaultKind::Truncate,
        FaultKind::MisdeclaredN,
    ];

    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DuplicateAdjacent => "dup-adjacent",
            FaultKind::DuplicateDelayed => "dup-delayed",
            FaultKind::Drop => "drop",
            FaultKind::CorruptSet => "corrupt-set",
            FaultKind::CorruptElem => "corrupt-elem",
            FaultKind::SwapIds => "swap-ids",
            FaultKind::Reorder => "reorder",
            FaultKind::Truncate => "truncate",
            FaultKind::MisdeclaredN => "misdeclared-n",
        }
    }
}

/// One injected fault: `kind` manifested at output position `pos` (the
/// 0-based index in the chaos stream's *output*, i.e. what a downstream
/// consumer observes). For [`FaultKind::Drop`] it is the position the
/// dropped edge would have occupied.
///
/// `detail` is kind-specific context: the scheduled delay for delayed
/// duplicates, the corrupted raw id for corruptions, the window length for
/// reorder bursts, the number of input edges cut for truncation, and the
/// lied length for declared-N mismatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Output position where the fault manifests.
    pub pos: usize,
    /// What was done.
    pub kind: FaultKind,
    /// Kind-specific detail (see type docs).
    pub detail: u64,
}

/// The injected-fault ledger: every fault a [`ChaosStream`] performed, in
/// the order it manifested. Byte-identical across replays of the same
/// `(inner stream, config)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    records: Vec<FaultRecord>,
}

impl FaultLog {
    /// All records, in manifestation order.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Number of recorded faults.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no fault was injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of recorded faults of one kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// The first record of one kind, if any.
    pub fn first(&self, kind: FaultKind) -> Option<&FaultRecord> {
        self.records.iter().find(|r| r.kind == kind)
    }

    fn push(&mut self, pos: usize, kind: FaultKind, detail: u64) {
        self.records.push(FaultRecord { pos, kind, detail });
    }
}

/// Fault-mix configuration for a [`ChaosStream`]. All probabilities are
/// per input edge and independent; `0.0` disables a fault kind without
/// consuming any randomness for it, so adding a new knob at rate 0 does
/// not perturb existing seeded trajectories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for all fault draws.
    pub seed: u64,
    /// Per-edge probability of an adjacent duplicate.
    pub dup_adjacent: f64,
    /// Per-edge probability of a delayed replay.
    pub dup_delayed: f64,
    /// Maximum replay delay, in input positions (`>= 1`).
    pub max_delay: usize,
    /// Per-edge probability of dropping the edge.
    pub drop: f64,
    /// Per-edge probability of rewriting the set id out of range.
    pub corrupt_set: f64,
    /// Per-edge probability of rewriting the element id out of range.
    pub corrupt_elem: f64,
    /// Per-edge probability of swapping set and element ids.
    pub swap_ids: f64,
    /// Per-edge probability of starting a reorder burst.
    pub reorder: f64,
    /// Length of a reorder burst, in output edges (`>= 2` to matter).
    pub reorder_window: usize,
    /// Deliver only this fraction of the input, then die (`None` = no
    /// truncation; requires the inner stream to know its length).
    pub truncate_at: Option<f64>,
    /// Multiply the declared `len_hint` by this factor (`None` = honest).
    pub declared_factor: Option<f64>,
}

impl ChaosConfig {
    /// A fault-free configuration (the identity adapter) with default
    /// windows: `max_delay = 16`, `reorder_window = 8`.
    pub fn clean(seed: u64) -> Self {
        ChaosConfig {
            seed,
            dup_adjacent: 0.0,
            dup_delayed: 0.0,
            max_delay: 16,
            drop: 0.0,
            corrupt_set: 0.0,
            corrupt_elem: 0.0,
            swap_ids: 0.0,
            reorder: 0.0,
            reorder_window: 8,
            truncate_at: None,
            declared_factor: None,
        }
    }

    /// A single-kind fault mix at `rate`, for sweeps: sets the one knob
    /// for `kind` and leaves everything else clean. For
    /// [`FaultKind::Truncate`] the delivered fraction is `1 - rate`; for
    /// [`FaultKind::MisdeclaredN`] the declared length is scaled by
    /// `1 + rate`.
    pub fn uniform(kind: FaultKind, rate: f64, seed: u64) -> Self {
        let mut cfg = ChaosConfig::clean(seed);
        match kind {
            FaultKind::DuplicateAdjacent => cfg.dup_adjacent = rate,
            FaultKind::DuplicateDelayed => cfg.dup_delayed = rate,
            FaultKind::Drop => cfg.drop = rate,
            FaultKind::CorruptSet => cfg.corrupt_set = rate,
            FaultKind::CorruptElem => cfg.corrupt_elem = rate,
            FaultKind::SwapIds => cfg.swap_ids = rate,
            FaultKind::Reorder => cfg.reorder = rate,
            FaultKind::Truncate => cfg.truncate_at = Some((1.0 - rate).clamp(0.0, 1.0)),
            FaultKind::MisdeclaredN => cfg.declared_factor = Some(1.0 + rate),
        }
        cfg
    }
}

/// A seeded, composable fault-injection adapter over any [`EdgeStream`].
///
/// Construction needs the instance's public parameters `(m, n)` so id
/// corruption can produce *out-of-range* ids deterministically. The
/// declared length ([`EdgeStream::len_hint`]) is the inner stream's —
/// scaled if [`ChaosConfig::declared_factor`] lies — and deliberately does
/// **not** account for injected drops/duplicates/truncation: the lie is
/// the fault, and a downstream guard is supposed to catch the mismatch.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    cfg: ChaosConfig,
    rng: SmallRng,
    m: usize,
    n: usize,
    /// The length the stream declares to consumers.
    declared: Option<usize>,
    /// True input length, if known.
    inner_len: Option<usize>,
    /// Stop pulling after this many input edges (truncation).
    take_limit: Option<usize>,
    /// Input edges pulled so far.
    consumed: usize,
    /// Output edges already handed to the consumer.
    emitted: usize,
    /// Edges ready for delivery.
    queue: VecDeque<Edge>,
    /// Scheduled replays: `(due input position, delay, edge)`.
    delayed: Vec<(usize, usize, Edge)>,
    /// Output slots left to fill before the pending burst is reordered.
    burst_pending: usize,
    /// Queue index where the pending burst starts.
    burst_start: usize,
    log: FaultLog,
    exhausted: bool,
}

impl<S: EdgeStream> ChaosStream<S> {
    /// Wrap `inner` for an instance with `m` sets and `n` elements.
    pub fn new(inner: S, m: usize, n: usize, cfg: ChaosConfig) -> Self {
        let inner_len = inner.len_hint();
        let take_limit = match (cfg.truncate_at, inner_len) {
            (Some(frac), Some(len)) => Some((frac * len as f64).floor() as usize),
            _ => None,
        };
        let mut log = FaultLog::default();
        let declared = match (cfg.declared_factor, inner_len) {
            (Some(factor), Some(len)) => {
                let lied = (len as f64 * factor).round().max(0.0) as usize;
                if lied != len {
                    log.push(0, FaultKind::MisdeclaredN, lied as u64);
                }
                Some(lied)
            }
            _ => inner_len,
        };
        ChaosStream {
            inner,
            rng: seeded_rng(cfg.seed),
            cfg,
            m,
            n,
            declared,
            inner_len,
            take_limit,
            consumed: 0,
            emitted: 0,
            queue: VecDeque::new(),
            delayed: Vec::new(),
            burst_pending: 0,
            burst_start: 0,
            log,
            exhausted: false,
        }
    }

    /// The injected-fault ledger so far (complete once the stream is
    /// drained).
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Drain the stream, returning the delivered sequence and the complete
    /// ledger.
    pub fn drain(mut self) -> (Vec<Edge>, FaultLog) {
        let mut out = Vec::new();
        while let Some(e) = self.next_edge() {
            out.push(e);
        }
        (out, self.log)
    }

    /// Output position the next pushed edge will occupy.
    fn out_pos(&self) -> usize {
        self.emitted + self.queue.len()
    }

    fn push_out(&mut self, e: Edge) {
        self.queue.push_back(e);
        if self.burst_pending > 0 {
            self.burst_pending -= 1;
            if self.burst_pending == 0 {
                self.apply_burst();
            }
        }
    }

    /// Reorder the pending burst: sort `queue[burst_start..]` by
    /// `(set, elem)` — the adversarial reordering (see module docs).
    fn apply_burst(&mut self) {
        self.burst_pending = 0;
        let start = self.burst_start;
        if start >= self.queue.len() {
            return;
        }
        let slice = self.queue.make_contiguous();
        slice[start..].sort_unstable_by_key(|e| (e.set.0, e.elem.0));
    }

    /// Release scheduled replays due at the current input position.
    fn release_due_replays(&mut self) {
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= self.consumed {
                let (_, delay, e) = self.delayed.remove(i);
                self.log
                    .push(self.out_pos(), FaultKind::DuplicateDelayed, delay as u64);
                self.push_out(e);
            } else {
                i += 1;
            }
        }
    }

    /// End the stream: `flush_replays` decides whether scheduled replays
    /// still surface (natural end) or die with the connection (truncation).
    fn finish(&mut self, flush_replays: bool) {
        if flush_replays {
            // Release in due order for determinism.
            self.delayed.sort_by_key(|&(due, _, _)| due);
            let pending = std::mem::take(&mut self.delayed);
            for (_, delay, e) in pending {
                self.log
                    .push(self.out_pos(), FaultKind::DuplicateDelayed, delay as u64);
                self.push_out(e);
            }
        } else {
            self.delayed.clear();
        }
        if self.burst_pending > 0 {
            // Stream ended mid-burst: reorder whatever the burst captured.
            self.apply_burst();
        }
        self.exhausted = true;
    }

    /// Process one input event (replays due, truncation check, one inner
    /// pull with fault draws).
    fn step(&mut self) {
        self.release_due_replays();
        if let Some(limit) = self.take_limit {
            if self.consumed >= limit {
                if let Some(len) = self.inner_len {
                    let cut = len.saturating_sub(limit);
                    if cut > 0 {
                        self.log
                            .push(self.out_pos(), FaultKind::Truncate, cut as u64);
                    }
                }
                self.finish(false);
                return;
            }
        }
        let Some(e) = self.inner.next_edge() else {
            self.finish(true);
            return;
        };
        self.consumed += 1;

        if coin(&mut self.rng, self.cfg.drop) {
            let packed = ((e.set.0 as u64) << 32) | e.elem.0 as u64;
            self.log.push(self.out_pos(), FaultKind::Drop, packed);
            return;
        }

        let mut e = e;
        if coin(&mut self.rng, self.cfg.corrupt_set) {
            let bad = SetId((self.m + self.rng.random_range(0..self.m.max(1))) as u32);
            self.log
                .push(self.out_pos(), FaultKind::CorruptSet, bad.0 as u64);
            e.set = bad;
        } else if coin(&mut self.rng, self.cfg.corrupt_elem) {
            let bad = ElemId((self.n + self.rng.random_range(0..self.n.max(1))) as u32);
            self.log
                .push(self.out_pos(), FaultKind::CorruptElem, bad.0 as u64);
            e.elem = bad;
        } else if coin(&mut self.rng, self.cfg.swap_ids) {
            self.log.push(self.out_pos(), FaultKind::SwapIds, 0);
            e = Edge {
                set: SetId(e.elem.0),
                elem: ElemId(e.set.0),
            };
        }

        let burst_candidate = self.burst_pending == 0
            && self.cfg.reorder_window >= 2
            && coin(&mut self.rng, self.cfg.reorder);
        if burst_candidate {
            self.log.push(
                self.out_pos(),
                FaultKind::Reorder,
                self.cfg.reorder_window as u64,
            );
            self.burst_start = self.queue.len();
            self.burst_pending = self.cfg.reorder_window;
        }

        self.push_out(e);

        if coin(&mut self.rng, self.cfg.dup_adjacent) {
            self.log
                .push(self.out_pos(), FaultKind::DuplicateAdjacent, 1);
            self.push_out(e);
        }
        if coin(&mut self.rng, self.cfg.dup_delayed) {
            let delay = 1 + self.rng.random_range(0..self.cfg.max_delay.max(1));
            self.delayed.push((self.consumed + delay, delay, e));
        }
    }

    fn refill(&mut self) {
        // Keep stepping while empty, and while a burst is being captured —
        // a burst must be fully collected (or the stream must end) before
        // any of its edges are handed out, so the reorder can be applied.
        while !self.exhausted && (self.queue.is_empty() || self.burst_pending > 0) {
            self.step();
        }
    }
}

impl<S: EdgeStream> EdgeStream for ChaosStream<S> {
    fn next_edge(&mut self) -> Option<Edge> {
        if self.queue.is_empty() || self.burst_pending > 0 {
            self.refill();
        }
        let e = self.queue.pop_front();
        if e.is_some() {
            self.emitted += 1;
        }
        e
    }

    fn len_hint(&self) -> Option<usize> {
        self.declared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::stream::{order_edges, stream_of, StreamOrder, VecStream};

    fn small_inst() -> crate::instance::SetCoverInstance {
        let mut b = InstanceBuilder::new(6, 12);
        for s in 0..6u32 {
            b.add_set_elems(s, (0..4u32).map(|k| (s * 2 + k) % 12));
        }
        b.build().unwrap()
    }

    #[test]
    fn clean_config_is_the_identity_adapter() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(3));
        let chaos = ChaosStream::new(
            VecStream::new(edges.clone()),
            inst.m(),
            inst.n(),
            ChaosConfig::clean(7),
        );
        assert_eq!(chaos.len_hint(), Some(edges.len()));
        let (delivered, log) = chaos.drain();
        assert_eq!(delivered, edges);
        assert!(log.is_empty());
    }

    #[test]
    fn chaos_is_seed_reproducible() {
        let inst = small_inst();
        let mut cfg = ChaosConfig::clean(42);
        cfg.dup_adjacent = 0.2;
        cfg.dup_delayed = 0.2;
        cfg.drop = 0.1;
        cfg.corrupt_set = 0.05;
        cfg.reorder = 0.1;
        let run = |seed| {
            let mut c = cfg;
            c.seed = seed;
            ChaosStream::new(
                stream_of(&inst, StreamOrder::Uniform(9)),
                inst.m(),
                inst.n(),
                c,
            )
            .drain()
        };
        let (d1, l1) = run(42);
        let (d2, l2) = run(42);
        assert_eq!(d1, d2, "delivered sequence must be byte-identical");
        assert_eq!(l1, l2, "fault ledger must be byte-identical");
        let (d3, l3) = run(43);
        assert!(d1 != d3 || l1 != l3, "a different seed should differ");
    }

    #[test]
    fn adjacent_duplicates_are_adjacent_and_logged() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(1));
        let cfg = ChaosConfig::uniform(FaultKind::DuplicateAdjacent, 0.3, 5);
        let (delivered, log) =
            ChaosStream::new(VecStream::new(edges.clone()), inst.m(), inst.n(), cfg).drain();
        let dups = log.count(FaultKind::DuplicateAdjacent);
        assert!(dups > 0, "rate 0.3 over {} edges", edges.len());
        assert_eq!(delivered.len(), edges.len() + dups);
        for r in log.records() {
            assert_eq!(r.kind, FaultKind::DuplicateAdjacent);
            assert_eq!(
                delivered[r.pos],
                delivered[r.pos - 1],
                "copy must follow the original"
            );
        }
    }

    #[test]
    fn delayed_duplicates_replay_within_the_window() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(2));
        let cfg = ChaosConfig::uniform(FaultKind::DuplicateDelayed, 0.3, 6);
        let (delivered, log) =
            ChaosStream::new(VecStream::new(edges.clone()), inst.m(), inst.n(), cfg).drain();
        let dups = log.count(FaultKind::DuplicateDelayed);
        assert!(dups > 0);
        assert_eq!(delivered.len(), edges.len() + dups);
        for r in log.records() {
            assert!(r.detail >= 1 && r.detail <= cfg.max_delay as u64);
            // The copy at r.pos appeared earlier in the delivered stream.
            let copy = delivered[r.pos];
            assert!(
                delivered[..r.pos].contains(&copy),
                "replayed edge must have an earlier original"
            );
        }
    }

    #[test]
    fn drops_shorten_the_stream_and_are_logged() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(3));
        let cfg = ChaosConfig::uniform(FaultKind::Drop, 0.25, 7);
        let (delivered, log) =
            ChaosStream::new(VecStream::new(edges.clone()), inst.m(), inst.n(), cfg).drain();
        let drops = log.count(FaultKind::Drop);
        assert!(drops > 0);
        assert_eq!(delivered.len(), edges.len() - drops);
    }

    #[test]
    fn truncation_cuts_at_the_declared_fraction() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(4));
        let cfg = ChaosConfig::uniform(FaultKind::Truncate, 0.5, 8);
        let chaos = ChaosStream::new(VecStream::new(edges.clone()), inst.m(), inst.n(), cfg);
        // Truncation does not change the *declared* length — the lie is
        // the point.
        assert_eq!(chaos.len_hint(), Some(edges.len()));
        let (delivered, log) = chaos.drain();
        let limit = edges.len() / 2;
        assert_eq!(delivered, edges[..limit].to_vec());
        let rec = log.first(FaultKind::Truncate).unwrap();
        assert_eq!(rec.pos, limit);
        assert_eq!(rec.detail, (edges.len() - limit) as u64);
    }

    #[test]
    fn corruptions_go_out_of_range() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(5));
        for (kind, check) in [
            (FaultKind::CorruptSet, 0usize),
            (FaultKind::CorruptElem, 1usize),
        ] {
            let cfg = ChaosConfig::uniform(kind, 0.3, 9);
            let (delivered, log) =
                ChaosStream::new(VecStream::new(edges.clone()), inst.m(), inst.n(), cfg).drain();
            assert!(log.count(kind) > 0);
            for r in log.records() {
                let e = delivered[r.pos];
                if check == 0 {
                    assert!(e.set.index() >= inst.m(), "corrupted set must be oob");
                    assert_eq!(e.set.0 as u64, r.detail);
                } else {
                    assert!(e.elem.index() >= inst.n(), "corrupted elem must be oob");
                    assert_eq!(e.elem.0 as u64, r.detail);
                }
            }
        }
    }

    #[test]
    fn reorder_bursts_permute_but_preserve_the_multiset() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(6));
        let cfg = ChaosConfig::uniform(FaultKind::Reorder, 0.2, 10);
        let (delivered, log) =
            ChaosStream::new(VecStream::new(edges.clone()), inst.m(), inst.n(), cfg).drain();
        assert!(log.count(FaultKind::Reorder) > 0);
        assert_eq!(delivered.len(), edges.len());
        let mut a = delivered.clone();
        let mut b = edges.clone();
        a.sort_unstable_by_key(|e| (e.set.0, e.elem.0));
        b.sort_unstable_by_key(|e| (e.set.0, e.elem.0));
        assert_eq!(a, b, "reordering must not create or destroy edges");
        // Each burst window is sorted by (set, elem).
        for r in log.records() {
            let end = (r.pos + r.detail as usize).min(delivered.len());
            let w = &delivered[r.pos..end];
            assert!(
                w.windows(2)
                    .all(|p| (p[0].set.0, p[0].elem.0) <= (p[1].set.0, p[1].elem.0)),
                "burst at {} must be sorted",
                r.pos
            );
        }
    }

    #[test]
    fn misdeclared_n_lies_in_len_hint_only() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(7));
        let cfg = ChaosConfig::uniform(FaultKind::MisdeclaredN, 0.5, 11);
        let chaos = ChaosStream::new(VecStream::new(edges.clone()), inst.m(), inst.n(), cfg);
        let lied = chaos.len_hint().unwrap();
        assert_eq!(lied, (edges.len() as f64 * 1.5).round() as usize);
        let (delivered, log) = chaos.drain();
        assert_eq!(delivered, edges, "the data itself is untouched");
        assert_eq!(log.count(FaultKind::MisdeclaredN), 1);
        assert_eq!(
            log.first(FaultKind::MisdeclaredN).unwrap().detail,
            lied as u64
        );
    }

    #[test]
    fn swapped_ids_are_logged() {
        let inst = small_inst();
        let edges = order_edges(&inst, StreamOrder::Uniform(8));
        let cfg = ChaosConfig::uniform(FaultKind::SwapIds, 0.3, 12);
        let (delivered, log) =
            ChaosStream::new(VecStream::new(edges.clone()), inst.m(), inst.n(), cfg).drain();
        assert!(log.count(FaultKind::SwapIds) > 0);
        assert_eq!(delivered.len(), edges.len());
    }

    #[test]
    fn composed_faults_replay_identically_through_lazy_streams() {
        let inst = small_inst();
        let mut cfg = ChaosConfig::clean(99);
        cfg.dup_adjacent = 0.15;
        cfg.drop = 0.1;
        cfg.reorder = 0.1;
        cfg.truncate_at = Some(0.8);
        let run = || {
            ChaosStream::new(
                stream_of(&inst, StreamOrder::Interleaved),
                inst.m(),
                inst.n(),
                cfg,
            )
            .drain()
        };
        assert_eq!(run(), run());
    }
}
