//! Integer and floating-point helpers shared by the algorithm crates.
//!
//! The paper's parameter schedules are built from `√n`, `log m`, `log n`
//! and powers of two; these helpers centralize the (floor/ceil) conventions
//! so every crate computes them identically.

/// Floor integer square root: the largest `r` with `r² ≤ x`.
pub fn isqrt(x: usize) -> usize {
    if x == 0 {
        return 0;
    }
    let mut r = (x as f64).sqrt() as usize;
    // Correct any floating error in either direction. checked_mul (not
    // saturating_mul) so that x near usize::MAX cannot loop: a saturated
    // product compares `<= x` forever.
    while r.checked_mul(r).is_none_or(|sq| sq > x) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= x) {
        r += 1;
    }
    r
}

/// Ceiling integer square root: the smallest `r` with `r² ≥ x`.
pub fn isqrt_ceil(x: usize) -> usize {
    let r = isqrt(x);
    if r * r == x {
        r
    } else {
        r + 1
    }
}

/// `⌊log₂ x⌋` for `x ≥ 1`.
pub fn ilog2_floor(x: usize) -> u32 {
    debug_assert!(x >= 1);
    usize::BITS - 1 - x.leading_zeros()
}

/// `⌈log₂ x⌉` for `x ≥ 1`.
pub fn ilog2_ceil(x: usize) -> u32 {
    if x <= 1 {
        0
    } else {
        ilog2_floor(x - 1) + 1
    }
}

/// Natural-base `log₂` as a float, with `log2f(0) = 0` for convenience in
/// threshold formulas (the paper always has `m, n ≥ 2` in its regimes).
pub fn log2f(x: usize) -> f64 {
    if x == 0 {
        0.0
    } else {
        (x as f64).log2()
    }
}

/// Natural logarithm as a float, `lnf(0) = 0`.
pub fn lnf(x: usize) -> f64 {
    if x == 0 {
        0.0
    } else {
        (x as f64).ln()
    }
}

/// `log₂(m)` raised to integer power `e` — the paper's poly-log threshold
/// building block (`log⁶ m`, `log⁹ m`, ...).
pub fn polylog(m: usize, e: u32) -> f64 {
    log2f(m).powi(e as i32)
}

/// The approximation ratio of a cover of size `got` against a reference
/// value `opt` (the planted optimum or a lower bound on OPT).
///
/// On the empty instance (`opt == 0`) the empty cover is optimal, so
/// `approx_ratio(0, 0) == 1.0` — degenerate-instance sweeps must not
/// propagate `∞` into summaries. A *non-empty* cover against `opt == 0`
/// still yields `f64::INFINITY`: any sets at all are infinitely worse
/// than needing none.
pub fn approx_ratio(got: usize, opt: usize) -> f64 {
    if opt == 0 {
        if got == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        got as f64 / opt as f64
    }
}

/// Multiplicative Chernoff upper-tail margin: a bound `μ + δ` such that a
/// sum of independent Bernoulli variables with mean `μ` exceeds it with
/// probability at most `fail`. Uses the sub-Gaussian/sub-Poisson form
/// `δ = √(3 μ ln(1/fail)) + 3 ln(1/fail)`, valid for all `μ ≥ 0`.
///
/// Statistical tests use this to pick tolerances that virtually never
/// produce false failures under a pinned seed.
pub fn chernoff_upper(mu: f64, fail: f64) -> f64 {
    let l = (1.0 / fail).ln().max(0.0);
    mu + (3.0 * mu * l).sqrt() + 3.0 * l
}

/// Chernoff lower-tail margin: a bound `μ − δ` that is undershot with
/// probability at most `fail` (clamped at 0).
pub fn chernoff_lower(mu: f64, fail: f64) -> f64 {
    let l = (1.0 / fail).ln().max(0.0);
    (mu - (2.0 * mu * l).sqrt()).max(0.0)
}

/// Harmonic number `H(k) = 1 + 1/2 + ... + 1/k`; `H(0) = 0`. The greedy
/// algorithm's classic guarantee is `H(max |S|) ≤ ln n + 1`.
pub fn harmonic(k: usize) -> f64 {
    (1..=k).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact_squares() {
        for r in 0..200usize {
            assert_eq!(isqrt(r * r), r);
            assert_eq!(isqrt_ceil(r * r), r);
        }
    }

    #[test]
    fn isqrt_between_squares() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(2), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(8), 2);
        assert_eq!(isqrt_ceil(8), 3);
        assert_eq!(isqrt(usize::MAX), 4294967295);
    }

    #[test]
    fn ilog2_conventions() {
        assert_eq!(ilog2_floor(1), 0);
        assert_eq!(ilog2_floor(2), 1);
        assert_eq!(ilog2_floor(3), 1);
        assert_eq!(ilog2_floor(1024), 10);
        assert_eq!(ilog2_ceil(1), 0);
        assert_eq!(ilog2_ceil(2), 1);
        assert_eq!(ilog2_ceil(3), 2);
        assert_eq!(ilog2_ceil(1025), 11);
    }

    #[test]
    fn polylog_matches_powf() {
        let v = polylog(1024, 3);
        assert!((v - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn approx_ratio_edge_cases() {
        assert_eq!(approx_ratio(10, 5), 2.0);
        assert!(approx_ratio(1, 0).is_infinite());
        // The empty cover of the empty instance is optimal, not ∞-bad.
        assert_eq!(approx_ratio(0, 0), 1.0);
        assert_eq!(approx_ratio(0, 3), 0.0);
    }

    #[test]
    fn chernoff_margins_bracket_mean() {
        let mu = 100.0;
        assert!(chernoff_upper(mu, 1e-9) > mu);
        assert!(chernoff_lower(mu, 1e-9) < mu);
        assert!(chernoff_lower(mu, 1e-9) >= 0.0);
        assert!(chernoff_lower(0.5, 1e-9) >= 0.0);
    }

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H(k) ~ ln k + γ
        assert!((harmonic(100_000) - (100_000f64.ln() + 0.5772)).abs() < 1e-3);
    }
}
