//! Generator benches: instance construction cost for each workload family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use setcover_gen::coverage::{blog_watch, BlogWatchConfig};
use setcover_gen::dominating::planted_hubs;
use setcover_gen::lowerbound::{LbFamily, LbFamilyConfig};
use setcover_gen::planted::{planted, PlantedConfig};
use setcover_gen::uniform::{uniform, UniformConfig};
use setcover_gen::zipf::{zipf, ZipfConfig};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);

    let cfg = PlantedConfig::exact(1024, 16_384, 16);
    g.bench_function("planted(n=1024,m=16k)", |b| {
        b.iter(|| planted(black_box(&cfg), 1).workload.instance.num_edges())
    });

    let ucfg = UniformConfig::ranged(1024, 16_384, 4, 32);
    g.bench_function("uniform(n=1024,m=16k)", |b| {
        b.iter(|| uniform(black_box(&ucfg), 1).instance.num_edges())
    });

    let zcfg = ZipfConfig {
        n: 1024,
        m: 16_384,
        set_size: 16,
        theta: 1.1,
    };
    g.bench_function("zipf(n=1024,m=16k)", |b| {
        b.iter(|| zipf(black_box(&zcfg), 1).instance.num_edges())
    });

    let bcfg = BlogWatchConfig::default_shape(1024, 16_384);
    g.bench_function("blog_watch(n=1024,m=16k)", |b| {
        b.iter(|| blog_watch(black_box(&bcfg), 1).instance.num_edges())
    });

    g.bench_function("dominating_hubs(n=2048)", |b| {
        b.iter(|| planted_hubs(2048, 16, 4096, 1).instance.num_edges())
    });
    g.finish();
}

fn bench_lb_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("lowerbound-family");
    g.sample_size(10);
    for (n, m, t) in [(4096usize, 64usize, 4usize), (16384, 128, 8)] {
        let cfg = LbFamilyConfig { n, m, t };
        g.throughput(Throughput::Elements((m * cfg.set_size()) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n},m={m},t={t}")),
            &cfg,
            |b, cfg| b.iter(|| LbFamily::generate(black_box(*cfg), 3).set(0).len()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_generators, bench_lb_family);
criterion_main!(benches);
