//! Throughput benches: edges/second for every streaming algorithm, plus
//! the offline greedy, on a planted workload. One group per algorithm;
//! criterion reports elements (edges) per second via `Throughput`.
//!
//! Every streaming bench drives the solver from the lazy edge stream —
//! the same zero-materialization path the experiment harness uses — so
//! the numbers include order generation, exactly like a real run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, ElementSamplingConfig, ElementSamplingSolver,
    FirstSetSolver, GreedySolver, KkSolver, RandomOrderConfig, RandomOrderSolver,
    SetArrivalThresholdSolver,
};
use setcover_core::solver::run_streaming;
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_core::{OfflineSetCover, SetCoverInstance};
use setcover_gen::planted::{planted, PlantedConfig};

const ORDER: StreamOrder = StreamOrder::Uniform(7);

struct Fixture {
    inst: SetCoverInstance,
    n: usize,
    m: usize,
}

fn fixture(n: usize, m: usize) -> Fixture {
    let p = planted(
        &PlantedConfig::exact(n, m, setcover_core::math::isqrt(n) / 2),
        42,
    );
    let inst = p.workload.instance;
    Fixture { n, m, inst }
}

fn bench_streaming(c: &mut Criterion) {
    let f = fixture(1024, 16_384);
    let nn = f.inst.num_edges();
    let mut g = c.benchmark_group("streaming");
    g.sample_size(10);
    g.throughput(Throughput::Elements(nn as u64));

    g.bench_function(BenchmarkId::new("kk", "n=1024"), |b| {
        b.iter(|| {
            run_streaming(
                KkSolver::new(f.m, f.n, 1),
                stream_of(black_box(&f.inst), ORDER),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("adversarial-low-space", "n=1024"), |b| {
        b.iter(|| {
            run_streaming(
                AdversarialSolver::new(f.m, f.n, AdversarialConfig::sqrt_n(f.n), 1),
                stream_of(black_box(&f.inst), ORDER),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("random-order", "n=1024"), |b| {
        b.iter(|| {
            run_streaming(
                RandomOrderSolver::new(f.m, f.n, nn, RandomOrderConfig::practical(), 1),
                stream_of(black_box(&f.inst), ORDER),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("element-sampling", "n=1024"), |b| {
        b.iter(|| {
            run_streaming(
                ElementSamplingSolver::new(
                    f.m,
                    f.n,
                    ElementSamplingConfig::for_alpha(32.0, f.m, 1.0),
                    1,
                ),
                stream_of(black_box(&f.inst), ORDER),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("set-arrival-threshold", "n=1024"), |b| {
        b.iter(|| {
            run_streaming(
                SetArrivalThresholdSolver::new(f.m, f.n),
                stream_of(black_box(&f.inst), ORDER),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("first-set", "n=1024"), |b| {
        b.iter(|| {
            run_streaming(
                FirstSetSolver::new(f.m, f.n),
                stream_of(black_box(&f.inst), ORDER),
            )
            .cover
            .size()
        })
    });
    g.finish();
}

fn bench_offline(c: &mut Criterion) {
    let f = fixture(1024, 16_384);
    let mut g = c.benchmark_group("offline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(f.inst.num_edges() as u64));
    g.bench_function("greedy", |b| {
        b.iter(|| GreedySolver.solve(black_box(&f.inst)).size())
    });
    g.finish();
}

fn bench_kk_scaling(c: &mut Criterion) {
    // KK per-edge cost as m grows (counter array scaling).
    let mut g = c.benchmark_group("kk-scaling");
    g.sample_size(10);
    for m in [4_096usize, 16_384, 65_536] {
        let f = fixture(576, m);
        g.throughput(Throughput::Elements(f.inst.num_edges() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(m), &f, |b, f| {
            b.iter(|| {
                run_streaming(
                    KkSolver::new(f.m, f.n, 1),
                    stream_of(black_box(&f.inst), ORDER),
                )
                .cover
                .size()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_streaming, bench_offline, bench_kk_scaling);
criterion_main!(benches);
