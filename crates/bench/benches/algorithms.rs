//! Throughput benches: edges/second for every streaming algorithm, plus
//! the offline greedy, on a planted workload. One group per algorithm;
//! criterion reports elements (edges) per second via `Throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, ElementSamplingConfig, ElementSamplingSolver,
    FirstSetSolver, GreedySolver, KkSolver, RandomOrderConfig, RandomOrderSolver,
    SetArrivalThresholdSolver,
};
use setcover_core::solver::run_on_edges;
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_core::{Edge, OfflineSetCover, SetCoverInstance};
use setcover_gen::planted::{planted, PlantedConfig};

struct Fixture {
    inst: SetCoverInstance,
    edges: Vec<Edge>,
    n: usize,
    m: usize,
}

fn fixture(n: usize, m: usize) -> Fixture {
    let p = planted(
        &PlantedConfig::exact(n, m, setcover_core::math::isqrt(n) / 2),
        42,
    );
    let inst = p.workload.instance;
    let edges = order_edges(&inst, StreamOrder::Uniform(7));
    Fixture { n, m, edges, inst }
}

fn bench_streaming(c: &mut Criterion) {
    let f = fixture(1024, 16_384);
    let mut g = c.benchmark_group("streaming");
    g.sample_size(10);
    g.throughput(Throughput::Elements(f.edges.len() as u64));

    g.bench_function(BenchmarkId::new("kk", "n=1024"), |b| {
        b.iter(|| {
            run_on_edges(KkSolver::new(f.m, f.n, 1), black_box(&f.edges))
                .cover
                .size()
        })
    });
    g.bench_function(BenchmarkId::new("adversarial-low-space", "n=1024"), |b| {
        b.iter(|| {
            run_on_edges(
                AdversarialSolver::new(f.m, f.n, AdversarialConfig::sqrt_n(f.n), 1),
                black_box(&f.edges),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("random-order", "n=1024"), |b| {
        b.iter(|| {
            run_on_edges(
                RandomOrderSolver::new(f.m, f.n, f.edges.len(), RandomOrderConfig::practical(), 1),
                black_box(&f.edges),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("element-sampling", "n=1024"), |b| {
        b.iter(|| {
            run_on_edges(
                ElementSamplingSolver::new(
                    f.m,
                    f.n,
                    ElementSamplingConfig::for_alpha(32.0, f.m, 1.0),
                    1,
                ),
                black_box(&f.edges),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("set-arrival-threshold", "n=1024"), |b| {
        b.iter(|| {
            run_on_edges(
                SetArrivalThresholdSolver::new(f.m, f.n),
                black_box(&f.edges),
            )
            .cover
            .size()
        })
    });
    g.bench_function(BenchmarkId::new("first-set", "n=1024"), |b| {
        b.iter(|| {
            run_on_edges(FirstSetSolver::new(f.m, f.n), black_box(&f.edges))
                .cover
                .size()
        })
    });
    g.finish();
}

fn bench_offline(c: &mut Criterion) {
    let f = fixture(1024, 16_384);
    let mut g = c.benchmark_group("offline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(f.edges.len() as u64));
    g.bench_function("greedy", |b| {
        b.iter(|| GreedySolver.solve(black_box(&f.inst)).size())
    });
    g.finish();
}

fn bench_kk_scaling(c: &mut Criterion) {
    // KK per-edge cost as m grows (counter array scaling).
    let mut g = c.benchmark_group("kk-scaling");
    g.sample_size(10);
    for m in [4_096usize, 16_384, 65_536] {
        let f = fixture(576, m);
        g.throughput(Throughput::Elements(f.edges.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(m), &f, |b, f| {
            b.iter(|| {
                run_on_edges(KkSolver::new(f.m, f.n, 1), black_box(&f.edges))
                    .cover
                    .size()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_streaming, bench_offline, bench_kk_scaling);
criterion_main!(benches);
