//! Micro-benches for the hot substrate components: the per-edge primitives
//! every solver touches (coin flips, mark bits, counters), cover
//! verification, and the Theorem 2 reduction end-to-end.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use setcover_algos::greedy_cover;
use setcover_algos::KkSolver;
use setcover_comm::disjointness::{DisjCase, DisjointnessInstance};
use setcover_comm::reduction::run_reduction;
use setcover_core::rng::{coin, seeded_rng};
use setcover_gen::lowerbound::{LbFamily, LbFamilyConfig};
use setcover_gen::planted::{planted, PlantedConfig};

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.throughput(Throughput::Elements(1 << 16));
    g.bench_function("coin-64k", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(1);
            let mut heads = 0u32;
            for _ in 0..(1 << 16) {
                heads += u32::from(coin(&mut rng, black_box(0.3)));
            }
            heads
        })
    });
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let p = planted(&PlantedConfig::exact(1024, 8192, 16), 9);
    let inst = p.workload.instance;
    let cover = greedy_cover(&inst);
    let mut g = c.benchmark_group("verify");
    g.sample_size(20);
    g.throughput(Throughput::Elements(inst.n() as u64));
    g.bench_function("cover-verify(n=1024)", |b| {
        b.iter(|| cover.verify(black_box(&inst)).is_ok())
    });
    g.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let cfg = LbFamilyConfig {
        n: 2048,
        m: 51,
        t: 4,
    };
    let fam = LbFamily::generate(cfg, 2);
    let disj = DisjointnessInstance::generate(51, 4, DisjCase::UniquelyIntersecting, 2);
    let mut g = c.benchmark_group("reduction");
    g.sample_size(10);
    g.bench_function("theorem2-game(n=2048,m=51,t=4)", |b| {
        b.iter(|| {
            run_reduction(black_box(&fam), black_box(&disj), 5, |m, n| {
                KkSolver::new(m, n, 7)
            })
            .best_estimate
        })
    });
    g.finish();
}

fn bench_io(c: &mut Criterion) {
    use setcover_core::io::{read_stream, write_stream};
    use setcover_core::stream::{stream_of, StreamOrder};
    let p = planted(&PlantedConfig::exact(512, 4096, 16), 11);
    let inst = p.workload.instance;
    let order = StreamOrder::Uniform(2);
    let mut buf = Vec::new();
    write_stream(inst.m(), inst.n(), stream_of(&inst, order), &mut buf).unwrap();

    let mut g = c.benchmark_group("io");
    g.sample_size(10);
    g.throughput(Throughput::Elements(inst.num_edges() as u64));
    g.bench_function("write-stream", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            write_stream(
                inst.m(),
                inst.n(),
                stream_of(black_box(&inst), order),
                &mut out,
            )
            .unwrap();
            out.len()
        })
    });
    g.bench_function("read-stream", |b| {
        b.iter(|| read_stream(black_box(&buf[..])).unwrap().edges.len())
    });
    g.finish();
}

fn bench_multipass(c: &mut Criterion) {
    use setcover_algos::MultiPassSieve;
    use setcover_core::solver::run_multipass_streams;
    use setcover_core::stream::{stream_of, StreamOrder};
    let p = planted(&PlantedConfig::exact(512, 4096, 16), 12);
    let inst = p.workload.instance;
    let mut g = c.benchmark_group("multipass");
    g.sample_size(10);
    g.throughput(Throughput::Elements(inst.num_edges() as u64));
    for passes in [1usize, 4] {
        g.bench_function(format!("sieve-p{passes}"), |b| {
            b.iter(|| {
                run_multipass_streams(MultiPassSieve::new(inst.m(), inst.n(), passes), || {
                    stream_of(black_box(&inst), StreamOrder::Interleaved)
                })
                .cover
                .size()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_verify,
    bench_reduction,
    bench_io,
    bench_multipass
);
criterion_main!(benches);
