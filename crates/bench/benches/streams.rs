//! Materialized-vs-lazy stream throughput, plus the random-order solver's
//! end-to-end per-edge rate on the lazy path.
//!
//! Writes every measurement to `BENCH_streams.json` at the repo root
//! (override with `SC_STREAMS_JSON=<path>`). With
//! `SC_STREAMS_BENCH_ENFORCE=1` the run exits non-zero if any CI
//! perf-smoke gate fails: lazy set-arrival throughput more than 25%
//! below the materialized path at the largest N, guarded uniform-random
//! throughput below 0.70× raw, no-op-recorder Algorithm 1 more than 2%
//! slower than a recorder-free replica, or an enabled `MetricsRecorder`
//! more than 10% slower (the observability overhead budget, DESIGN.md
//! §11). `SC_BENCH_QUICK=1` caps sampling.

use criterion::{criterion_group, take_results, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::io::Write as _;

use setcover_algos::common::{FirstSetMap, MarkSet, SolutionBuilder};
use setcover_algos::{KkConfig, KkSolver, RandomOrderConfig, RandomOrderSolver};
use setcover_core::rng::{coin, seeded_rng};
use setcover_core::solver::run_streaming;
use setcover_core::space::{SpaceComponent, SpaceMeter};
use setcover_core::stream::{order_edges, stream_of, EdgeStream, StreamOrder};
use setcover_core::{
    Cover, Edge, GuardConfig, GuardedStream, MetricsRecorder, SetCoverInstance, SpaceReport,
    StreamingSetCover,
};
use setcover_gen::uniform::{uniform, UniformConfig};

/// Target stream lengths. Sets have a fixed size so N = m · size exactly.
const SET_SIZE: usize = 20;
const TARGET_NS: [usize; 3] = [100_000, 1_000_000, 10_000_000];

fn instance_with_edges(target_n: usize) -> SetCoverInstance {
    let m = target_n / SET_SIZE;
    let n = 4096;
    uniform(&UniformConfig::ranged(n, m, SET_SIZE, SET_SIZE), 42).instance
}

/// Consume a lazy stream, folding edges so nothing is optimized away.
fn drain_lazy(inst: &SetCoverInstance, order: StreamOrder) -> u64 {
    let mut stream = stream_of(inst, order);
    let mut acc = 0u64;
    while let Some(e) = stream.next_edge() {
        acc = acc.wrapping_add(e.set.0 as u64 ^ e.elem.0 as u64);
    }
    acc
}

/// Materialize the order (today's oracle path), then fold it the same way.
fn drain_materialized(inst: &SetCoverInstance, order: StreamOrder) -> u64 {
    let edges = order_edges(inst, order);
    let mut acc = 0u64;
    for e in &edges {
        acc = acc.wrapping_add(e.set.0 as u64 ^ e.elem.0 as u64);
    }
    acc
}

fn bench_materialized_vs_lazy(c: &mut Criterion) {
    for &target in &TARGET_NS {
        let inst = instance_with_edges(target);
        let nn = inst.num_edges();
        let mut g = c.benchmark_group(format!("streams-n{target}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(nn as u64));
        for order in [
            StreamOrder::SetArrival,
            StreamOrder::Interleaved,
            StreamOrder::Uniform(3),
        ] {
            g.bench_with_input(
                BenchmarkId::new("materialized", order.name()),
                &order,
                |b, &o| b.iter(|| drain_materialized(black_box(&inst), o)),
            );
            g.bench_with_input(BenchmarkId::new("lazy", order.name()), &order, |b, &o| {
                b.iter(|| drain_lazy(black_box(&inst), o))
            });
        }
        g.finish();
    }
}

/// Drain the same lazy stream through a Repair-policy guard: the
/// per-edge validation overhead on the clean path (no faults to repair).
fn drain_guarded(inst: &SetCoverInstance, order: StreamOrder) -> u64 {
    let mut g = GuardedStream::new(
        stream_of(inst, order),
        inst.m(),
        inst.n(),
        GuardConfig::repair(),
    );
    let mut acc = 0u64;
    while let Some(e) = g.next_edge() {
        acc = acc.wrapping_add(e.set.0 as u64 ^ e.elem.0 as u64);
    }
    acc
}

/// The size used for the guarded-vs-raw lane: the largest stream, like
/// the lazy-vs-materialized gate, so the comparison reflects steady-state
/// cache behavior rather than an L2-resident toy.
const GUARDED_N: usize = 10_000_000;

fn bench_guarded_vs_raw(c: &mut Criterion) {
    let inst = instance_with_edges(GUARDED_N);
    let nn = inst.num_edges();
    let mut g = c.benchmark_group(format!("guarded-n{GUARDED_N}"));
    g.sample_size(10);
    g.throughput(Throughput::Elements(nn as u64));
    for order in [StreamOrder::SetArrival, StreamOrder::Uniform(3)] {
        g.bench_with_input(BenchmarkId::new("raw", order.name()), &order, |b, &o| {
            b.iter(|| drain_lazy(black_box(&inst), o))
        });
        g.bench_with_input(
            BenchmarkId::new("guarded", order.name()),
            &order,
            |b, &o| b.iter(|| drain_guarded(black_box(&inst), o)),
        );
    }
    g.finish();
}

/// A hand-stripped replica of [`KkSolver`] with no recorder field and no
/// recorder calls — the "what the solver would cost if the observability
/// layer did not exist" baseline for the overhead gates. Must mirror the
/// real solver's state, RNG trajectory, and space accounting exactly.
struct KkBaseline {
    m: usize,
    config: KkConfig,
    rng: rand::rngs::SmallRng,
    degree: Vec<u32>,
    marked: MarkSet,
    first: FirstSetMap,
    sol: SolutionBuilder,
    meter: SpaceMeter,
}

impl KkBaseline {
    fn new(m: usize, n: usize, seed: u64) -> Self {
        let mut meter = SpaceMeter::new();
        meter.charge(SpaceComponent::Counters, m);
        let marked = MarkSet::new(n, &mut meter);
        let first = FirstSetMap::new(n, &mut meter);
        KkBaseline {
            m,
            config: KkConfig::paper(n),
            rng: seeded_rng(seed),
            degree: vec![0; m],
            marked,
            first,
            sol: SolutionBuilder::new(m, n),
            meter,
        }
    }
}

impl StreamingSetCover for KkBaseline {
    fn name(&self) -> &'static str {
        "kk-baseline"
    }

    fn process_edge(&mut self, e: Edge) {
        self.first.observe(e.elem, e.set);
        if self.marked.is_marked(e.elem) {
            return;
        }
        if self.sol.contains(e.set) {
            self.marked.mark(e.elem);
            self.sol.certify(e.elem, e.set, &mut self.meter);
            return;
        }
        let d = &mut self.degree[e.set.index()];
        *d += 1;
        if (*d as usize).is_multiple_of(self.config.level_width) {
            let level = (*d as usize / self.config.level_width) as u32;
            let w = self.config.level_width as f64;
            let p = self.config.inclusion_mult * 2f64.powi(level as i32) * w / self.m as f64;
            if coin(&mut self.rng, p) && self.sol.add(e.set, &mut self.meter) {
                self.marked.mark(e.elem);
                self.sol.certify(e.elem, e.set, &mut self.meter);
            }
        }
    }

    fn finalize(&mut self) -> Cover {
        let sol = std::mem::replace(&mut self.sol, SolutionBuilder::new(0, 0));
        let first = &self.first;
        sol.finish_with(|u| first.get(u))
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

/// Same size as the other gated lanes, uniform-random arrival.
const OBS_N: usize = 10_000_000;

fn bench_obs_overhead(c: &mut Criterion) {
    let inst = instance_with_edges(OBS_N);
    let nn = inst.num_edges();
    let (m, n) = (inst.m(), inst.n());
    let order = StreamOrder::Uniform(3);
    let mut g = c.benchmark_group(format!("obs-overhead-n{OBS_N}"));
    g.sample_size(10);
    g.throughput(Throughput::Elements(nn as u64));
    g.bench_function("baseline", |b| {
        b.iter(|| {
            run_streaming(KkBaseline::new(m, n, 7), stream_of(black_box(&inst), order))
                .cover
                .size()
        })
    });
    g.bench_function("noop", |b| {
        b.iter(|| {
            run_streaming(KkSolver::new(m, n, 7), stream_of(black_box(&inst), order))
                .cover
                .size()
        })
    });
    g.bench_function("enabled", |b| {
        b.iter(|| {
            let mut rec = MetricsRecorder::new();
            let out = run_streaming(
                KkSolver::with_recorder(m, n, KkConfig::paper(n), 7, &mut rec),
                stream_of(black_box(&inst), order),
            );
            black_box(rec.snapshot());
            out.cover.size()
        })
    });
    g.finish();
}

fn bench_random_order_solver(c: &mut Criterion) {
    // End-to-end per-edge rate of Algorithm 1 on the lazy uniform stream:
    // the hot loop whose tracking path went from hash maps to dense
    // generation-stamped arrays.
    let inst = instance_with_edges(1_000_000);
    let nn = inst.num_edges();
    let (m, n) = (inst.m(), inst.n());
    let mut g = c.benchmark_group("random-order-solver");
    g.sample_size(10);
    g.throughput(Throughput::Elements(nn as u64));
    g.bench_function("lazy-uniform", |b| {
        b.iter(|| {
            run_streaming(
                RandomOrderSolver::new(m, n, nn, RandomOrderConfig::practical(), 1),
                stream_of(black_box(&inst), StreamOrder::Uniform(5)),
            )
            .cover
            .size()
        })
    });
    g.finish();
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize results, enforce the regression gate, write the JSON file.
fn emit_json_and_enforce() {
    let results = take_results();
    let quick = std::env::var_os("SC_BENCH_QUICK").is_some_and(|v| v != "0");

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!(
        "  \"bench\": \"streams\",\n  \"quick\": {quick},\n"
    ));
    body.push_str(&format!("  \"set_size\": {SET_SIZE},\n"));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let thr = r
            .melems_per_sec()
            .map_or("null".to_string(), |t| format!("{t:.3}"));
        let elems = r.elements.map_or("null".to_string(), |e| e.to_string());
        body.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns_per_iter\": {:.1}, \
             \"min_ns_per_iter\": {:.1}, \"max_ns_per_iter\": {:.1}, \"samples\": {}, \
             \"elements\": {}, \"medges_per_sec\": {}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.id),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            elems,
            thr,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");

    let path = std::env::var("SC_STREAMS_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_streams.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&path).expect("create BENCH_streams.json");
    f.write_all(body.as_bytes())
        .expect("write BENCH_streams.json");
    eprintln!("\nstreams bench results -> {path}");

    // Perf-smoke gate: on the largest N, lazy set-arrival must stay within
    // 25% of the materialized path's throughput.
    let biggest = format!("streams-n{}", TARGET_NS[TARGET_NS.len() - 1]);
    let median_of = |id: &str| {
        results
            .iter()
            .find(|r| r.group == biggest && r.id == id)
            .map(|r| r.median_ns)
    };
    let gate = match (
        median_of("materialized/set-arrival"),
        median_of("lazy/set-arrival"),
    ) {
        // Throughput ∝ 1/median: lazy regresses >25% below materialized
        // when its median time exceeds materialized/0.75.
        (Some(mat), Some(lazy)) => {
            let ratio = mat / lazy; // lazy throughput / materialized throughput
            eprintln!("perf-smoke: lazy/materialized set-arrival throughput ratio = {ratio:.2}");
            ratio >= 0.75
        }
        _ => {
            eprintln!("perf-smoke: set-arrival results missing; gate skipped");
            true
        }
    };
    // Guard-overhead gate: on a clean stream, the Repair-policy guarded
    // path must stay within 30% of the raw lazy path's throughput. The
    // gate uses the uniform-random lane — the arrival order the
    // experiments ingest. The set-arrival lane stays informational: its
    // raw path is a sequential CSR scan (hundreds of Medges/s) that no
    // per-edge validator can shadow, so gating there would only measure
    // the scan, not the guard.
    let guarded_group = format!("guarded-n{GUARDED_N}");
    let median_in = |id: &str| {
        results
            .iter()
            .find(|r| r.group == guarded_group && r.id == id)
            .map(|r| r.median_ns)
    };
    let guard_gate = match (
        median_in("raw/uniform-random"),
        median_in("guarded/uniform-random"),
    ) {
        (Some(raw), Some(guarded)) => {
            let ratio = raw / guarded; // guarded throughput / raw throughput
            eprintln!("perf-smoke: guarded/raw uniform-random throughput ratio = {ratio:.2}");
            ratio >= 0.70
        }
        _ => {
            eprintln!("perf-smoke: guarded-lane results missing; gate skipped");
            true
        }
    };
    // Observability-overhead gates, against the hand-stripped KK
    // baseline on the same uniform-random lane: a `NoopRecorder` solver
    // must cost ≤2% (the disabled path compiles away), an enabled
    // `MetricsRecorder` ≤10%. Ratios use min_ns — the least noisy
    // statistic for "how fast can this code go".
    let obs_group = format!("obs-overhead-n{OBS_N}");
    let min_in = |id: &str| {
        results
            .iter()
            .find(|r| r.group == obs_group && r.id == id)
            .map(|r| r.min_ns)
    };
    let (noop_gate, enabled_gate) = match (min_in("baseline"), min_in("noop"), min_in("enabled")) {
        (Some(base), Some(noop), Some(enabled)) if base > 0.0 => {
            let noop_ratio = noop / base;
            let enabled_ratio = enabled / base;
            eprintln!(
                "perf-smoke: obs overhead vs baseline — noop {noop_ratio:.3}x (gate 1.02), \
                 enabled {enabled_ratio:.3}x (gate 1.10)"
            );
            (noop_ratio <= 1.02, enabled_ratio <= 1.10)
        }
        _ => {
            eprintln!("perf-smoke: obs-overhead results missing; gates skipped");
            (true, true)
        }
    };
    let enforce = std::env::var_os("SC_STREAMS_BENCH_ENFORCE").is_some_and(|v| v != "0");
    if !gate && enforce {
        eprintln!("perf-smoke FAILED: lazy set-arrival throughput >25% below materialized");
        std::process::exit(1);
    }
    if !guard_gate && enforce {
        eprintln!("perf-smoke FAILED: guarded uniform-random throughput >30% below raw");
        std::process::exit(1);
    }
    if !noop_gate && enforce {
        eprintln!("perf-smoke FAILED: no-op recorder costs >2% over the stripped baseline");
        std::process::exit(1);
    }
    if !enabled_gate && enforce {
        eprintln!("perf-smoke FAILED: enabled recorder costs >10% over the stripped baseline");
        std::process::exit(1);
    }
}

criterion_group!(
    benches,
    bench_materialized_vs_lazy,
    bench_guarded_vs_raw,
    bench_obs_overhead,
    bench_random_order_solver
);

fn main() {
    benches();
    emit_json_and_enforce();
}
