//! Stream-order adapter benches: cost of materializing each arrival order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use setcover_core::stream::{order_edges, StreamOrder};
use setcover_gen::planted::{planted, PlantedConfig};

fn bench_orders(c: &mut Criterion) {
    let p = planted(&PlantedConfig::exact(1024, 16_384, 16), 5);
    let inst = p.workload.instance;
    let mut g = c.benchmark_group("stream-orders");
    g.sample_size(10);
    g.throughput(Throughput::Elements(inst.num_edges() as u64));

    for order in [
        StreamOrder::SetArrival,
        StreamOrder::SetArrivalShuffled(3),
        StreamOrder::Interleaved,
        StreamOrder::ElementGrouped,
        StreamOrder::Uniform(3),
        StreamOrder::GreedyTrap,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(order.name()),
            &order,
            |b, &o| b.iter(|| order_edges(black_box(&inst), o).len()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
