//! Plain-text table and CSV rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned text table that can also serialize to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", c, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (header + rows). Cells containing commas are quoted.
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Render a series as a Unicode sparkline (`▁▂▃▄▅▆▇█`) — the text-mode
/// "figure" the sweep binaries print next to their tables. Non-finite
/// values render as spaces; a constant series renders mid-height.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if max <= min {
                BARS[3]
            } else {
                let t = (v - min) / (max - min);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Log-scale sparkline: spark of `log2(v)` for positive series — the
/// right view for power-law sweeps (space vs α, ratio vs n).
pub fn sparkline_log(values: &[f64]) -> String {
    let logs: Vec<f64> = values
        .iter()
        .map(|&v| if v > 0.0 { v.log2() } else { f64::NAN })
        .collect();
    sparkline(&logs)
}

/// Format a word count human-readably (`12_345` → `12.3k`).
pub fn fmt_words(w: usize) -> String {
    if w >= 10_000_000 {
        format!("{:.1}M", w as f64 / 1e6)
    } else if w >= 10_000 {
        format!("{:.1}k", w as f64 / 1e3)
    } else {
        w.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["100".into(), "x".into(), "yyyy".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long-header"));
        assert!(r.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["a,b".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\",plain"));
        assert!(csv.starts_with("x,y\n"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0]), "▄"); // constant mid-height
        let up = sparkline(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(up.chars().count(), 4);
        assert!(up.starts_with('▁') && up.ends_with('█'));
        let down = sparkline(&[4.0, 1.0]);
        assert_eq!(down, "█▁");
        // Non-finite values become spaces.
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0]), "▁ █");
    }

    #[test]
    fn log_sparkline_handles_power_laws() {
        // Powers of two are linear in log space: evenly spaced bars.
        let s = sparkline_log(&[1.0, 2.0, 4.0, 8.0]);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        // An all-nonpositive series has nothing to draw.
        assert_eq!(sparkline_log(&[0.0]), "");
        // Mixed: nonpositive entries blank out within a real series.
        assert_eq!(sparkline_log(&[1.0, 0.0, 4.0]), "▁ █");
    }

    #[test]
    fn word_formatting() {
        assert_eq!(fmt_words(999), "999");
        assert_eq!(fmt_words(12_345), "12.3k");
        assert_eq!(fmt_words(12_345_678), "12.3M");
    }
}
