//! Parallel trial execution.
//!
//! Experiments sweep a grid of (instance × order × algorithm × seed)
//! trials whose cells are completely independent: every cell's RNG seed
//! is derived from its **grid coordinates** (via
//! [`setcover_core::rng::derive_seed`]-based [`crate::trial_seeds`]),
//! never from worker identity or execution order. [`par_grid`] exploits
//! that: a pool of scoped `std::thread` workers pulls cell indices from a
//! shared atomic counter (work stealing over an index queue — no
//! channels, no extra dependencies), runs each cell, and writes the
//! result into the cell's own slot. Results are returned **in grid
//! order**, so any report assembled from them is byte-identical to a
//! serial (`threads = 1`) run.
//!
//! [`TrialRunner`] is the knob-carrying handle threaded through the
//! experiment modules: it holds the thread count (CLI `threads=`,
//! default [`std::thread::available_parallelism`]) and accumulates the
//! total number of edges processed so binaries can report aggregate
//! Medges/s next to wall-clock time.
//!
//! Panic behavior: a panicking trial does not deadlock the pool. The
//! remaining workers drain the queue, and the panic is re-raised when
//! the scope joins — exactly like the serial path, just possibly after
//! finishing other cells first.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use setcover_core::{GuardReport, MetricsRecorder, MetricsSnapshot, TraceEvent};

use crate::harness::{arg_str, arg_usize, MeasuredRun};

/// Peak resident set size of this process (`VmHWM`) in KiB, from
/// `/proc/self/status`. `None` off Linux or if the file is unreadable.
/// Used by the memory footers: the *delta* of this high-water mark across
/// an experiment is the experiment's real peak-memory cost, which the
/// lazy streams are supposed to keep at Θ(m) per in-flight trial.
pub fn peak_rss_kb() -> Option<u64> {
    proc_status_kb("VmHWM:")
}

fn proc_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(key))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Run `f` over every item of a grid, on up to `threads` workers, and
/// return the results in grid (input) order.
///
/// `threads <= 1` runs serially on the caller's thread — the exact code
/// path a single-threaded run always took. Worker panics propagate to
/// the caller after all other workers finish draining the queue.
pub fn par_grid<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

/// A boxed one-shot trial for [`TrialRunner::run_tasks`]: heterogeneous
/// work items (different solvers, probe runs, baselines) flattened into
/// one schedulable grid.
pub type Task<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// One trial's recorded observability payload: the trial's grid key (its
/// deterministic coordinates, usually the grid index), the metric
/// snapshot, and any trace events the recorder buffered.
#[derive(Debug, Clone)]
pub struct ObsTrial {
    /// Deterministic trial key; merge order sorts on this, so the
    /// aggregate snapshot is identical for every thread count.
    pub key: u64,
    /// The trial's metric snapshot.
    pub snapshot: MetricsSnapshot,
    /// Trace events buffered by the trial's recorder (empty unless the
    /// sink was created in trace mode).
    pub events: Vec<TraceEvent>,
}

/// Observability sink state carried by an obs-enabled [`TrialRunner`].
#[derive(Debug)]
struct ObsState {
    trace: bool,
    trials: Mutex<Vec<ObsTrial>>,
}

/// The parallel trial engine handle threaded through experiments.
///
/// Interior counters use atomics so a shared `&TrialRunner` can be used
/// from every worker.
#[derive(Debug)]
pub struct TrialRunner {
    threads: usize,
    edges: AtomicU64,
    /// Per-stream-order `(edges, solver milliseconds)` totals, keyed by
    /// [`MeasuredRun::order`]; `BTreeMap` so footer lines print in a
    /// stable order.
    order_stats: Mutex<BTreeMap<&'static str, (u64, f64)>>,
    /// `VmHWM` when this runner was created: the footer reports the
    /// delta, i.e. how far this run pushed the process peak RSS.
    rss_baseline_kb: Option<u64>,
    /// Ingestion-guard totals across all guarded runs (see
    /// [`TrialRunner::add_guard`]); all zero when nothing was guarded, in
    /// which case the footer omits the guard line.
    guard_ok: AtomicU64,
    guard_repaired: AtomicU64,
    guard_rejected: AtomicU64,
    /// Observability sink (`obs=` knob); `None` keeps every obs call a
    /// cheap branch and the solvers on their `NoopRecorder` path.
    obs: Option<ObsState>,
}

impl TrialRunner {
    /// A runner with an explicit worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        TrialRunner {
            threads: threads.max(1),
            edges: AtomicU64::new(0),
            order_stats: Mutex::new(BTreeMap::new()),
            rss_baseline_kb: peak_rss_kb(),
            guard_ok: AtomicU64::new(0),
            guard_repaired: AtomicU64::new(0),
            guard_rejected: AtomicU64::new(0),
            obs: None,
        }
    }

    /// The serial runner: today's single-threaded execution path.
    pub fn serial() -> Self {
        TrialRunner::new(1)
    }

    /// Build from the `threads=` CLI knob; defaults to the machine's
    /// available parallelism (`threads=1` recovers the serial path).
    /// Also honours the `obs=` knob (see [`TrialRunner::obs_from_args`]).
    pub fn from_args() -> Self {
        TrialRunner::new(arg_usize("threads", default_threads())).obs_from_args()
    }

    /// Enable the observability sink; `trace` additionally buffers
    /// per-trial event streams for the JSONL trace export.
    pub fn with_obs(mut self, trace: bool) -> Self {
        self.obs = Some(ObsState {
            trace,
            trials: Mutex::new(Vec::new()),
        });
        self
    }

    /// Apply the `obs=` CLI knob: `obs=1` records metrics (manifest
    /// export), `obs=trace` additionally buffers trace events; `obs=0`
    /// or absent leaves observability off.
    pub fn obs_from_args(self) -> Self {
        match arg_str("obs").as_deref() {
            None | Some("0") => self,
            Some("trace") => self.with_obs(true),
            Some(_) => self.with_obs(false),
        }
    }

    /// Whether the observability sink is enabled.
    pub fn obs_on(&self) -> bool {
        self.obs.is_some()
    }

    /// A fresh per-trial recorder matching the sink mode. Call only when
    /// [`TrialRunner::obs_on`]; pairs with [`TrialRunner::obs_record`].
    pub fn obs_recorder(&self) -> MetricsRecorder {
        match &self.obs {
            Some(o) if o.trace => MetricsRecorder::with_trace(),
            _ => MetricsRecorder::new(),
        }
    }

    /// Store one finished trial's recorder under its deterministic `key`
    /// (grid index). No-op when the sink is disabled.
    pub fn obs_record(&self, key: u64, rec: MetricsRecorder) {
        let Some(o) = &self.obs else { return };
        let events = rec.events().to_vec();
        o.trials
            .lock()
            .expect("obs trials poisoned")
            .push(ObsTrial {
                key,
                snapshot: rec.snapshot(),
                events,
            });
    }

    /// All recorded trials sorted by key — the canonical deterministic
    /// order regardless of which worker finished first.
    pub fn obs_trials_sorted(&self) -> Vec<ObsTrial> {
        let Some(o) = &self.obs else {
            return Vec::new();
        };
        let mut trials = o.trials.lock().expect("obs trials poisoned").clone();
        trials.sort_by_key(|t| t.key);
        trials
    }

    /// The aggregate metric snapshot: per-trial snapshots merged in key
    /// order. Byte-identical for every thread count because the merge
    /// operations are commutative and the order is key-sorted.
    pub fn obs_merged(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for t in self.obs_trials_sorted() {
            merged.merge(&t.snapshot);
        }
        merged
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// [`par_grid`] with this runner's thread count.
    pub fn grid<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        par_grid(items, self.threads, f)
    }

    /// Run a flat list of heterogeneous one-shot tasks, returning their
    /// results in input order.
    pub fn run_tasks<'a, R: Send>(&self, tasks: Vec<Task<'a, R>>) -> Vec<R> {
        if self.threads <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let slots: Vec<Mutex<Option<Task<'a, R>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.grid(&slots, |_, slot| {
            let task = slot
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("task claimed twice");
            task()
        })
    }

    /// Grid of measured solver runs; the engine accounts their edge
    /// totals toward [`TrialRunner::total_edges`].
    pub fn measure_grid<T, F>(&self, items: &[T], f: F) -> Vec<MeasuredRun>
    where
        T: Sync,
        F: Fn(usize, &T) -> MeasuredRun + Sync,
    {
        let runs = self.grid(items, f);
        for r in &runs {
            self.add_run(r);
        }
        runs
    }

    /// Account one measured run: its edges toward the aggregate total and
    /// its (order, edges, millis) toward the per-order throughput footer.
    /// Experiments that schedule runs outside [`TrialRunner::measure_grid`]
    /// (e.g. via [`TrialRunner::run_tasks`]) call this per run.
    pub fn add_run(&self, run: &MeasuredRun) {
        self.add_edges(run.edges);
        let mut stats = self.order_stats.lock().expect("order stats poisoned");
        let entry = stats.entry(run.order).or_insert((0, 0.0));
        entry.0 += run.edges as u64;
        if run.millis.is_finite() && run.millis > 0.0 {
            entry.1 += run.millis;
        }
    }

    /// Per-order `(order, edges, solver millis)` totals accounted so far,
    /// in stable (alphabetical) order.
    pub fn order_stats(&self) -> Vec<(&'static str, u64, f64)> {
        self.order_stats
            .lock()
            .expect("order stats poisoned")
            .iter()
            .map(|(&o, &(e, ms))| (o, e, ms))
            .collect()
    }

    /// How far this run has pushed the process peak RSS (KiB) since the
    /// runner was created; `None` when `/proc` is unavailable.
    pub fn peak_rss_delta_kb(&self) -> Option<u64> {
        Some(peak_rss_kb()?.saturating_sub(self.rss_baseline_kb?))
    }

    /// Account `edges` processed edges (for aggregate-throughput
    /// footers); used directly by experiments that drive solvers outside
    /// [`TrialRunner::measure_grid`].
    pub fn add_edges(&self, edges: usize) {
        self.edges.fetch_add(edges as u64, Ordering::Relaxed);
    }

    /// Total edges processed through this runner so far.
    pub fn total_edges(&self) -> u64 {
        self.edges.load(Ordering::Relaxed)
    }

    /// Account one guarded run's ingestion counters toward the footer's
    /// `edges_ok / edges_repaired / edges_rejected` totals.
    pub fn add_guard(&self, report: &GuardReport) {
        self.guard_ok
            .fetch_add(report.edges_ok as u64, Ordering::Relaxed);
        self.guard_repaired
            .fetch_add(report.edges_repaired as u64, Ordering::Relaxed);
        self.guard_rejected
            .fetch_add(report.edges_rejected as u64, Ordering::Relaxed);
    }

    /// Aggregate `(edges_ok, edges_repaired, edges_rejected)` across all
    /// guarded runs accounted so far.
    pub fn guard_totals(&self) -> (u64, u64, u64) {
        (
            self.guard_ok.load(Ordering::Relaxed),
            self.guard_repaired.load(Ordering::Relaxed),
            self.guard_rejected.load(Ordering::Relaxed),
        )
    }
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Render a wall-clock + aggregate-throughput footer line.
fn footer(name: &str, threads: usize, secs: f64, edges: u64) -> String {
    let tp = if secs > 0.0 && edges > 0 {
        format!("{:.2} Medges/s", edges as f64 / secs / 1e6)
    } else {
        "n/a".to_string()
    };
    format!("[{name}] threads={threads} wall={secs:.2}s edges={edges} aggregate={tp}")
}

/// Print the full stderr footer block for a finished run: the headline
/// wall-clock/throughput line, the peak-RSS delta (how far this run
/// pushed the process high-water mark — the lazy streams keep this at
/// Θ(m) per in-flight trial), and one Medges/s line per stream order.
pub fn emit_run_footer(name: &str, runner: &TrialRunner, secs: f64) {
    eprintln!(
        "{}",
        footer(name, runner.threads(), secs, runner.total_edges())
    );
    if let (Some(delta), Some(peak)) = (runner.peak_rss_delta_kb(), peak_rss_kb()) {
        eprintln!(
            "[{name}] peak-rss={:.1} MiB (delta +{:.1} MiB)",
            peak as f64 / 1024.0,
            delta as f64 / 1024.0
        );
    }
    for (order, edges, ms) in runner.order_stats() {
        let tp = if ms > 0.0 {
            format!("{:.2} Medges/s", edges as f64 / ms / 1e3)
        } else {
            "n/a".to_string()
        };
        eprintln!("[{name}]   order {order}: {tp} ({edges} edges)");
    }
    let (ok, repaired, rejected) = runner.guard_totals();
    if ok + repaired + rejected > 0 {
        eprintln!(
            "[{name}] guard: edges_ok={ok} edges_repaired={repaired} edges_rejected={rejected}"
        );
    }
}

/// Run `f` on `runner`, print a timing footer to **stderr** (stdout
/// carries only the deterministic report text), and return the report.
pub fn timed_report<F>(name: &str, runner: &TrialRunner, f: F) -> String
where
    F: Fn(&TrialRunner) -> String,
{
    let start = std::time::Instant::now();
    let text = f(runner);
    let secs = start.elapsed().as_secs_f64();
    emit_run_footer(name, runner, secs);
    text
}

/// Like [`timed_report`], but when `runner` is parallel also replay the
/// experiment on a fresh serial runner, **verify the two report texts
/// are byte-identical**, and print both timings plus the speedup. The
/// binaries named in the serial-equivalence guarantee use this so every
/// parallel run re-proves the guarantee it ships under.
pub fn timed_report_vs_serial<F>(name: &str, runner: &TrialRunner, f: F) -> String
where
    F: Fn(&TrialRunner) -> String,
{
    let start = std::time::Instant::now();
    let text = f(runner);
    let par_secs = start.elapsed().as_secs_f64();
    emit_run_footer(name, runner, par_secs);
    if runner.threads() > 1 {
        let serial = TrialRunner::serial();
        let start = std::time::Instant::now();
        let serial_text = f(&serial);
        let serial_secs = start.elapsed().as_secs_f64();
        eprintln!("{}", footer(name, 1, serial_secs, serial.total_edges()));
        assert_eq!(
            text, serial_text,
            "parallel report text diverged from serial — determinism bug"
        );
        eprintln!(
            "[{name}] serial-equivalence: OK (byte-identical); speedup {:.2}x",
            serial_secs / par_secs.max(1e-9)
        );
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_preserves_order_for_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&i| i * i).collect();
        for threads in [1, 2, 3, 8, 64, 1024] {
            let got = par_grid(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn grid_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_grid(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_grid(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn run_tasks_returns_results_in_input_order() {
        let runner = TrialRunner::new(4);
        let tasks: Vec<Task<usize>> = (0..100)
            .map(|i| {
                let b: Task<usize> = Box::new(move || {
                    // Uneven work so completion order differs from input order.
                    let spin = (i % 7) * 400;
                    let mut acc = 0usize;
                    for k in 0..spin {
                        acc = acc.wrapping_add(std::hint::black_box(k));
                    }
                    i + acc.wrapping_mul(0) // result is just i
                });
                b
            })
            .collect();
        assert_eq!(runner.run_tasks(tasks), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_trial_surfaces_and_never_deadlocks() {
        // Proptest-style sweep: many (size, panic position, thread count)
        // combinations; each must propagate the panic (not hang, not
        // swallow it) and non-panicking runs must stay order-exact.
        use setcover_core::rng::derive_seed;
        for case in 0..32u64 {
            let len = 1 + (derive_seed(0xBAD, case) % 64) as usize;
            let bad = (derive_seed(0xDEAD, case) % len as u64) as usize;
            let threads = 1 + (derive_seed(0xBEEF, case) % 9) as usize;
            let items: Vec<usize> = (0..len).collect();
            let result = std::panic::catch_unwind(|| {
                par_grid(&items, threads, |i, &x| {
                    if i == bad {
                        panic!("trial {i} exploded");
                    }
                    x
                })
            });
            assert!(
                result.is_err(),
                "case {case}: panic must surface (len={len}, bad={bad})"
            );
        }
    }

    #[test]
    fn per_order_stats_accumulate_in_stable_order() {
        let runner = TrialRunner::new(2);
        let base = MeasuredRun {
            algorithm: "a",
            order: "uniform-random",
            cover_size: 1,
            ratio: 1.0,
            peak_words: 1,
            algorithmic_words: 1,
            edges: 1_000,
            millis: 2.0,
        };
        runner.add_run(&base);
        runner.add_run(&MeasuredRun {
            order: "set-arrival",
            edges: 500,
            millis: 0.0, // below timer resolution: edges count, time doesn't
            ..base.clone()
        });
        runner.add_run(&MeasuredRun {
            edges: 3_000,
            millis: 1.0,
            ..base
        });
        let stats = runner.order_stats();
        assert_eq!(
            stats,
            vec![("set-arrival", 500, 0.0), ("uniform-random", 4_000, 3.0)]
        );
        assert_eq!(runner.total_edges(), 4_500);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("VmHWM present in /proc/self/status");
            assert!(kb > 0);
            let runner = TrialRunner::new(1);
            // Delta is measured from runner creation: small and non-negative.
            assert!(runner.peak_rss_delta_kb().is_some());
        }
    }

    #[test]
    fn guard_totals_accumulate() {
        let runner = TrialRunner::new(2);
        assert_eq!(runner.guard_totals(), (0, 0, 0));
        runner.add_guard(&GuardReport {
            edges_ok: 10,
            edges_repaired: 2,
            edges_rejected: 1,
            ..GuardReport::default()
        });
        runner.add_guard(&GuardReport {
            edges_ok: 5,
            ..GuardReport::default()
        });
        assert_eq!(runner.guard_totals(), (15, 2, 1));
    }

    #[test]
    fn edge_accounting_accumulates() {
        let runner = TrialRunner::new(2);
        runner.add_edges(10);
        runner.add_edges(32);
        assert_eq!(runner.total_edges(), 42);
    }

    #[test]
    fn serial_runner_is_single_threaded() {
        let runner = TrialRunner::serial();
        assert_eq!(runner.threads(), 1);
        // Closure capturing a non-Sync-friendly mutation still fine via
        // the serial path? grid requires Sync closures regardless; just
        // check results.
        assert_eq!(runner.grid(&[1, 2, 3], |_, &x: &i32| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn obs_disabled_by_default_and_record_is_noop() {
        use setcover_core::{Metric, MetricsRecorder, Recorder as _};
        let runner = TrialRunner::new(2);
        assert!(!runner.obs_on());
        let mut rec = MetricsRecorder::new();
        rec.counter(Metric::DriverEdges, 7);
        runner.obs_record(0, rec);
        assert!(runner.obs_trials_sorted().is_empty());
        assert!(runner.obs_merged().is_empty());
    }

    #[test]
    fn obs_merge_is_key_sorted_and_thread_count_free() {
        use setcover_core::{Metric, Recorder as _};
        // Record the same trials against a 1-thread and an 8-thread
        // runner, pushing them in different completion orders; the merged
        // snapshot must serialize to identical bytes.
        let build = |threads: usize, order: &[u64]| {
            let runner = TrialRunner::new(threads).with_obs(false);
            assert!(runner.obs_on());
            for &key in order {
                let mut rec = runner.obs_recorder();
                rec.counter(Metric::DriverEdges, key + 1);
                rec.gauge(Metric::SaBufferPeak, 10 * key);
                rec.observe(Metric::KkLevelAtInclusion, key);
                runner.obs_record(key, rec);
            }
            runner.obs_merged().to_json()
        };
        let serial = build(1, &[0, 1, 2, 3]);
        let threaded = build(8, &[3, 0, 2, 1]);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn obs_trace_mode_buffers_events_in_key_order() {
        use setcover_core::Recorder as _;
        let runner = TrialRunner::new(4).with_obs(true);
        for key in [1u64, 0] {
            let mut rec = runner.obs_recorder();
            rec.event("t.ev", key, 0);
            runner.obs_record(key, rec);
        }
        let trials = runner.obs_trials_sorted();
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[0].key, 0);
        assert_eq!(trials[0].events.len(), 1);
        assert_eq!(trials[0].events[0].a, 0);
        assert_eq!(trials[1].events[0].a, 1);
    }
}
