//! Observability exporters: run manifests and trial event traces.
//!
//! Every binary accepts an `obs=` knob (parsed by
//! [`TrialRunner::obs_from_args`](crate::TrialRunner::obs_from_args)).
//! When enabled, trials record into per-trial
//! [`MetricsRecorder`](setcover_core::MetricsRecorder)s keyed by their
//! grid index; [`emit_obs`] merges them in key order — byte-identical
//! for every thread count — and writes:
//!
//! * `results/<bin>.meta.json` — the run manifest: knobs, thread count,
//!   guard totals, edge counts, peak-RSS delta, and the canonical
//!   metric snapshot;
//! * `results/<bin>.trace.jsonl` (only under `obs=trace`) — one JSON
//!   object per buffered trace event, in trial-key order.
//!
//! The manifest's `metrics` field embeds
//! [`MetricsSnapshot::to_json`](setcover_core::MetricsSnapshot::to_json)
//! verbatim, so a consumer can extract it and round-trip through
//! [`MetricsSnapshot::from_json`](setcover_core::MetricsSnapshot::from_json).

use std::fmt::Write as _;

use crate::harness::write_output;
use crate::par::TrialRunner;

/// Manifest schema identifier; bump on breaking layout changes.
pub const MANIFEST_SCHEMA: &str = "setcover.obs.manifest/1";

/// Run one trial body with a recorder wired to `$runner`'s sink.
///
/// ```ignore
/// let run = obs_trial!(runner, key, |rec| {
///     let solver = KkSolver::with_recorder(m, n, cfg, seed, rec);
///     measure(solver, &mut stream)
/// });
/// ```
///
/// When the sink is enabled the body receives `&mut MetricsRecorder`
/// and the finished recorder is stored under `key` (the trial's grid
/// index — the deterministic merge/trace order). When disabled the body
/// receives [`NoopRecorder`](setcover_core::NoopRecorder) by value, so
/// the solver monomorphises to the zero-cost path. The body must
/// consume `$rec` exactly once.
#[macro_export]
macro_rules! obs_trial {
    ($runner:expr, $key:expr, |$rec:ident| $body:expr) => {{
        let __runner = &*$runner;
        let __key: u64 = $key;
        if __runner.obs_on() {
            let mut __rec = __runner.obs_recorder();
            let __out = {
                let $rec = &mut __rec;
                $body
            };
            __runner.obs_record(__key, __rec);
            __out
        } else {
            #[allow(unused_mut)]
            let mut $rec = ::setcover_core::NoopRecorder;
            $body
        }
    }};
}

/// Escape a string for inclusion in a JSON string literal.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The `key=value` knobs this process was invoked with, sorted by key
/// (last occurrence wins, matching `arg_str`). Bare arguments are
/// ignored — they are rejected by `check_args` anyway.
fn knob_pairs() -> Vec<(String, String)> {
    let mut map = std::collections::BTreeMap::new();
    for a in std::env::args().skip(1) {
        if let Some((k, v)) = a.split_once('=') {
            map.insert(k.to_string(), v.to_string());
        }
    }
    map.into_iter().collect()
}

/// Build the run-manifest JSON for `bin` from the runner's recorded
/// state. Separated from file IO so tests can round-trip it.
pub fn manifest_json(bin: &str, runner: &TrialRunner) -> String {
    let merged = runner.obs_merged();
    let (g_ok, g_rep, g_rej) = runner.guard_totals();
    let mut out = String::from("{\"schema\":");
    push_json_str(&mut out, MANIFEST_SCHEMA);
    out.push_str(",\"bin\":");
    push_json_str(&mut out, bin);
    let _ = write!(out, ",\"threads\":{}", runner.threads());
    out.push_str(",\"knobs\":{");
    for (i, (k, v)) in knob_pairs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        out.push(':');
        push_json_str(&mut out, v);
    }
    out.push('}');
    let _ = write!(
        out,
        ",\"trials_recorded\":{}",
        runner.obs_trials_sorted().len()
    );
    let _ = write!(
        out,
        ",\"guard\":{{\"ok\":{g_ok},\"repaired\":{g_rep},\"rejected\":{g_rej}}}"
    );
    let _ = write!(out, ",\"edges_total\":{}", runner.total_edges());
    match runner.peak_rss_delta_kb() {
        Some(kb) => {
            let _ = write!(out, ",\"peak_rss_delta_kb\":{kb}");
        }
        None => out.push_str(",\"peak_rss_delta_kb\":null"),
    }
    // Spans carry wall clocks, so they live outside the canonical
    // `metrics` object that the determinism gate compares.
    out.push_str(",\"spans\":{");
    for (i, (name, (count, ns))) in merged.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        let _ = write!(out, ":{{\"count\":{count},\"total_ns\":{ns}}}");
    }
    out.push('}');
    let _ = write!(out, ",\"metrics\":{}", merged.to_json());
    out.push('}');
    out
}

/// One trace line per buffered event, in trial-key order:
/// `{"trial":k,"event":"name","a":…,"b":…}`.
pub fn trace_jsonl(runner: &TrialRunner) -> String {
    let mut out = String::new();
    for trial in runner.obs_trials_sorted() {
        for ev in &trial.events {
            let _ = write!(out, "{{\"trial\":{},\"event\":", trial.key);
            push_json_str(&mut out, ev.name);
            let _ = writeln!(out, ",\"a\":{},\"b\":{}}}", ev.a, ev.b);
        }
    }
    out
}

/// Write `results/<bin>.meta.json` (and, under `obs=trace`,
/// `results/<bin>.trace.jsonl`). A no-op when the sink is off, so every
/// binary can call it unconditionally after its run.
pub fn emit_obs(bin: &str, runner: &TrialRunner) {
    if !runner.obs_on() {
        return;
    }
    let meta_path = format!("results/{bin}.meta.json");
    write_output(&meta_path, &manifest_json(bin, runner));
    eprintln!("# obs: wrote {meta_path}");
    let trace = trace_jsonl(runner);
    if !trace.is_empty() {
        let trace_path = format!("results/{bin}.trace.jsonl");
        write_output(&trace_path, &trace);
        eprintln!("# obs: wrote {trace_path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::{Metric, MetricsSnapshot, Recorder as _};

    fn recorded_runner(trace: bool) -> TrialRunner {
        let runner = TrialRunner::new(3).with_obs(trace);
        for key in [2u64, 0, 1] {
            let mut rec = runner.obs_recorder();
            rec.counter(Metric::KkEdges, 100 + key);
            rec.observe(Metric::KkLevelAtInclusion, key);
            rec.event("kk.include", key, 5);
            runner.obs_record(key, rec);
        }
        runner
    }

    #[test]
    fn manifest_embeds_canonical_snapshot() {
        let runner = recorded_runner(false);
        let manifest = manifest_json("table1", &runner);
        let inline = runner.obs_merged().to_json();
        assert!(
            manifest.contains(&format!("\"metrics\":{inline}")),
            "manifest missing canonical snapshot: {manifest}"
        );
        assert!(manifest.contains("\"schema\":\"setcover.obs.manifest/1\""));
        assert!(manifest.contains("\"bin\":\"table1\""));
        assert!(manifest.contains("\"trials_recorded\":3"));
    }

    #[test]
    fn manifest_metrics_round_trip() {
        let runner = recorded_runner(false);
        let manifest = manifest_json("x", &runner);
        // Extract the `metrics` object (it is the final key).
        let start = manifest.find("\"metrics\":").expect("metrics key") + "\"metrics\":".len();
        let metrics = &manifest[start..manifest.len() - 1];
        let parsed = MetricsSnapshot::from_json(metrics).expect("valid snapshot JSON");
        assert_eq!(parsed.to_json(), runner.obs_merged().to_json());
    }

    #[test]
    fn trace_lines_are_in_trial_key_order() {
        let runner = recorded_runner(true);
        let trace = trace_jsonl(&runner);
        let trials: Vec<&str> = trace
            .lines()
            .map(|l| {
                l.strip_prefix("{\"trial\":")
                    .and_then(|r| r.split(',').next())
                    .unwrap()
            })
            .collect();
        assert_eq!(trials, vec!["0", "1", "2"]);
        assert!(trace
            .lines()
            .all(|l| l.contains("\"event\":\"kk.include\"")));
    }

    #[test]
    fn trace_is_empty_without_trace_mode() {
        let runner = recorded_runner(false);
        assert!(trace_jsonl(&runner).is_empty());
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn obs_trial_macro_records_when_enabled() {
        let runner = TrialRunner::new(2).with_obs(false);
        let out = obs_trial!(&runner, 7, |rec| {
            rec.counter(Metric::DriverEdges, 3);
            42usize
        });
        assert_eq!(out, 42);
        let trials = runner.obs_trials_sorted();
        assert_eq!(trials.len(), 1);
        assert_eq!(trials[0].key, 7);
        assert_eq!(trials[0].snapshot.counters.get("driver.edges"), Some(&3));
    }

    #[test]
    fn obs_trial_macro_is_noop_when_disabled() {
        let runner = TrialRunner::new(2);
        let out = obs_trial!(&runner, 0, |rec| {
            rec.counter(Metric::DriverEdges, 3);
            "done"
        });
        assert_eq!(out, "done");
        assert!(runner.obs_trials_sorted().is_empty());
    }
}
