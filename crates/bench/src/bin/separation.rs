//! E-F3 — The adversarial/random-order separation (Theorems 2 + 3):
//! Algorithm 1 at its Õ(m/√n) budget per arrival order, with its internal
//! detector statistics, against KK and the first-set baseline.
//!
//! Usage: `cargo run -p setcover-bench --release --bin separation \
//!             [n=4096] [trials=3] [threads=<auto>]`
//!
//! With `threads=N > 1` the run is replayed serially, byte-equivalence
//! of the two reports is asserted, and both timings plus the speedup go
//! to stderr (stdout carries only the report).

use setcover_bench::experiments::separation;
use setcover_bench::harness::{arg_str, arg_usize, check_args};
use setcover_bench::{emit_obs, timed_report_vs_serial, TrialRunner};

fn main() {
    check_args(&["m", "n", "opt", "trials", "threads", "obs"]);
    let mut p = separation::Params {
        n: arg_usize("n", 4096),
        opt: arg_usize("opt", 8),
        trials: arg_usize("trials", 3),
        ..Default::default()
    };
    if arg_str("m").is_some() {
        p.m = Some(arg_usize("m", 0));
    }
    let runner = TrialRunner::from_args();
    print!(
        "{}",
        timed_report_vs_serial("separation", &runner, |r| separation::run_with(&p, r))
    );
    emit_obs("separation", &runner);
}
