//! E-F3 — The adversarial/random-order separation (Theorems 2 + 3):
//! Algorithm 1 at its Õ(m/√n) budget per arrival order, with its internal
//! detector statistics, against KK and the first-set baseline.
//!
//! Usage: `cargo run -p setcover-bench --release --bin separation [n=4096] [trials=3]`

use setcover_bench::experiments::separation;
use setcover_bench::harness::{arg_str, arg_usize};

fn main() {
    let mut p = separation::Params {
        n: arg_usize("n", 4096),
        opt: arg_usize("opt", 8),
        trials: arg_usize("trials", 3),
        ..Default::default()
    };
    if arg_str("m").is_some() {
        p.m = Some(arg_usize("m", 0));
    }
    print!("{}", separation::run(&p));
}
