//! E-A1..A4 — Ablations of the design choices DESIGN.md calls out:
//! KK level width, Algorithm 1 randomness dose (block-shuffled streams)
//! and `mark_floor`, and the multi-pass sieve's pass count.
//!
//! Usage: `cargo run -p setcover-bench --release --bin ablation [trials=3]`

use setcover_bench::experiments::ablation;
use setcover_bench::harness::arg_usize;

fn main() {
    let p = ablation::Params { trials: arg_usize("trials", 3) };
    print!("{}", ablation::run(&p));
}
