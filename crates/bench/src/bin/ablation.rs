//! E-A1..A4 — Ablations of the design choices DESIGN.md calls out:
//! KK level width, Algorithm 1 randomness dose (block-shuffled streams)
//! and `mark_floor`, and the multi-pass sieve's pass count.
//!
//! Usage: `cargo run -p setcover-bench --release --bin ablation [trials=3] [threads=<auto>]`

use setcover_bench::experiments::ablation;
use setcover_bench::harness::{arg_usize, check_args};
use setcover_bench::{emit_obs, timed_report, TrialRunner};

fn main() {
    check_args(&["trials", "threads", "obs"]);
    let p = ablation::Params {
        trials: arg_usize("trials", 3),
    };
    let runner = TrialRunner::from_args();
    print!(
        "{}",
        timed_report("ablation", &runner, |r| ablation::run_with(&p, r))
    );
    emit_obs("ablation", &runner);
}
