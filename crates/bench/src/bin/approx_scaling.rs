//! E-F2 — Approximation ratio vs n for the √n-regime algorithms
//! (theory slope ≈ 0.5 in log-log).
//!
//! Usage: `cargo run -p setcover-bench --release --bin approx_scaling [max_n=1600] [trials=3]`

use setcover_bench::experiments::approx_scaling;
use setcover_bench::harness::arg_usize;

fn main() {
    let p = approx_scaling::Params {
        max_n: arg_usize("max_n", 1600),
        trials: arg_usize("trials", 3),
    };
    print!("{}", approx_scaling::run(&p));
}
