//! E-F2 — Approximation ratio vs n for the √n-regime algorithms
//! (theory slope ≈ 0.5 in log-log).
//!
//! Usage: `cargo run -p setcover-bench --release --bin approx_scaling [max_n=1600] [trials=3] [threads=<auto>]`

use setcover_bench::experiments::approx_scaling;
use setcover_bench::harness::{arg_usize, check_args};
use setcover_bench::{emit_obs, timed_report, TrialRunner};

fn main() {
    check_args(&["max_n", "trials", "threads", "obs"]);
    let p = approx_scaling::Params {
        max_n: arg_usize("max_n", 1600),
        trials: arg_usize("trials", 3),
    };
    let runner = TrialRunner::from_args();
    print!(
        "{}",
        timed_report("approx_scaling", &runner, |r| approx_scaling::run_with(
            &p, r
        ))
    );
    emit_obs("approx_scaling", &runner);
}
