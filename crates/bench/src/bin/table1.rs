//! E-T1 — Regenerate **Table 1** of the paper, empirically.
//!
//! | row | regime | algorithm | theory space |
//! |-----|--------|-----------|--------------|
//! | 1 | α = o(√n), adversarial | element sampling [AKL] | Θ̃(mn/α) |
//! | 2 | α = Θ̃(√n), adversarial | KK-algorithm [KK] | Õ(m) |
//! | 3 | α = Ω̃(√n), adversarial | Algorithm 2 (here) | Õ(mn/α²) |
//! | 4 | α = Θ̃(√n), random | Algorithm 1 (here) | Õ(m/√n) |
//!
//! Usage: `cargo run -p setcover-bench --release --bin table1 [n=576] [m=...] [trials=3] [threads=<auto>]`

use setcover_bench::experiments::table1;
use setcover_bench::harness::{arg_str, arg_usize, check_args};
use setcover_bench::{emit_obs, timed_report, TrialRunner};

fn main() {
    check_args(&["m", "n", "trials", "threads", "obs"]);
    let mut p = table1::Params {
        n: arg_usize("n", 576),
        ..Default::default()
    };
    p.trials = arg_usize("trials", p.trials);
    if arg_str("m").is_some() {
        p.m = Some(arg_usize("m", 0));
    }
    let runner = TrialRunner::from_args();
    print!(
        "{}",
        timed_report("table1", &runner, |r| table1::run_with(&p, r))
    );
    emit_obs("table1", &runner);
}
