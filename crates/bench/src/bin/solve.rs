//! CLI: run any solver on an instance or stream file and report the
//! verified cover, space, and throughput.
//!
//! ```console
//! $ cargo run -p setcover-bench --release --bin solve \
//!       stream=inst.scs algo=kk seed=3
//! $ cargo run -p setcover-bench --release --bin solve \
//!       inst=inst.sc order=uniform algo=alg2 alpha=64
//! ```
//!
//! Algorithms: `kk`, `alg1` (random-order), `alg2` (adversarial
//! low-space), `element-sampling`, `set-arrival`, `first-set`,
//! `store-all`, `multipass` (with `passes=`), `greedy` (offline).

use std::fs::File;
use std::io::BufReader;

use setcover_algos::{
    greedy_cover, AdversarialConfig, AdversarialSolver, ElementSamplingConfig,
    ElementSamplingSolver, FirstSetSolver, KkSolver, MultiPassSieve, RandomOrderConfig,
    RandomOrderSolver, SetArrivalThresholdSolver, StoreAllSolver,
};
use setcover_bench::harness::{arg_f64, arg_str, arg_usize, check_args, die};
use setcover_bench::{emit_obs, obs_trial, TrialRunner};
use setcover_core::io::{read_instance, read_stream};
use setcover_core::math::isqrt;
use setcover_core::solver::{
    run_multipass, run_multipass_streams, run_on_edges, run_streaming, RunOutcome,
};
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_core::{Edge, SetCoverInstance, StreamingSetCover};

/// Where the edge sequence comes from: a materialized `.scs` replay
/// buffer (order lives in the file), or a lazy order regenerated from the
/// instance CSR — the default `inst=` path materializes nothing.
enum Source {
    Replay(Vec<Edge>),
    Lazy(StreamOrder),
}

impl Source {
    fn num_edges(&self, inst: &SetCoverInstance) -> usize {
        match self {
            Source::Replay(edges) => edges.len(),
            Source::Lazy(_) => inst.num_edges(),
        }
    }
}

fn load() -> (SetCoverInstance, Source) {
    if let Some(path) = arg_str("stream") {
        let f = BufReader::new(
            File::open(&path).unwrap_or_else(|e| die(&format!("cannot open `{path}`: {e}"))),
        );
        let parsed = read_stream(f).unwrap_or_else(|e| die(&format!("cannot parse `{path}`: {e}")));
        let inst = parsed.to_instance().unwrap_or_else(|e| {
            die(&format!(
                "`{path}` does not describe a feasible instance: {e}"
            ))
        });
        (inst, Source::Replay(parsed.edges))
    } else if let Some(path) = arg_str("inst") {
        let f = BufReader::new(
            File::open(&path).unwrap_or_else(|e| die(&format!("cannot open `{path}`: {e}"))),
        );
        let inst = read_instance(f).unwrap_or_else(|e| die(&format!("cannot parse `{path}`: {e}")));
        let seed = arg_usize("seed", 7) as u64;
        let order = match arg_str("order").as_deref() {
            None | Some("uniform") => StreamOrder::Uniform(seed),
            Some("set-arrival") => StreamOrder::SetArrival,
            Some("interleaved") => StreamOrder::Interleaved,
            Some("element-grouped") => StreamOrder::ElementGrouped,
            Some("greedy-trap") => StreamOrder::GreedyTrap,
            Some(other) => {
                eprintln!("unknown order `{other}`");
                std::process::exit(2);
            }
        };
        (inst, Source::Lazy(order))
    } else {
        eprintln!("pass stream=<file.scs> or inst=<file.sc>");
        std::process::exit(2);
    }
}

fn run_solver<A: StreamingSetCover>(
    solver: A,
    inst: &SetCoverInstance,
    src: &Source,
) -> RunOutcome {
    match src {
        Source::Replay(edges) => run_on_edges(solver, edges),
        Source::Lazy(order) => run_streaming(solver, stream_of(inst, *order)),
    }
}

fn report(inst: &SetCoverInstance, out: RunOutcome) {
    out.cover
        .verify(inst)
        .expect("solver must produce a valid cover");
    println!("algorithm: {}", out.algorithm);
    println!(
        "cover:     {} sets (universe {})",
        out.cover.size(),
        inst.n()
    );
    println!("space:     {}", out.space);
    println!(
        "pass:      {} edges in {:.2?} ({:.2} M edges/s)",
        out.edges_processed,
        out.elapsed,
        out.edges_per_sec() / 1e6
    );
}

fn main() {
    check_args(&[
        "alpha", "algo", "inst", "order", "stream", "passes", "seed", "obs",
    ]);
    let (inst, src) = load();
    let (m, n) = (inst.m(), inst.n());
    let nn = src.num_edges(&inst);
    let seed = arg_usize("seed", 7) as u64;
    let algo = arg_str("algo").unwrap_or_else(|| "kk".to_string());
    println!("instance: m = {m}, n = {n}, N = {nn} stream edges");

    // Serial by design (one solver, one pass); the runner exists so
    // `obs=` can capture this run's metrics into a manifest.
    let runner = TrialRunner::serial().obs_from_args();

    match algo.as_str() {
        "kk" => {
            let out = obs_trial!(&runner, 0, |rec| run_solver(
                KkSolver::with_recorder(m, n, setcover_algos::KkConfig::paper(n), seed, rec),
                &inst,
                &src
            ));
            runner.add_edges(out.edges_processed);
            report(&inst, out)
        }
        "alg1" => {
            let out = obs_trial!(&runner, 0, |rec| run_solver(
                RandomOrderSolver::with_recorder(
                    m,
                    n,
                    nn,
                    RandomOrderConfig::practical(),
                    seed,
                    rec
                ),
                &inst,
                &src
            ));
            runner.add_edges(out.edges_processed);
            report(&inst, out)
        }
        "alg2" => {
            let alpha = arg_f64("alpha", 2.0 * (n as f64).sqrt());
            let out = obs_trial!(&runner, 0, |rec| run_solver(
                AdversarialSolver::with_recorder(
                    m,
                    n,
                    AdversarialConfig::with_alpha(alpha),
                    seed,
                    rec
                ),
                &inst,
                &src
            ));
            runner.add_edges(out.edges_processed);
            report(&inst, out)
        }
        "element-sampling" => {
            let alpha = arg_f64("alpha", (n as f64).sqrt() / 2.0);
            let out = obs_trial!(&runner, 0, |rec| run_solver(
                ElementSamplingSolver::with_recorder(
                    m,
                    n,
                    ElementSamplingConfig::for_alpha(alpha.max(1.0), m, 1.0),
                    seed,
                    rec
                ),
                &inst,
                &src
            ));
            runner.add_edges(out.edges_processed);
            report(&inst, out)
        }
        "set-arrival" => {
            let out = obs_trial!(&runner, 0, |rec| run_solver(
                SetArrivalThresholdSolver::with_recorder(m, n, isqrt(n).max(1), rec),
                &inst,
                &src
            ));
            runner.add_edges(out.edges_processed);
            report(&inst, out)
        }
        "first-set" => report(&inst, run_solver(FirstSetSolver::new(m, n), &inst, &src)),
        "store-all" => report(&inst, run_solver(StoreAllSolver::new(m, n), &inst, &src)),
        "multipass" => {
            let passes = arg_usize("passes", 4);
            let out = match &src {
                Source::Replay(edges) => run_multipass(MultiPassSieve::new(m, n, passes), edges),
                Source::Lazy(order) => {
                    run_multipass_streams(MultiPassSieve::new(m, n, passes), || {
                        stream_of(&inst, *order)
                    })
                }
            };
            out.cover.verify(&inst).expect("valid cover");
            println!(
                "algorithm: {} ({} passes used)",
                out.algorithm, out.passes_used
            );
            println!("cover:     {} sets", out.cover.size());
            println!("space:     {}", out.space);
        }
        "greedy" => {
            let cover = greedy_cover(&inst);
            cover.verify(&inst).expect("valid cover");
            println!("algorithm: greedy-offline");
            println!("cover:     {} sets", cover.size());
        }
        other => {
            eprintln!("unknown algorithm `{other}`");
            std::process::exit(2);
        }
    }
    emit_obs("solve", &runner);
}
