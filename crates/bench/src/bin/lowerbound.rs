//! E-F4 / E-F6 / E-F7 — The lower-bound constructions, measured:
//! Lemma 1 family intersections, the Theorem 2 distinguishing game, the
//! success-vs-total-state budget sweep, and the simple 2√(nt) protocol.
//!
//! Usage: `cargo run -p setcover-bench --release --bin lowerbound [trials=5] [threads=<auto>]`

use setcover_bench::experiments::lowerbound;
use setcover_bench::harness::{arg_usize, check_args};
use setcover_bench::{emit_obs, timed_report, TrialRunner};

fn main() {
    check_args(&["trials", "threads", "obs"]);
    let p = lowerbound::Params {
        trials: arg_usize("trials", 5),
    };
    let runner = TrialRunner::from_args();
    print!(
        "{}",
        timed_report("lowerbound", &runner, |r| lowerbound::run_with(&p, r))
    );
    emit_obs("lowerbound", &runner);
}
