//! E-L2 — Lemma 2's concentration bounds, validated by exact
//! hypergeometric simulation (see the experiments module docs).
//!
//! Usage: `cargo run -p setcover-bench --release --bin concentration [trials=300] [threads=<auto>]`

use setcover_bench::experiments::concentration;
use setcover_bench::harness::{arg_usize, check_args};
use setcover_bench::{emit_obs, timed_report, TrialRunner};

fn main() {
    check_args(&["trials", "threads", "obs"]);
    let p = concentration::Params {
        trials: arg_usize("trials", 300),
    };
    let runner = TrialRunner::from_args();
    print!(
        "{}",
        timed_report("concentration", &runner, |r| concentration::run_with(&p, r))
    );
    emit_obs("concentration", &runner);
}
