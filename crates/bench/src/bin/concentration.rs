//! E-L2 — Lemma 2's concentration bounds, validated by exact
//! hypergeometric simulation (see the experiments module docs).
//!
//! Usage: `cargo run -p setcover-bench --release --bin concentration [trials=300]`

use setcover_bench::experiments::concentration;
use setcover_bench::harness::arg_usize;

fn main() {
    let p = concentration::Params { trials: arg_usize("trials", 300) };
    print!("{}", concentration::run(&p));
}
