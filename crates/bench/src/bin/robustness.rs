//! E-R1 — Solver degradation under injected stream faults: seeded chaos
//! streams ingested through a Repair-policy guard, all five streaming
//! solvers per cell, every cover verified against the delivered
//! sub-instance. Degradation curves are written as JSON for plotting.
//!
//! Usage: `cargo run -p setcover-bench --release --bin robustness \
//!             [n=512] [m=2048] [opt=12] [trials=3] \
//!             [json_out=results/robustness.json] [threads=<auto>]`
//!
//! `SC_BENCH_QUICK=1` shrinks the default sweep for CI smoke runs.

use std::cell::RefCell;

use setcover_bench::experiments::robustness;
use setcover_bench::harness::{arg_str, arg_usize, check_args, write_output};
use setcover_bench::{emit_obs, timed_report, TrialRunner};

fn main() {
    check_args(&["n", "m", "opt", "trials", "json_out", "threads", "obs"]);
    let defaults = robustness::Params::default();
    let p = robustness::Params {
        n: arg_usize("n", defaults.n),
        m: arg_usize("m", defaults.m),
        opt: arg_usize("opt", defaults.opt),
        trials: arg_usize("trials", defaults.trials),
        rates: defaults.rates,
    };
    let json_path = arg_str("json_out").unwrap_or_else(|| "results/robustness.json".to_string());
    let runner = TrialRunner::from_args();

    let json = RefCell::new(String::new());
    let text = timed_report("robustness", &runner, |r| {
        let (text, j) = robustness::run_full(&p, r);
        *json.borrow_mut() = j;
        text
    });
    print!("{text}");

    let json = json.into_inner();
    write_output(&json_path, &json);
    eprintln!("degradation curves -> {json_path}");
    emit_obs("robustness", &runner);
}
