//! E-F5 — Empirical traces of Algorithm 1's analysis invariants
//! ((I1)–(I3), Lemma 8) from a probing run.
//!
//! Usage: `cargo run -p setcover-bench --release --bin invariants [n=4096] [opt=8] [threads=<auto>]`

use setcover_bench::experiments::invariants;
use setcover_bench::harness::{arg_str, arg_usize, check_args};
use setcover_bench::{emit_obs, timed_report, TrialRunner};

fn main() {
    check_args(&["m", "n", "opt", "threads", "obs"]);
    let mut p = invariants::Params {
        n: arg_usize("n", 4096),
        opt: arg_usize("opt", 8),
        ..Default::default()
    };
    if arg_str("m").is_some() {
        p.m = Some(arg_usize("m", 0));
    }
    let runner = TrialRunner::from_args();
    print!(
        "{}",
        timed_report("invariants", &runner, |r| invariants::run_with(&p, r))
    );
    emit_obs("invariants", &runner);
}
