//! CLI: generate a workload and write it to disk.
//!
//! Writes the instance in `.sc` set-list format and, when `order=` is
//! given, the concrete ordered stream in `.scs` format — an interchange
//! point for comparing against other implementations on identical
//! adversarial orders.
//!
//! ```console
//! $ cargo run -p setcover-bench --release --bin gen_instance \
//!       kind=planted n=1024 m=16384 opt=16 seed=7 \
//!       out=inst.sc order=interleaved stream_out=inst.scs
//! ```
//!
//! Kinds: `planted`, `uniform`, `zipf`, `blogwatch`, `gnp`, `hubs`,
//! `kk-trap`, `spike`. Orders: `set-arrival`, `interleaved`,
//! `element-grouped`, `uniform`, `greedy-trap`.

use std::fs::File;
use std::io::BufWriter;

use setcover_bench::harness::{arg_f64, arg_str, arg_usize, check_args, die, ensure_parent_dir};
use setcover_bench::{emit_obs, TrialRunner};
use setcover_core::io::{write_instance, write_stream};
use setcover_core::math::isqrt;
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_gen::coverage::{blog_watch, BlogWatchConfig};
use setcover_gen::dominating::{gnp, planted_hubs};
use setcover_gen::hard::{degree_spike, kk_level_trap};
use setcover_gen::planted::{planted, PlantedConfig};
use setcover_gen::uniform::{uniform, UniformConfig};
use setcover_gen::zipf::{zipf, ZipfConfig};
use setcover_gen::Workload;

fn main() {
    check_args(&[
        "p",
        "theta",
        "kind",
        "order",
        "out",
        "stream_out",
        "extra",
        "m",
        "n",
        "opt",
        "seed",
        "size",
        "spikes",
        "obs",
    ]);
    let kind = arg_str("kind").unwrap_or_else(|| "planted".to_string());
    let n = arg_usize("n", 1024);
    let m = arg_usize("m", 4 * n);
    let opt = arg_usize("opt", (isqrt(n) / 2).max(2));
    let seed = arg_usize("seed", 7) as u64;

    let w: Workload = match kind.as_str() {
        "planted" => planted(&PlantedConfig::exact(n, m, opt), seed).workload,
        "uniform" => uniform(
            &UniformConfig::ranged(n, m, 1, arg_usize("size", isqrt(n)).max(1)),
            seed,
        ),
        "zipf" => zipf(
            &ZipfConfig {
                n,
                m,
                set_size: arg_usize("size", 8),
                theta: arg_f64("theta", 1.1),
            },
            seed,
        ),
        "blogwatch" => blog_watch(&BlogWatchConfig::default_shape(n, m), seed),
        "gnp" => gnp(n, arg_f64("p", 0.01), seed),
        "hubs" => planted_hubs(n, opt, arg_usize("extra", n), seed),
        "kk-trap" => kk_level_trap(n, m, opt, seed),
        "spike" => degree_spike(n, m, opt, arg_usize("spikes", 3), seed),
        other => {
            eprintln!("unknown kind `{other}`");
            std::process::exit(2);
        }
    };

    println!(
        "{}: m = {}, n = {}, N = {}",
        w.label,
        w.instance.m(),
        w.instance.n(),
        w.instance.num_edges()
    );

    let runner = TrialRunner::serial().obs_from_args();
    runner.add_edges(w.instance.num_edges());

    let out = arg_str("out").unwrap_or_else(|| format!("{kind}.sc"));
    ensure_parent_dir(&out);
    let f = BufWriter::new(
        File::create(&out).unwrap_or_else(|e| die(&format!("cannot create `{out}`: {e}"))),
    );
    write_instance(&w.instance, f).unwrap_or_else(|e| die(&format!("cannot write `{out}`: {e}")));
    println!("instance -> {out}");

    if let Some(order_name) = arg_str("order") {
        let order = match order_name.as_str() {
            "set-arrival" => StreamOrder::SetArrival,
            "interleaved" => StreamOrder::Interleaved,
            "element-grouped" => StreamOrder::ElementGrouped,
            "uniform" => StreamOrder::Uniform(seed),
            "greedy-trap" => StreamOrder::GreedyTrap,
            other => {
                eprintln!("unknown order `{other}`");
                std::process::exit(2);
            }
        };
        let stream_out = arg_str("stream_out").unwrap_or_else(|| format!("{kind}.scs"));
        ensure_parent_dir(&stream_out);
        let f = BufWriter::new(
            File::create(&stream_out)
                .unwrap_or_else(|e| die(&format!("cannot create `{stream_out}`: {e}"))),
        );
        // The lazy stream serializes straight from the CSR — no Vec<Edge>.
        write_stream(
            w.instance.m(),
            w.instance.n(),
            stream_of(&w.instance, order),
            f,
        )
        .unwrap_or_else(|e| die(&format!("cannot write `{stream_out}`: {e}")));
        println!("stream ({}) -> {stream_out}", order.name());
    }
    emit_obs("gen_instance", &runner);
}
