//! E-F1 — Algorithm 2 space/approximation trade-off over α (Theorem 4).
//!
//! Sweeps α = c·√n for c ∈ {2, 4, 8, 16, 32}, measuring the level-map
//! size |L| (the Õ(mn/α²) quantity), the ratio, and the log-log slope.
//!
//! Usage: `cargo run -p setcover-bench --release --bin alpha_sweep [n=1024] [trials=3]`

use setcover_bench::experiments::alpha_sweep;
use setcover_bench::harness::{arg_str, arg_usize};

fn main() {
    let mut p = alpha_sweep::Params { n: arg_usize("n", 1024), ..Default::default() };
    p.trials = arg_usize("trials", p.trials);
    if arg_str("m").is_some() {
        p.m = Some(arg_usize("m", 0));
    }
    print!("{}", alpha_sweep::run(&p));
}
