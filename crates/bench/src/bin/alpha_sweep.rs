//! E-F1 — Algorithm 2 space/approximation trade-off over α (Theorem 4).
//!
//! Sweeps α = c·√n for c ∈ {2, 4, 8, 16, 32}, measuring the level-map
//! size |L| (the Õ(mn/α²) quantity), the ratio, and the log-log slope.
//!
//! Usage: `cargo run -p setcover-bench --release --bin alpha_sweep \
//!             [n=1024] [trials=3] [threads=<auto>]`
//!
//! With `threads=N > 1` the run is replayed serially, byte-equivalence
//! of the two reports is asserted, and both timings plus the speedup go
//! to stderr (stdout carries only the report).

use setcover_bench::experiments::alpha_sweep;
use setcover_bench::harness::{arg_str, arg_usize, check_args};
use setcover_bench::{emit_obs, timed_report_vs_serial, TrialRunner};

fn main() {
    check_args(&["m", "n", "trials", "threads", "obs"]);
    let mut p = alpha_sweep::Params {
        n: arg_usize("n", 1024),
        ..Default::default()
    };
    p.trials = arg_usize("trials", p.trials);
    if arg_str("m").is_some() {
        p.m = Some(arg_usize("m", 0));
    }
    let runner = TrialRunner::from_args();
    print!(
        "{}",
        timed_report_vs_serial("alpha_sweep", &runner, |r| alpha_sweep::run_with(&p, r))
    );
    emit_obs("alpha_sweep", &runner);
}
