//! The experiments as library functions.
//!
//! Every table/figure reproduction is a function `run(&Params) -> String`
//! returning the full report section (tables, sparkline "figures",
//! commentary, CSV). The `table1`, `alpha_sweep`, ... binaries are thin
//! CLI wrappers; the `report` binary concatenates all sections into a
//! single document — one command regenerates the entire reproduction.
//!
//! All functions verify every cover before reporting a number and are
//! deterministic in their parameters.

pub mod ablation;
pub mod alpha_sweep;
pub mod approx_scaling;
pub mod concentration;
pub mod invariants;
pub mod lowerbound;
pub mod robustness;
pub mod separation;
pub mod table1;

use std::fmt::Write as _;

use crate::Table;

/// A growing report section.
#[derive(Debug, Default, Clone)]
pub struct Report {
    buf: String,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a paragraph/line.
    pub fn line(&mut self, s: impl AsRef<str>) -> &mut Self {
        let _ = writeln!(self.buf, "{}", s.as_ref());
        self
    }

    /// Append a blank line.
    pub fn blank(&mut self) -> &mut Self {
        let _ = writeln!(self.buf);
        self
    }

    /// Append a rendered table followed by its CSV form.
    pub fn table(&mut self, t: &Table) -> &mut Self {
        let _ = writeln!(self.buf, "{}", t.render());
        self
    }

    /// Append a table's CSV (for machine consumption).
    pub fn csv(&mut self, t: &Table) -> &mut Self {
        let _ = writeln!(self.buf, "CSV:\n{}", t.to_csv());
        self
    }

    /// Finish into the section text.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates() {
        let mut r = Report::new();
        r.line("hello").blank().line("world");
        let mut t = Table::new("t", &["a"]);
        t.row(&["1".into()]);
        r.table(&t).csv(&t);
        let s = r.finish();
        assert!(s.contains("hello\n\nworld\n"));
        assert!(s.contains("## t"));
        assert!(s.contains("CSV:\na\n1"));
    }
}
