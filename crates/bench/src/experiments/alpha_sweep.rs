//! E-F1 — Algorithm 2 space/approximation trade-off over α (Theorem 4).

use setcover_algos::{AdversarialConfig, AdversarialSolver};
use setcover_core::math::isqrt;
use setcover_core::stream::StreamOrder;
use setcover_gen::planted::{planted, PlantedConfig};

use crate::harness::{measure_order, trial_seeds, Measurement};
use crate::par::TrialRunner;
use crate::table::{fmt_words, sparkline_log};
use crate::{loglog_slope, Table};

use super::Report;

/// Parameters for the α sweep.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Universe size.
    pub n: usize,
    /// Number of sets (default `16·n`).
    pub m: Option<usize>,
    /// Trials per α.
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 1024,
            m: None,
            trials: 3,
        }
    }
}

/// Run the experiment serially and return the report section.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run the experiment on `runner`'s worker pool. The report text is
/// byte-identical for every thread count: each trial's seed comes from
/// its (α, trial) grid coordinates and results are reassembled in grid
/// order.
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    let n = p.n;
    let trials = p.trials;
    let m = p.m.unwrap_or(16 * n);
    let sqrt_n = isqrt(n);
    let opt = (sqrt_n / 2).max(2);
    let mut r = Report::new();

    r.line(format!(
        "Algorithm 2 α-sweep: n = {n} (√n = {sqrt_n}), m = {m}, OPT = {opt}"
    ));
    r.blank();

    let pl = planted(&PlantedConfig::exact(n, m, opt), 0x0a15_e0e9);
    let inst = &pl.workload.instance;

    let mut table = Table::new(
        "Algorithm 2: space & ratio vs α",
        &[
            "alpha",
            "alpha/√n",
            "bound mn/α²",
            "measured |L| words",
            "ratio",
            "cover",
        ],
    );
    let mut points: Vec<(f64, f64)> = Vec::new();

    // Trial grid: (α multiplier, trial seed), seeds derived from the α
    // coordinate exactly as the serial loops always did.
    let cs = [2usize, 4, 8, 16, 32];
    let grid: Vec<(usize, u64)> = cs
        .iter()
        .flat_map(|&c| {
            trial_seeds(c as u64, trials)
                .into_iter()
                .map(move |s| (c, s))
        })
        .collect();
    let runs = runner.measure_grid(&grid, |_, &(c, seed)| {
        let alpha = (c * sqrt_n) as f64;
        measure_order(
            AdversarialSolver::new(m, n, AdversarialConfig::with_alpha(alpha), seed),
            inst,
            StreamOrder::Interleaved,
            opt,
        )
    });

    for (ci, &c) in cs.iter().enumerate() {
        let alpha = (c * sqrt_n) as f64;
        let mut meas = Measurement::default();
        for run in &runs[ci * trials..(ci + 1) * trials] {
            meas.push(run.clone());
        }
        let space = meas.algorithmic_words().mean;
        points.push((alpha, space));
        table.row(&[
            format!("{alpha:.0}"),
            format!("{c}"),
            fmt_words(((m * n) as f64 / (alpha * alpha)) as usize),
            format!("{space:.0}"),
            meas.ratio().display(),
            meas.cover_size().display(),
        ]);
    }

    r.table(&table);
    r.line(format!(
        "space vs α (log scale):  {}",
        sparkline_log(&points.iter().map(|pt| pt.1).collect::<Vec<_>>())
    ));
    match loglog_slope(&points) {
        Some(s) => r.line(format!(
            "measured log-log slope of space vs α: {s:.2}  (theory bound slope: -2.0; \
             expected measured range [-2, -1])"
        )),
        None => r.line("slope unavailable (degenerate points)"),
    };
    r.blank();
    r.csv(&table);
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_negative_slope() {
        let s = run(&Params {
            n: 256,
            m: Some(2048),
            trials: 1,
        });
        assert!(s.contains("space & ratio vs α"));
        assert!(s.contains("log-log slope"));
        // Extract the slope and check it is negative.
        let slope: f64 = s
            .lines()
            .find(|l| l.contains("measured log-log slope"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .expect("slope line present");
        assert!(slope < -0.5, "slope {slope} should be clearly negative");
    }
}
