//! E-A1..A4 — ablations of the design choices DESIGN.md calls out
//! (KK level width; Algorithm 1 randomness dose and `mark_floor`; the
//! multi-pass sieve's pass count).

use setcover_algos::{KkConfig, KkSolver, MultiPassSieve, RandomOrderConfig, RandomOrderSolver};
use setcover_core::math::isqrt;
use setcover_core::solver::run_multipass_streams;
use setcover_core::stream::{stream_of, EdgeStream, StreamOrder};
use setcover_core::StreamingSetCover;
use setcover_gen::hard::kk_level_trap;
use setcover_gen::planted::{planted, PlantedConfig};

use crate::harness::{measure_order, trial_seeds, Measurement};
use crate::par::TrialRunner;
use crate::Table;

use super::Report;

/// Parameters for the ablation suite.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Trials per configuration (level-width section).
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { trials: 3 }
    }
}

/// Run all four ablations serially and return the report.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run all four ablations on `runner`'s worker pool; output is
/// byte-identical at any thread count.
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    let mut r = Report::new();
    kk_level_width(&mut r, p.trials, runner);
    randomness_dose(&mut r, runner);
    passes_sweep(&mut r, runner);
    mark_floor_sweep(&mut r, runner);
    r.finish()
}

fn kk_level_width(r: &mut Report, trials: usize, runner: &TrialRunner) {
    let n = 1024;
    let m = 8192;
    let opt = 16;
    let sqrt_n = isqrt(n);
    let pl = planted(&PlantedConfig::exact(n, m, opt), 1).workload;
    let trap = kk_level_trap(n, m, opt, 1);

    let mut table = Table::new(
        "KK level width ablation (paper: width = √n)",
        &["width/√n", "width", "planted ratio", "trap ratio"],
    );
    // Each trial regenerates the interleaved order lazily from its
    // workload's CSR — no shared `Vec<Edge>` buffers.
    let workloads = [&pl, &trap];

    // Grid: (width × workload × trial); seeds keyed on the width
    // multiplier exactly as the serial loops always were.
    let nums = [1usize, 2, 4, 8, 16];
    let grid: Vec<(usize, usize, u64)> = nums
        .iter()
        .flat_map(|&num| {
            (0..workloads.len()).flat_map(move |wi| {
                trial_seeds(num as u64, trials)
                    .into_iter()
                    .map(move |s| (num, wi, s))
            })
        })
        .collect();
    let runs = runner.measure_grid(&grid, |_, &(num, wi, seed)| {
        let inst = &workloads[wi].instance;
        let width = (num * sqrt_n / 4).max(1);
        measure_order(
            KkSolver::with_config(
                inst.m(),
                inst.n(),
                KkConfig::paper(inst.n()).with_level_width(width),
                seed,
            ),
            inst,
            StreamOrder::Interleaved,
            opt,
        )
    });

    for (ni, &num) in nums.iter().enumerate() {
        let width = (num * sqrt_n / 4).max(1);
        let mut rows = Vec::new();
        for wi in 0..workloads.len() {
            let at = (ni * workloads.len() + wi) * trials;
            let mut meas = Measurement::default();
            for run in &runs[at..at + trials] {
                meas.push(run.clone());
            }
            rows.push(meas.ratio().display());
        }
        table.row(&[
            format!("{:.2}", width as f64 / sqrt_n as f64),
            width.to_string(),
            rows[0].clone(),
            rows[1].clone(),
        ]);
    }
    r.table(&table);
    r.line(
        "Reading: narrower widths sample more aggressively — at laptop scale the extra\n\
         coverage outweighs the extra picks, so ratios mildly improve; widths past √n\n\
         starve inclusion on the trap (everything patched). The paper's √n balances\n\
         solution size against the Ω(√n) patching term asymptotically.",
    );
    r.blank();
}

fn randomness_dose(r: &mut Report, runner: &TrialRunner) {
    let n = 4096;
    let m = 10 * n;
    let sqrt_n = isqrt(n);
    let pl = planted(
        &PlantedConfig::exact(n, m, 8).with_decoy_size(sqrt_n / 4, sqrt_n / 2),
        2,
    );
    let inst = &pl.workload.instance;
    let nn = inst.num_edges();

    let mut table = Table::new(
        "Algorithm 1 vs randomness dose (block-shuffled set-arrival stream)",
        &[
            "block len",
            "fraction of N",
            "specials",
            "marked-via-T",
            "cover",
        ],
    );
    let blocks: Vec<usize> = [1usize, nn / 1000, nn / 100, nn / 10, nn]
        .into_iter()
        .map(|b| b.max(1))
        .collect();
    let rows = runner.grid(&blocks, |_, &block| {
        let mut cfg = RandomOrderConfig::practical().with_probe();
        cfg.q0 = Some(0.01);
        let mut solver = RandomOrderSolver::new(m, n, nn, cfg, 7);
        let mut stream = stream_of(inst, StreamOrder::BlockShuffled { block, seed: 5 });
        let mut edges = 0usize;
        while let Some(e) = stream.next_edge() {
            solver.process_edge(e);
            edges += 1;
        }
        let cover = solver.finalize();
        cover.verify(inst).expect("valid");
        let probe = solver.take_probe().unwrap();
        let specials: usize = probe.epochs.iter().map(|e| e.specials).sum();
        let marked: usize = probe.epochs.iter().map(|e| e.marked_by_tracking).sum();
        (specials, marked, cover.size(), edges)
    });
    for (&block, &(specials, marked, cover, edges)) in blocks.iter().zip(&rows) {
        runner.add_edges(edges);
        table.row(&[
            block.to_string(),
            format!("{:.4}", block as f64 / nn as f64),
            specials.to_string(),
            marked.to_string(),
            cover.to_string(),
        ]);
    }
    r.table(&table);
    r.line(
        "Reading: at block = 1 (sets contiguous) whole-set dumps mis-fire the detector;\n\
         intermediate blocks inflate detections further (locally bursty signal); only at\n\
         block = N (the Theorem 3 model) does it fire at its designed, low rate.",
    );
    r.blank();
}

fn passes_sweep(r: &mut Report, runner: &TrialRunner) {
    let n = 1024;
    let m = 4096;
    let opt = 16;
    let pl = planted(&PlantedConfig::exact(n, m, opt), 3).workload;
    let inst = &pl.instance;

    let mut table = Table::new(
        "multi-pass sieve: cover vs passes",
        &[
            "passes",
            "used",
            "cover",
            "ratio",
            "bound 2p·n^(1/(p+1))",
            "edges seen",
        ],
    );
    let pass_counts = [1usize, 2, 3, 4, 6, 8, 12];
    let outs = runner.grid(&pass_counts, |_, &passes| {
        let out = run_multipass_streams(MultiPassSieve::new(m, n, passes), || {
            stream_of(inst, StreamOrder::Interleaved)
        });
        out.cover.verify(inst).expect("valid");
        out
    });
    for (&passes, out) in pass_counts.iter().zip(&outs) {
        runner.add_edges(out.edges_processed);
        let bound = 2.0 * passes as f64 * (n as f64).powf(1.0 / (passes as f64 + 1.0));
        table.row(&[
            passes.to_string(),
            out.passes_used.to_string(),
            out.cover.size().to_string(),
            format!("{:.2}", out.cover.size() as f64 / opt as f64),
            format!("{bound:.1}"),
            out.edges_processed.to_string(),
        ]);
    }
    r.table(&table);
    r.line(
        "Reading: quality is NOT monotone at small p — eager picks multi-count shared\n\
         uncovered elements across sets (see multipass module docs); from p ≈ log n the\n\
         dense threshold ladder recovers greedy-like quality.",
    );
    r.blank();
}

fn mark_floor_sweep(r: &mut Report, runner: &TrialRunner) {
    let n = 4096;
    let m = 10 * n;
    let sqrt_n = isqrt(n);
    let pl = planted(
        &PlantedConfig::exact(n, m, 8).with_decoy_size(sqrt_n / 4, sqrt_n / 2),
        4,
    );
    let inst = &pl.workload.instance;

    let mut table = Table::new(
        "Algorithm 1 mark_floor ablation (optimistic-marking threshold floor)",
        &["mark_floor", "marked-via-T", "cover", "valid"],
    );
    let floors = [1.0f64, 2.0, 4.0, 8.0, 1e9];
    let rows = runner.grid(&floors, |_, &floor| {
        let mut cfg = RandomOrderConfig::practical().with_probe();
        cfg.mark_floor = floor;
        cfg.q0 = Some(0.01);
        let mut solver = RandomOrderSolver::new(m, n, inst.num_edges(), cfg, 11);
        let mut stream = stream_of(inst, StreamOrder::Uniform(9));
        while let Some(e) = stream.next_edge() {
            solver.process_edge(e);
        }
        let cover = solver.finalize();
        let valid = cover.verify(inst).is_ok();
        let probe = solver.take_probe().unwrap();
        let marked: usize = probe.epochs.iter().map(|e| e.marked_by_tracking).sum();
        (marked, cover.size(), valid)
    });
    for (&floor, &(marked, cover, valid)) in floors.iter().zip(&rows) {
        runner.add_edges(inst.num_edges());
        table.row(&[
            format!("{floor:.0}"),
            marked.to_string(),
            cover.to_string(),
            valid.to_string(),
        ]);
    }
    r.table(&table);
    r.line(
        "Reading: floor 1 optimistically marks every tracked element (extra patching);\n\
         a huge floor disables the tracking path entirely; correctness holds throughout.",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_ablations_render() {
        let s = run(&Params { trials: 1 });
        assert!(s.contains("KK level width ablation"));
        assert!(s.contains("randomness dose"));
        assert!(s.contains("multi-pass sieve"));
        assert!(s.contains("mark_floor ablation"));
    }
}
