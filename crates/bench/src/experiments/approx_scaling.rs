//! E-F2 — approximation ratio vs n for the √n-regime algorithms.

use setcover_algos::{KkSolver, RandomOrderConfig, RandomOrderSolver};
use setcover_core::math::isqrt;
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_gen::planted::{planted, PlantedConfig};

use crate::harness::{measure, trial_seeds, Measurement};
use crate::table::sparkline_log;
use crate::{loglog_slope, Table};

use super::Report;

/// Parameters for the ratio-vs-n sweep.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Largest universe size included in the sweep.
    pub max_n: usize,
    /// Trials per point.
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { max_n: 1024, trials: 3 }
    }
}

/// Run the experiment and return the report section.
pub fn run(p: &Params) -> String {
    let trials = p.trials;
    let ns: Vec<usize> = [144usize, 256, 400, 576, 784, 1024, 1600, 2304]
        .into_iter()
        .filter(|&n| n <= p.max_n)
        .collect();
    let mut r = Report::new();
    r.line("Ratio scaling vs n (OPT = √n/2, m = n²/16): theory slope ≈ 0.5");
    r.blank();

    let mut table = Table::new(
        "ratio vs n",
        &["n", "sqrt(n)", "m", "kk ratio (adv)", "random-order ratio (rnd)"],
    );
    let mut kk_pts = Vec::new();
    let mut ro_pts = Vec::new();

    for &n in &ns {
        let sqrt_n = isqrt(n);
        let opt = (sqrt_n / 2).max(2);
        let m = (n * n / 16).max(4 * n);
        let pl = planted(&PlantedConfig::exact(n, m, opt), n as u64);
        let inst = &pl.workload.instance;

        let adv = order_edges(inst, StreamOrder::Interleaved);
        let mut kk = Measurement::default();
        for seed in trial_seeds(n as u64, trials) {
            kk.push(measure(KkSolver::new(m, n, seed), &adv, inst, opt));
        }

        let mut ro = Measurement::default();
        for (i, seed) in trial_seeds(n as u64 + 1, trials).into_iter().enumerate() {
            let rnd = order_edges(inst, StreamOrder::Uniform(7000 + i as u64));
            ro.push(measure(
                RandomOrderSolver::new(m, n, inst.num_edges(), RandomOrderConfig::practical(), seed),
                &rnd,
                inst,
                opt,
            ));
        }

        kk_pts.push((n as f64, kk.ratio().mean));
        ro_pts.push((n as f64, ro.ratio().mean));
        table.row(&[
            n.to_string(),
            sqrt_n.to_string(),
            m.to_string(),
            kk.ratio().display(),
            ro.ratio().display(),
        ]);
    }

    r.table(&table);
    r.line(format!(
        "kk ratio (log scale):            {}",
        sparkline_log(&kk_pts.iter().map(|pt| pt.1).collect::<Vec<_>>())
    ));
    r.line(format!(
        "random-order ratio (log scale):  {}",
        sparkline_log(&ro_pts.iter().map(|pt| pt.1).collect::<Vec<_>>())
    ));
    if let Some(s) = loglog_slope(&kk_pts) {
        r.line(format!("kk           ratio-vs-n log-log slope: {s:.2}  (theory ≈ 0.5)"));
    }
    if let Some(s) = loglog_slope(&ro_pts) {
        r.line(format!("random-order ratio-vs-n log-log slope: {s:.2}  (theory ≈ 0.5)"));
    }
    r.blank();
    r.csv(&table);
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_requested_range_and_slopes() {
        let s = run(&Params { max_n: 400, trials: 1 });
        for n in ["144", "256", "400"] {
            assert!(s.contains(n));
        }
        assert!(!s.contains("576"), "points above max_n must be excluded");
        assert!(s.contains("ratio-vs-n log-log slope"));
    }
}
