//! E-F2 — approximation ratio vs n for the √n-regime algorithms.

use setcover_algos::{KkSolver, RandomOrderConfig, RandomOrderSolver};
use setcover_core::math::isqrt;
use setcover_core::stream::StreamOrder;
use setcover_gen::planted::{planted, PlantedConfig};

use crate::harness::{measure_order, trial_seeds, Measurement};
use crate::par::TrialRunner;
use crate::table::sparkline_log;
use crate::{loglog_slope, Table};

use super::Report;

/// Parameters for the ratio-vs-n sweep.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Largest universe size included in the sweep.
    pub max_n: usize,
    /// Trials per point.
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            max_n: 1024,
            trials: 3,
        }
    }
}

/// Run the experiment serially and return the report section.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run the experiment on `runner`'s worker pool; the report text is
/// byte-identical for every thread count.
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    let trials = p.trials;
    let ns: Vec<usize> = [144usize, 256, 400, 576, 784, 1024, 1600, 2304]
        .into_iter()
        .filter(|&n| n <= p.max_n)
        .collect();
    let mut r = Report::new();
    r.line("Ratio scaling vs n (OPT = √n/2, m = n²/16): theory slope ≈ 0.5");
    r.blank();

    let mut table = Table::new(
        "ratio vs n",
        &[
            "n",
            "sqrt(n)",
            "m",
            "kk ratio (adv)",
            "random-order ratio (rnd)",
        ],
    );
    let mut kk_pts = Vec::new();
    let mut ro_pts = Vec::new();

    // Stage 1: build each n's instance (the per-point workloads dominate
    // setup time at large n). Orders are regenerated lazily per trial from
    // the CSR, so no adversarial `Vec<Edge>` is kept per point.
    let built: Vec<_> = runner.grid(&ns, |_, &n| {
        let sqrt_n = isqrt(n);
        let opt = (sqrt_n / 2).max(2);
        let m = (n * n / 16).max(4 * n);
        let pl = planted(&PlantedConfig::exact(n, m, opt), n as u64);
        (pl, m, opt)
    });

    // Stage 2: flatten (n × algorithm × trial) into one measured grid;
    // kk trials come first in each per-n chunk, random-order after.
    let grid: Vec<(usize, bool, usize, u64)> = ns
        .iter()
        .enumerate()
        .flat_map(|(ni, &n)| {
            let kk = trial_seeds(n as u64, trials)
                .into_iter()
                .map(move |s| (ni, true, 0, s));
            let ro = trial_seeds(n as u64 + 1, trials)
                .into_iter()
                .enumerate()
                .map(move |(i, s)| (ni, false, i, s));
            kk.chain(ro)
        })
        .collect();
    let runs = runner.measure_grid(&grid, |_, &(ni, is_kk, i, seed)| {
        let (pl, m, opt) = &built[ni];
        let inst = &pl.workload.instance;
        let n = ns[ni];
        if is_kk {
            measure_order(
                KkSolver::new(*m, n, seed),
                inst,
                StreamOrder::Interleaved,
                *opt,
            )
        } else {
            measure_order(
                RandomOrderSolver::new(
                    *m,
                    n,
                    inst.num_edges(),
                    RandomOrderConfig::practical(),
                    seed,
                ),
                inst,
                StreamOrder::Uniform(7000 + i as u64),
                *opt,
            )
        }
    });

    for (ni, &n) in ns.iter().enumerate() {
        let sqrt_n = isqrt(n);
        let m = built[ni].1;
        let chunk = &runs[ni * 2 * trials..(ni + 1) * 2 * trials];
        let mut kk = Measurement::default();
        let mut ro = Measurement::default();
        for run in &chunk[..trials] {
            kk.push(run.clone());
        }
        for run in &chunk[trials..] {
            ro.push(run.clone());
        }

        kk_pts.push((n as f64, kk.ratio().mean));
        ro_pts.push((n as f64, ro.ratio().mean));
        table.row(&[
            n.to_string(),
            sqrt_n.to_string(),
            m.to_string(),
            kk.ratio().display(),
            ro.ratio().display(),
        ]);
    }

    r.table(&table);
    r.line(format!(
        "kk ratio (log scale):            {}",
        sparkline_log(&kk_pts.iter().map(|pt| pt.1).collect::<Vec<_>>())
    ));
    r.line(format!(
        "random-order ratio (log scale):  {}",
        sparkline_log(&ro_pts.iter().map(|pt| pt.1).collect::<Vec<_>>())
    ));
    if let Some(s) = loglog_slope(&kk_pts) {
        r.line(format!(
            "kk           ratio-vs-n log-log slope: {s:.2}  (theory ≈ 0.5)"
        ));
    }
    if let Some(s) = loglog_slope(&ro_pts) {
        r.line(format!(
            "random-order ratio-vs-n log-log slope: {s:.2}  (theory ≈ 0.5)"
        ));
    }
    r.blank();
    r.csv(&table);
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_requested_range_and_slopes() {
        let s = run(&Params {
            max_n: 400,
            trials: 1,
        });
        for n in ["144", "256", "400"] {
            assert!(s.contains(n));
        }
        assert!(!s.contains("576"), "points above max_n must be excluded");
        assert!(s.contains("ratio-vs-n log-log slope"));
    }
}
