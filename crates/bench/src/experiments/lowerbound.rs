//! E-F4 / E-F6 / E-F7 — the lower-bound constructions, measured. Four
//! sections: Lemma 1 family check; the Theorem 2 distinguishing game; the
//! success-vs-total-state budget sweep; the simple 2√(nt) protocol.

use setcover_algos::KkSolver;
use setcover_comm::budgeted::BucketedKkSolver;
use setcover_comm::simple_protocol::{run_simple_protocol, split_instance_across_parties};
use setcover_comm::sweep::{play_series, GameConfig, GameStats};
use setcover_core::math::log2f;
use setcover_gen::lowerbound::{LbFamily, LbFamilyConfig};
use setcover_gen::planted::{planted, PlantedConfig};

use crate::par::TrialRunner;
use crate::{Summary, Table};

use super::Report;

/// Parameters for the lower-bound sections.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Evaluation seeds for the game (each plays both promise cases).
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { trials: 5 }
    }
}

/// Run all four sections serially and return the report.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run all four sections on `runner`'s worker pool; output is
/// byte-identical at any thread count. (The Theorem 2 game section is a
/// single calibrated series and stays sequential.)
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    let mut r = Report::new();
    lemma1_family(&mut r, p.trials, runner);
    game(&mut r, p.trials);
    budget_sweep(&mut r, p.trials, runner);
    simple_protocol(&mut r, runner);
    r.finish()
}

fn lemma1_family(r: &mut Report, trials: usize, runner: &TrialRunner) {
    let mut table = Table::new(
        "Lemma 1 family: max part intersection vs O(log n)",
        &[
            "n",
            "t",
            "part",
            "set size s",
            "E[inter]",
            "measured max",
            "log2 n",
        ],
    );
    let params = [(1024usize, 4usize), (4096, 4), (4096, 8), (16384, 8)];
    // Grid: (family config × generation seed), flattened.
    let grid: Vec<(usize, u64)> = (0..params.len())
        .flat_map(|pi| (0..trials as u64).map(move |seed| (pi, seed)))
        .collect();
    let all_maxes = runner.grid(&grid, |_, &(pi, seed)| {
        let (n, t) = params[pi];
        let fam = LbFamily::generate(LbFamilyConfig { n, m: 64, t }, seed);
        fam.max_part_intersection_sampled(2000, seed) as f64
    });
    for (pi, &(n, t)) in params.iter().enumerate() {
        let cfg = LbFamilyConfig { n, m: 64, t };
        let maxes = &all_maxes[pi * trials..(pi + 1) * trials];
        let s = Summary::of(maxes);
        table.row(&[
            n.to_string(),
            t.to_string(),
            cfg.part_size().to_string(),
            cfg.set_size().to_string(),
            format!(
                "{:.2}",
                (cfg.set_size() * cfg.set_size()) as f64 / (n * t) as f64
            ),
            s.display(),
            format!("{:.1}", log2f(n)),
        ]);
    }
    r.table(&table);
    r.line("Claim: measured max stays O(log n) — a small multiple of the last column.");
    r.blank();
}

fn game(r: &mut Report, trials: usize) {
    let cfg = GameConfig {
        evaluation_runs: trials,
        ..GameConfig::standard()
    };
    let f = cfg.family;
    r.line(format!(
        "Theorem 2 game: n = {}, m = {}, t = {} (part {}, set size {})",
        f.n,
        f.m,
        f.t,
        f.part_size(),
        f.set_size()
    ));
    let stats = play_series(&cfg, 0x7472_7574, KkSolver::new);
    r.line(format!(
        "calibrated threshold {}; success {}/{} ({:.0}%); estimates: intersecting ≈ {:.1}, \
         disjoint ≈ {:.1} (gap {:.1}x); max forwarded state {} words — KK's Θ(m) counters,",
        stats.threshold,
        stats.correct,
        stats.total,
        100.0 * stats.success_rate(),
        GameStats::mean(&stats.intersecting_estimates),
        GameStats::mean(&stats.disjoint_estimates),
        stats.gap(),
        stats.max_state_words
    ));
    r.line("exactly the state the Ω̃(mn²/α⁴) bound says any distinguishing algorithm must pay for.");
    r.blank();
}

fn budget_sweep(r: &mut Report, trials: usize, runner: &TrialRunner) {
    let base_cfg = GameConfig {
        evaluation_runs: trials,
        ..GameConfig::standard()
    };
    let mut table = Table::new(
        "Theorem 2 game vs total state budget (bucketed KK, fraction f of counters AND element entries)",
        &["f", "state words", "success", "mean inter. est.", "mean disj. est."],
    );
    let fracs = [1.0f64, 0.5, 0.25, 0.1, 0.03, 0.01];
    // Each budget point plays a full (independently seeded) series.
    let all_stats = runner.grid(&fracs, |_, &frac| {
        play_series(&base_cfg, 0x6275_6467, |m, n, seed| {
            BucketedKkSolver::with_element_budget(
                m,
                n,
                ((m as f64 * frac) as usize).max(1),
                ((n as f64 * frac) as usize).max(1),
                seed,
            )
        })
    });
    for (frac, stats) in fracs.iter().zip(&all_stats) {
        table.row(&[
            format!("{frac:.2}"),
            stats.max_state_words.to_string(),
            format!("{}/{}", stats.correct, stats.total),
            format!("{:.1}", GameStats::mean(&stats.intersecting_estimates)),
            format!("{:.1}", GameStats::mean(&stats.disjoint_estimates)),
        ]);
    }
    r.table(&table);
    r.line(
        "Reading: at f = 1 the game succeeds; as the total forwarded state shrinks, the\n\
         per-run estimates of the two promise cases converge (unknown elements cost one\n\
         cover slot each in BOTH cases) and success decays toward coin-flipping — no\n\
         small memory state carries the distinguishing information (Theorem 2).",
    );
    r.blank();
}

fn simple_protocol(r: &mut Report, runner: &TrialRunner) {
    let mut table = Table::new(
        "Simple t-party protocol: 2√(nt)-approx with Õ(n) messages",
        &[
            "n",
            "t",
            "OPT",
            "cover",
            "ratio",
            "bound 2√(nt)",
            "max msg words",
            "m",
        ],
    );
    let ts = [2usize, 4, 8, 16];
    let n = 1024;
    let opt = 16;
    let m = 4096;
    let outs = runner.grid(&ts, |_, &t| {
        let pl = planted(&PlantedConfig::exact(n, m, opt), t as u64);
        let parties = split_instance_across_parties(&pl.workload.instance, t);
        run_simple_protocol(n, &parties)
    });
    for (&t, out) in ts.iter().zip(&outs) {
        table.row(&[
            n.to_string(),
            t.to_string(),
            opt.to_string(),
            out.cover_size().to_string(),
            format!("{:.2}", out.cover_size() as f64 / opt as f64),
            format!("{:.1}", 2.0 * ((n * t) as f64).sqrt()),
            out.messages.max_message_words().to_string(),
            m.to_string(),
        ]);
    }
    r.table(&table);
    r.line(
        "Messages stay Õ(n) ≪ m while the ratio stays under 2√(nt): this is why the\n\
         Theorem 2 lower bound needs t = Ω(α²/n) parties to bite above Θ̃(n) space.",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_sections_render() {
        let s = run(&Params { trials: 1 });
        assert!(s.contains("Lemma 1 family"));
        assert!(s.contains("Theorem 2 game:"));
        assert!(s.contains("total state budget"));
        assert!(s.contains("Simple t-party protocol"));
    }
}
