//! E-R1 — solver degradation under injected stream faults.
//!
//! The paper's guarantees assume the model's delivery contract: every
//! edge arrives exactly once, ids in range, stream completes. This
//! experiment measures what happens when a transport breaks that
//! contract. For each fault kind × injection rate we run a seeded
//! [`ChaosStream`] through a `Repair`-policy [`GuardedStream`], materialize
//! the *delivered* (post-fault, post-repair) sequence once, and run all
//! five streaming solvers over that same sequence — apples-to-apples
//! across solvers within a cell.
//!
//! **Hard invariant:** every emitted cover must verify against the
//! delivered sub-instance ([`Cover::verify_delivered`]) — solvers may
//! degrade (larger covers, partial coverage when edges never arrived) but
//! must never emit an *invalid* cover or panic. A violation aborts the
//! experiment.
//!
//! Output: per-kind degradation tables (approximation ratio and coverage
//! vs rate), plus a machine-readable JSON document of the degradation
//! curves for plotting (the `robustness` binary writes it under
//! `results/`).
//!
//! [`Cover::verify_delivered`]: setcover_core::Cover::verify_delivered

use std::fmt::Write as _;

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, ElementSamplingConfig, ElementSamplingSolver, KkSolver,
    MultiPassSieve, RandomOrderConfig, RandomOrderSolver,
};
use setcover_core::math::{approx_ratio, isqrt};
use setcover_core::rng::derive_seed;
use setcover_core::solver::{run_multipass, run_on_edges};
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_core::{
    ChaosConfig, ChaosStream, Cover, Edge, EdgeStream, FaultKind, GuardConfig, GuardReport,
    GuardedStream, Metric, Recorder, SetCoverInstance,
};
use setcover_gen::planted::{planted, PlantedConfig};

use crate::harness::trial_seeds;
use crate::par::TrialRunner;
use crate::Table;

use super::Report;

/// The fault kinds swept (everything point-injectable plus truncation;
/// `MisdeclaredN` only lies in `len_hint`, which the Repair pipeline
/// neutralizes, so it carries no degradation signal worth a table).
const KINDS: [FaultKind; 8] = [
    FaultKind::DuplicateAdjacent,
    FaultKind::DuplicateDelayed,
    FaultKind::Drop,
    FaultKind::CorruptSet,
    FaultKind::CorruptElem,
    FaultKind::SwapIds,
    FaultKind::Reorder,
    FaultKind::Truncate,
];

/// Stable solver column names (also the JSON `solver` keys).
const SOLVERS: [&str; 5] = [
    "kk",
    "adversarial",
    "random-order",
    "element-sampling",
    "multipass-sieve",
];

/// Parameters for the robustness sweep.
#[derive(Debug, Clone)]
pub struct Params {
    /// Universe size of the planted instance.
    pub n: usize,
    /// Number of sets.
    pub m: usize,
    /// Planted optimum.
    pub opt: usize,
    /// Trials per (fault, rate) cell.
    pub trials: usize,
    /// Injection rates swept (0.0 is the clean control lane).
    pub rates: Vec<f64>,
}

impl Default for Params {
    /// Full sweep, or a smoke-sized one when `SC_BENCH_QUICK` is set.
    fn default() -> Self {
        let quick = std::env::var_os("SC_BENCH_QUICK").is_some_and(|v| v != "0");
        if quick {
            Params {
                n: 128,
                m: 512,
                opt: 8,
                trials: 1,
                rates: vec![0.0, 0.1, 0.3],
            }
        } else {
            Params {
                n: 512,
                m: 2048,
                opt: 12,
                trials: 3,
                rates: vec![0.0, 0.02, 0.1, 0.3],
            }
        }
    }
}

/// Per-solver measurements from one cell.
#[derive(Debug, Clone, Copy, Default)]
struct SolverOut {
    cover: f64,
    ratio: f64,
    coverage: f64,
}

/// One (fault, rate, trial) cell: the delivered stream's shape plus every
/// solver's outcome on it.
#[derive(Debug, Clone)]
struct CellOut {
    delivered: usize,
    guard: GuardReport,
    per_solver: [SolverOut; 5],
}

fn check_delivered(
    cover: &Cover,
    solver: &str,
    kind: FaultKind,
    rate: f64,
    n: usize,
    delivered: &[Edge],
) {
    if let Err(e) = cover.verify_delivered(n, delivered) {
        panic!(
            "{solver} emitted an invalid cover under {}@{rate}: {e}",
            kind.name()
        );
    }
}

fn run_cell<R: Recorder>(
    inst: &SetCoverInstance,
    opt: usize,
    kind: FaultKind,
    rate: f64,
    seed: u64,
    mut rec: R,
) -> CellOut {
    let (m, n) = (inst.m(), inst.n());
    let chaos = ChaosStream::new(
        stream_of(inst, StreamOrder::Uniform(derive_seed(seed, 0x0A))),
        m,
        n,
        ChaosConfig::uniform(kind, rate, derive_seed(seed, 0x0B)),
    );
    // The guard reports each violation it sees into the recorder, so
    // `obs=` manifests break faults down by kind and outcome.
    let mut guard = GuardedStream::new(chaos, m, n, GuardConfig::repair()).with_recorder(&mut rec);
    let mut delivered = Vec::new();
    while let Some(e) = guard.next_edge() {
        delivered.push(e);
    }
    let report = guard.report();
    drop(guard);
    rec.counter(Metric::DriverEdges, delivered.len() as u64);

    let nn = delivered.len().max(1);
    let alpha = (isqrt(n) as f64 / 2.0).max(1.0);
    let covers: [Cover; 5] = [
        run_on_edges(KkSolver::new(m, n, derive_seed(seed, 1)), &delivered).cover,
        run_on_edges(
            AdversarialSolver::new(m, n, AdversarialConfig::sqrt_n(n), derive_seed(seed, 2)),
            &delivered,
        )
        .cover,
        run_on_edges(
            RandomOrderSolver::new(
                m,
                n,
                nn,
                RandomOrderConfig::practical(),
                derive_seed(seed, 3),
            ),
            &delivered,
        )
        .cover,
        run_on_edges(
            ElementSamplingSolver::new(
                m,
                n,
                ElementSamplingConfig::for_alpha(alpha, m, 1.0),
                derive_seed(seed, 4),
            ),
            &delivered,
        )
        .cover,
        run_multipass(MultiPassSieve::new(m, n, 3), &delivered).cover,
    ];

    let mut per_solver = [SolverOut::default(); 5];
    for (si, cover) in covers.iter().enumerate() {
        check_delivered(cover, SOLVERS[si], kind, rate, n, &delivered);
        per_solver[si] = SolverOut {
            cover: cover.size() as f64,
            ratio: approx_ratio(cover.size(), opt),
            coverage: cover.certified_count() as f64 / n.max(1) as f64,
        };
    }
    CellOut {
        delivered: delivered.len(),
        guard: report,
        per_solver,
    }
}

/// Mean of the cells of one (fault, rate) point, across trials.
#[derive(Debug, Clone, Default)]
struct PointAgg {
    delivered: f64,
    ok: f64,
    repaired: f64,
    rejected: f64,
    per_solver: [SolverOut; 5],
}

fn aggregate(cells: &[CellOut]) -> PointAgg {
    let k = cells.len().max(1) as f64;
    let mut agg = PointAgg::default();
    for c in cells {
        agg.delivered += c.delivered as f64 / k;
        agg.ok += c.guard.edges_ok as f64 / k;
        agg.repaired += c.guard.edges_repaired as f64 / k;
        agg.rejected += c.guard.edges_rejected as f64 / k;
        for (si, s) in c.per_solver.iter().enumerate() {
            agg.per_solver[si].cover += s.cover / k;
            agg.per_solver[si].ratio += s.ratio / k;
            agg.per_solver[si].coverage += s.coverage / k;
        }
    }
    agg
}

fn cell_display(s: &SolverOut) -> String {
    if s.coverage >= 0.9995 {
        format!("{:.2}", s.ratio)
    } else {
        format!("{:.2} cov={:.2}", s.ratio, s.coverage)
    }
}

/// Run the sweep serially and return the report text.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run the sweep on `runner`'s worker pool; output is byte-identical at
/// any thread count.
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    run_full(p, runner).0
}

/// Run the sweep and return `(report text, degradation-curve JSON)`.
pub fn run_full(p: &Params, runner: &TrialRunner) -> (String, String) {
    let pl = planted(&PlantedConfig::exact(p.n, p.m, p.opt), 0xB0B);
    let inst = &pl.workload.instance;

    // Grid: (fault kind × rate × trial); each cell is independent and
    // seeded from its coordinates.
    let grid: Vec<(usize, usize, u64)> = (0..KINDS.len())
        .flat_map(|ki| {
            p.rates.iter().enumerate().flat_map(move |(ri, _)| {
                trial_seeds(derive_seed(0xFA017, (ki * 64 + ri) as u64), p.trials)
                    .into_iter()
                    .map(move |s| (ki, ri, s))
            })
        })
        .collect();
    let cells = runner.grid(&grid, |gi, &(ki, ri, seed)| {
        crate::obs_trial!(runner, gi as u64, |rec| run_cell(
            inst,
            p.opt,
            KINDS[ki],
            p.rates[ri],
            seed,
            rec
        ))
    });
    for c in &cells {
        // 5 solver passes over the delivered buffer each (the sieve may
        // take several, but its outcome already counted what it consumed).
        runner.add_edges(c.delivered * SOLVERS.len());
        runner.add_guard(&c.guard);
    }

    let mut r = Report::new();
    r.line(format!(
        "Robustness sweep on a planted instance (n={}, m={}, opt={}), {} trial(s) per cell.\n\
         Faults injected by a seeded ChaosStream, ingested through a Repair-policy guard\n\
         (dedup window {}); every cover verified against the delivered sub-instance.",
        p.n,
        p.m,
        p.opt,
        p.trials,
        GuardConfig::DEFAULT_WINDOW,
    ));
    r.blank();

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"experiment\":\"robustness\",\"n\":{},\"m\":{},\"opt\":{},\"trials\":{},\"curves\":[",
        p.n, p.m, p.opt, p.trials
    );
    let mut first_curve = true;

    for (ki, kind) in KINDS.iter().enumerate() {
        let mut table = Table::new(
            &format!("degradation under {} (ratio vs rate)", kind.name()),
            &[
                "rate",
                "delivered",
                "repaired",
                SOLVERS[0],
                SOLVERS[1],
                SOLVERS[2],
                SOLVERS[3],
                SOLVERS[4],
            ],
        );
        let aggs: Vec<PointAgg> = (0..p.rates.len())
            .map(|ri| {
                let at = (ki * p.rates.len() + ri) * p.trials;
                aggregate(&cells[at..at + p.trials])
            })
            .collect();
        for (ri, agg) in aggs.iter().enumerate() {
            table.row(&[
                format!("{:.2}", p.rates[ri]),
                format!("{:.0}", agg.delivered),
                format!("{:.0}", agg.repaired),
                cell_display(&agg.per_solver[0]),
                cell_display(&agg.per_solver[1]),
                cell_display(&agg.per_solver[2]),
                cell_display(&agg.per_solver[3]),
                cell_display(&agg.per_solver[4]),
            ]);
        }
        r.table(&table);

        for (si, solver) in SOLVERS.iter().enumerate() {
            if !first_curve {
                json.push(',');
            }
            first_curve = false;
            let _ = write!(
                json,
                "{{\"solver\":\"{solver}\",\"fault\":\"{}\",\"points\":[",
                kind.name()
            );
            for (ri, agg) in aggs.iter().enumerate() {
                if ri > 0 {
                    json.push(',');
                }
                let s = &agg.per_solver[si];
                let _ = write!(
                    json,
                    "{{\"rate\":{},\"ratio\":{:.4},\"coverage\":{:.4},\"cover\":{:.2},\
                     \"delivered\":{:.1},\"edges_ok\":{:.1},\"edges_repaired\":{:.1},\
                     \"edges_rejected\":{:.1}}}",
                    p.rates[ri],
                    s.ratio,
                    s.coverage,
                    s.cover,
                    agg.delivered,
                    agg.ok,
                    agg.repaired,
                    agg.rejected
                );
            }
            json.push_str("]}");
        }
    }
    json.push_str("]}");

    r.line(
        "Reading: duplication and reordering are absorbed (the guard repairs dups; the\n\
         solvers are order-robust up to their model assumptions — sorted bursts stress\n\
         the random-order solver hardest). Drops and truncation shrink the delivered\n\
         sub-instance: ratios stay tame but coverage falls — the cover is honest about\n\
         what it can certify. Out-of-range corruption is repaired away, costing the\n\
         affected elements their edges, with the same coverage signature.",
    );
    (r.finish(), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            n: 64,
            m: 256,
            opt: 8,
            trials: 1,
            rates: vec![0.0, 0.2],
        }
    }

    #[test]
    fn sweep_renders_and_emits_curves() {
        let (text, json) = run_full(&tiny(), &TrialRunner::serial());
        for kind in KINDS {
            assert!(text.contains(kind.name()), "missing table for {:?}", kind);
        }
        assert!(json.starts_with("{\"experiment\":\"robustness\""));
        assert!(json.contains("\"solver\":\"kk\""));
        assert!(json.contains("\"fault\":\"truncate\""));
        assert!(json.ends_with("]}"));
        // 8 kinds × 5 solvers curves.
        assert_eq!(json.matches("\"points\":").count(), 40);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let p = tiny();
        let serial = run_full(&p, &TrialRunner::serial());
        let par = run_full(&p, &TrialRunner::new(4));
        assert_eq!(serial.0, par.0);
        assert_eq!(serial.1, par.1);
    }
}
