//! E-T1 — Table 1, measured (see the `table1` binary docs for the row
//! mapping).

use setcover_algos::{
    AdversarialConfig, AdversarialSolver, ElementSamplingConfig, ElementSamplingSolver, KkConfig,
    KkSolver, RandomOrderConfig, RandomOrderSolver,
};
use setcover_core::math::isqrt;
use setcover_core::stream::StreamOrder;
use setcover_gen::planted::{planted, PlantedConfig};

use crate::harness::{measure_order, trial_seeds, Measurement};
use crate::par::TrialRunner;
use crate::table::fmt_words;
use crate::Table;

use super::Report;

/// Parameters for the Table 1 reproduction.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Universe size.
    pub n: usize,
    /// Number of sets (default `max(n²/16, 4n)` — the Theorem 3 regime).
    pub m: Option<usize>,
    /// Trials per row.
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 576,
            m: None,
            trials: 3,
        }
    }
}

/// Run the experiment serially and return the report section.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run the experiment on `runner`'s worker pool; the report text is
/// byte-identical for every thread count.
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    let n = p.n;
    let trials = p.trials;
    let sqrt_n = isqrt(n);
    let opt = (sqrt_n / 2).max(2);
    let m = p.m.unwrap_or((n * n / 16).max(4 * n));
    let mut r = Report::new();

    r.line(format!(
        "Table 1 reproduction: n = {n}, m = {m}, planted OPT = {opt}, trials = {trials}"
    ));
    r.line(format!(
        "(√n = {sqrt_n}; ratios are cover/OPT; space is per-set algorithmic words)"
    ));
    r.blank();

    let pl = planted(&PlantedConfig::exact(n, m, opt), 0x5441_424c_4531);
    let inst = &pl.workload.instance;
    r.line(format!(
        "instance: N = {} edges, avg set size {:.1}",
        inst.num_edges(),
        inst.stats().avg_set_size
    ));
    r.blank();

    let mut table = Table::new(
        "Table 1 (measured)",
        &[
            "row",
            "algorithm",
            "order",
            "alpha",
            "theory space",
            "measured space",
            "ratio (mean±std)",
            "theory ratio",
        ],
    );

    let adv = StreamOrder::Interleaved;
    let es_alpha = (sqrt_n / 2).max(2) as f64;
    let a2_alpha = 2.0 * sqrt_n as f64;

    // All four rows' trials flattened into one grid: (row, trial index,
    // seed); row r's seeds are trial_seeds(r, trials) — exactly the
    // serial loops' seeds.
    let grid: Vec<(usize, usize, u64)> = (1..=4usize)
        .flat_map(|row| {
            trial_seeds(row as u64, trials)
                .into_iter()
                .enumerate()
                .map(move |(i, s)| (row, i, s))
        })
        .collect();
    // Each trial is wrapped in `obs_trial!` keyed by its grid index, so
    // `obs=` runs aggregate metrics deterministically in grid order.
    let runs = runner.measure_grid(&grid, |gi, &(row, i, seed)| {
        crate::obs_trial!(runner, gi as u64, |rec| match row {
            1 => {
                let cfg = ElementSamplingConfig::for_alpha(es_alpha, m, 1.0);
                measure_order(
                    ElementSamplingSolver::with_recorder(m, n, cfg, seed, rec),
                    inst,
                    adv,
                    opt,
                )
            }
            2 => measure_order(
                KkSolver::with_recorder(m, n, KkConfig::paper(n), seed, rec),
                inst,
                adv,
                opt,
            ),
            3 => measure_order(
                AdversarialSolver::with_recorder(
                    m,
                    n,
                    AdversarialConfig::with_alpha(a2_alpha),
                    seed,
                    rec,
                ),
                inst,
                adv,
                opt,
            ),
            _ => measure_order(
                RandomOrderSolver::with_recorder(
                    m,
                    n,
                    inst.num_edges(),
                    RandomOrderConfig::practical(),
                    seed,
                    rec,
                ),
                inst,
                StreamOrder::Uniform(1000 + i as u64),
                opt,
            ),
        })
    });
    let row_meas = |row: usize| {
        let mut meas = Measurement::default();
        for run in &runs[(row - 1) * trials..row * trials] {
            meas.push(run.clone());
        }
        meas
    };

    // Row 1: element sampling.
    {
        let alpha = es_alpha;
        let meas = row_meas(1);
        table.row(&[
            "1".into(),
            "element-sampling".into(),
            "adversarial".into(),
            format!("{alpha:.0}"),
            format!("~mn/α = {}", fmt_words((m * n) / alpha as usize)),
            fmt_words(meas.algorithmic_words().mean as usize),
            meas.ratio().display(),
            "α (AKL regime)".into(),
        ]);
    }

    // Row 2: KK.
    {
        let meas = row_meas(2);
        table.row(&[
            "2".into(),
            "kk".into(),
            "adversarial".into(),
            format!("{sqrt_n}"),
            format!("~m = {}", fmt_words(m)),
            fmt_words(meas.algorithmic_words().mean as usize),
            meas.ratio().display(),
            "Õ(√n)".into(),
        ]);
    }

    // Row 3: Algorithm 2.
    {
        let alpha = a2_alpha;
        let meas = row_meas(3);
        table.row(&[
            "3".into(),
            "adversarial-low-space".into(),
            "adversarial".into(),
            format!("{alpha:.0}"),
            format!(
                "~mn/α² = {}",
                fmt_words(((m * n) as f64 / (alpha * alpha)) as usize)
            ),
            fmt_words(meas.algorithmic_words().mean as usize),
            meas.ratio().display(),
            "O(α log m)".into(),
        ]);
    }

    // Row 4: Algorithm 1 on random order.
    {
        let meas = row_meas(4);
        table.row(&[
            "4".into(),
            "random-order".into(),
            "random".into(),
            format!("{sqrt_n}"),
            format!("~m/√n = {}", fmt_words(m / sqrt_n)),
            fmt_words(meas.algorithmic_words().mean as usize),
            meas.ratio().display(),
            "Õ(√n)".into(),
        ]);
    }

    r.table(&table).csv(&table);
    r.line(
        "Shape check: row 2 space ≈ m; row 4 space ≪ m (≈ m/√n + n); row 3 ≪ row 1.\n\
         Ratios carry the Õ(·) poly-log factors the paper suppresses.",
    );
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_all_four_rows() {
        let s = run(&Params {
            n: 144,
            m: Some(1296),
            trials: 1,
        });
        assert!(s.contains("Table 1 (measured)"));
        for row in [
            "element-sampling",
            "kk",
            "adversarial-low-space",
            "random-order",
        ] {
            assert!(s.contains(row), "missing row {row}");
        }
        assert!(s.contains("CSV:"));
    }
}
