//! E-F3 — the adversarial/random-order separation (Theorems 2 + 3).

use setcover_algos::{FirstSetSolver, KkSolver, RandomOrderConfig, RandomOrderSolver};
use setcover_core::math::isqrt;
use setcover_core::stream::{order_edges, StreamOrder};
use setcover_core::StreamingSetCover;
use setcover_gen::planted::{planted, PlantedConfig};

use crate::harness::{measure, trial_seeds, Measurement};
use crate::table::fmt_words;
use crate::Table;

use super::Report;

/// Parameters for the separation experiment.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Universe size.
    pub n: usize,
    /// Number of sets (default `10·n`).
    pub m: Option<usize>,
    /// Planted optimum (default 8; planted sets of size `n/opt` carry the
    /// machinery's signal).
    pub opt: usize,
    /// Trials per (algorithm, order).
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { n: 4096, m: None, opt: 8, trials: 3 }
    }
}

/// Run the experiment and return the report section.
pub fn run(p: &Params) -> String {
    let n = p.n;
    let trials = p.trials;
    let m = p.m.unwrap_or(10 * n);
    let sqrt_n = isqrt(n);
    let opt = p.opt;
    let mut r = Report::new();

    r.line(format!(
        "Adversarial vs random separation: n = {n}, m = {m}, OPT = {opt} \
         (√n = {sqrt_n}, m/√n = {})",
        m / sqrt_n
    ));
    r.blank();

    let pl = planted(
        &PlantedConfig::exact(n, m, opt).with_decoy_size((sqrt_n / 4).max(1), (sqrt_n / 2).max(1)),
        0x5e9a_7a7e,
    );
    let inst = &pl.workload.instance;

    let orders = [
        StreamOrder::Uniform(11),
        StreamOrder::Uniform(12),
        StreamOrder::SetArrival,
        StreamOrder::Interleaved,
        StreamOrder::ElementGrouped,
        StreamOrder::GreedyTrap,
    ];

    let mut table = Table::new(
        "ratio, space & machinery per (algorithm, order)",
        &["algorithm", "order", "ratio", "cover", "space (alg words)", "specials", "marked-via-T"],
    );

    for order in orders {
        let edges = order_edges(inst, order);

        let mut ro = Measurement::default();
        for seed in trial_seeds(1, trials) {
            ro.push(measure(
                RandomOrderSolver::new(m, n, inst.num_edges(), RandomOrderConfig::practical(), seed),
                &edges,
                inst,
                opt,
            ));
        }
        let mut probed = RandomOrderSolver::new(
            m,
            n,
            inst.num_edges(),
            RandomOrderConfig::practical().with_probe(),
            trial_seeds(1, 1)[0],
        );
        for &e in &edges {
            probed.process_edge(e);
        }
        let _ = probed.finalize();
        let probe = probed.take_probe().expect("probe enabled");
        let specials: usize = probe.epochs.iter().map(|e| e.specials).sum();
        let marked_t: usize = probe.epochs.iter().map(|e| e.marked_by_tracking).sum();
        table.row(&[
            "random-order".into(),
            order.name().into(),
            ro.ratio().display(),
            ro.cover_size().display(),
            fmt_words(ro.algorithmic_words().mean as usize),
            specials.to_string(),
            marked_t.to_string(),
        ]);

        let mut kk = Measurement::default();
        for seed in trial_seeds(2, trials) {
            kk.push(measure(KkSolver::new(m, n, seed), &edges, inst, opt));
        }
        table.row(&[
            "kk".into(),
            order.name().into(),
            kk.ratio().display(),
            kk.cover_size().display(),
            fmt_words(kk.algorithmic_words().mean as usize),
            "-".into(),
            "-".into(),
        ]);

        let fs = measure(FirstSetSolver::new(m, n), &edges, inst, opt);
        table.row(&[
            "first-set".into(),
            order.name().into(),
            format!("{:.2}", fs.ratio),
            fs.cover_size.to_string(),
            fmt_words(fs.algorithmic_words),
            "-".into(),
            "-".into(),
        ]);
    }

    r.table(&table);
    r.line(
        "Expected shape: random-order runs in ~m/√n + n words vs kk's m words; on uniform\n\
         orders its machinery fires (specials > 0) and quality tracks kk; on grouped or\n\
         adversarial orders the subepoch statistics break (machinery silent or mis-firing\n\
         while space stays low) — the behavioural face of the Theorem 2/3 separation.",
    );
    r.blank();
    r.csv(&table);
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_lists_every_order_and_algorithm() {
        let s = run(&Params { n: 1024, m: Some(4096), opt: 4, trials: 1 });
        for needle in
            ["uniform-random", "set-arrival", "interleaved", "greedy-trap", "first-set", "kk"]
        {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
