//! E-F3 — the adversarial/random-order separation (Theorems 2 + 3).

use setcover_algos::{FirstSetSolver, KkSolver, RandomOrderConfig, RandomOrderSolver};
use setcover_core::math::isqrt;
use setcover_core::stream::{stream_of, EdgeStream, StreamOrder};
use setcover_core::StreamingSetCover;
use setcover_gen::planted::{planted, PlantedConfig};

use crate::harness::{measure_order, trial_seeds, MeasuredRun, Measurement};
use crate::par::{Task, TrialRunner};
use crate::table::fmt_words;
use crate::Table;

use super::Report;

/// Parameters for the separation experiment.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Universe size.
    pub n: usize,
    /// Number of sets (default `10·n`).
    pub m: Option<usize>,
    /// Planted optimum (default 8; planted sets of size `n/opt` carry the
    /// machinery's signal).
    pub opt: usize,
    /// Trials per (algorithm, order).
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 4096,
            m: None,
            opt: 8,
            trials: 3,
        }
    }
}

/// One scheduled unit of the flattened (order × algorithm × trial) grid.
enum Out {
    Run(MeasuredRun),
    Probe {
        specials: usize,
        marked_t: usize,
        edges: usize,
    },
}

/// Run the experiment serially and return the report section.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run the experiment on `runner`'s worker pool; the report text is
/// byte-identical for every thread count (seeds come from grid
/// coordinates, results are reassembled in grid order).
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    let n = p.n;
    let trials = p.trials;
    let m = p.m.unwrap_or(10 * n);
    let sqrt_n = isqrt(n);
    let opt = p.opt;
    let mut r = Report::new();

    r.line(format!(
        "Adversarial vs random separation: n = {n}, m = {m}, OPT = {opt} \
         (√n = {sqrt_n}, m/√n = {})",
        m / sqrt_n
    ));
    r.blank();

    let pl = planted(
        &PlantedConfig::exact(n, m, opt).with_decoy_size((sqrt_n / 4).max(1), (sqrt_n / 2).max(1)),
        0x5e9a_7a7e,
    );
    let inst = &pl.workload.instance;

    let orders = [
        StreamOrder::Uniform(11),
        StreamOrder::Uniform(12),
        StreamOrder::SetArrival,
        StreamOrder::Interleaved,
        StreamOrder::ElementGrouped,
        StreamOrder::GreedyTrap,
    ];

    let mut table = Table::new(
        "ratio, space & machinery per (algorithm, order)",
        &[
            "algorithm",
            "order",
            "ratio",
            "cover",
            "space (alg words)",
            "specials",
            "marked-via-T",
        ],
    );

    // Flatten the heterogeneous (order × algorithm × trial) work into one
    // task list; every task regenerates its order lazily from the shared
    // instance CSR (no per-order `Vec<Edge>` buffers — the former stage-1
    // materialization is gone). Per order: `trials` random-order runs,
    // 1 probe run, `trials` kk runs, 1 first-set run — a fixed chunk of
    // `2·trials + 2` grid cells, reassembled below in that layout.
    let chunk = 2 * trials + 2;
    let mut tasks: Vec<Task<Out>> = Vec::with_capacity(orders.len() * chunk);
    for &order in &orders {
        for seed in trial_seeds(1, trials) {
            tasks.push(Box::new(move || {
                Out::Run(measure_order(
                    RandomOrderSolver::new(
                        m,
                        n,
                        inst.num_edges(),
                        RandomOrderConfig::practical(),
                        seed,
                    ),
                    inst,
                    order,
                    opt,
                ))
            }));
        }
        tasks.push(Box::new(move || {
            let mut probed = RandomOrderSolver::new(
                m,
                n,
                inst.num_edges(),
                RandomOrderConfig::practical().with_probe(),
                trial_seeds(1, 1)[0],
            );
            let mut stream = stream_of(inst, order);
            let mut edges = 0usize;
            while let Some(e) = stream.next_edge() {
                probed.process_edge(e);
                edges += 1;
            }
            let _ = probed.finalize();
            let probe = probed.take_probe().expect("probe enabled");
            Out::Probe {
                specials: probe.epochs.iter().map(|e| e.specials).sum(),
                marked_t: probe.epochs.iter().map(|e| e.marked_by_tracking).sum(),
                edges,
            }
        }));
        for seed in trial_seeds(2, trials) {
            tasks.push(Box::new(move || {
                Out::Run(measure_order(KkSolver::new(m, n, seed), inst, order, opt))
            }));
        }
        tasks.push(Box::new(move || {
            Out::Run(measure_order(FirstSetSolver::new(m, n), inst, order, opt))
        }));
    }
    let outs = runner.run_tasks(tasks);
    for o in &outs {
        match o {
            Out::Run(r) => runner.add_run(r),
            Out::Probe { edges, .. } => runner.add_edges(*edges),
        }
    }

    for (oi, order) in orders.iter().enumerate() {
        let chunk_outs = &outs[oi * chunk..(oi + 1) * chunk];
        let run_at = |i: usize| match &chunk_outs[i] {
            Out::Run(r) => r.clone(),
            Out::Probe { .. } => unreachable!("probe in run slot"),
        };

        let mut ro = Measurement::default();
        for i in 0..trials {
            ro.push(run_at(i));
        }
        let (specials, marked_t) = match &chunk_outs[trials] {
            Out::Probe {
                specials, marked_t, ..
            } => (*specials, *marked_t),
            Out::Run(_) => unreachable!("run in probe slot"),
        };
        table.row(&[
            "random-order".into(),
            order.name().into(),
            ro.ratio().display(),
            ro.cover_size().display(),
            fmt_words(ro.algorithmic_words().mean as usize),
            specials.to_string(),
            marked_t.to_string(),
        ]);

        let mut kk = Measurement::default();
        for i in 0..trials {
            kk.push(run_at(trials + 1 + i));
        }
        table.row(&[
            "kk".into(),
            order.name().into(),
            kk.ratio().display(),
            kk.cover_size().display(),
            fmt_words(kk.algorithmic_words().mean as usize),
            "-".into(),
            "-".into(),
        ]);

        let fs = run_at(chunk - 1);
        table.row(&[
            "first-set".into(),
            order.name().into(),
            format!("{:.2}", fs.ratio),
            fs.cover_size.to_string(),
            fmt_words(fs.algorithmic_words),
            "-".into(),
            "-".into(),
        ]);
    }

    r.table(&table);
    r.line(
        "Expected shape: random-order runs in ~m/√n + n words vs kk's m words; on uniform\n\
         orders its machinery fires (specials > 0) and quality tracks kk; on grouped or\n\
         adversarial orders the subepoch statistics break (machinery silent or mis-firing\n\
         while space stays low) — the behavioural face of the Theorem 2/3 separation.",
    );
    r.blank();
    r.csv(&table);
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_lists_every_order_and_algorithm() {
        let s = run(&Params {
            n: 1024,
            m: Some(4096),
            opt: 4,
            trials: 1,
        });
        for needle in [
            "uniform-random",
            "set-arrival",
            "interleaved",
            "greedy-trap",
            "first-set",
            "kk",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
