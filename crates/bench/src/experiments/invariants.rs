//! E-F5 — empirical traces of Algorithm 1's analysis invariants
//! ((I1)–(I3), Lemma 8) from a probing run.

use setcover_algos::{RandomOrderConfig, RandomOrderSolver};
use setcover_core::math::isqrt;
use setcover_core::stream::{stream_of, EdgeStream, StreamOrder};
use setcover_core::{SetId, StreamingSetCover};
use setcover_gen::planted::{planted, PlantedConfig};

use crate::par::TrialRunner;
use crate::Table;

use super::Report;

/// Parameters for the invariant traces.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Universe size.
    pub n: usize,
    /// Number of sets (default `10·n`).
    pub m: Option<usize>,
    /// Planted optimum (planted sets of size `n/opt` carry the signal).
    pub opt: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 4096,
            m: None,
            opt: 8,
        }
    }
}

/// Run the probing trace serially and return the report section.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run the probing trace; the probe run itself is inherently sequential
/// (one solver, one stream), but the I1 post-scan over all `m` sets
/// fans out on `runner`. Output is identical at any thread count.
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    let n = p.n;
    let m = p.m.unwrap_or(10 * n);
    let sqrt_n = isqrt(n);
    let opt = p.opt;
    let mut r = Report::new();

    r.line(format!(
        "Invariant traces: n = {n}, m = {m}, OPT = {opt} (√n = {sqrt_n})"
    ));
    r.blank();

    let pl = planted(
        &PlantedConfig::exact(n, m, opt).with_decoy_size((sqrt_n / 4).max(1), (sqrt_n / 2).max(1)),
        0x0001_fa11,
    );
    let inst = &pl.workload.instance;
    // The probing run and the I2 post-scan below both replay the same
    // deterministic lazy order — no materialized `Vec<Edge>` needed.
    let order = StreamOrder::Uniform(17);

    let mut config = RandomOrderConfig::practical().with_probe();
    config.q0 = Some(0.015);
    let mut solver = RandomOrderSolver::new(m, n, inst.num_edges(), config, 23);
    let mut stream = stream_of(inst, order);
    let mut seen = 0usize;
    while let Some(e) = stream.next_edge() {
        solver.process_edge(e);
        seen += 1;
    }
    let cover = solver.finalize();
    runner.add_edges(seen);
    cover
        .verify(inst)
        .expect("probing run must still be correct");
    let probe = solver.take_probe().expect("probe enabled");

    r.line(format!(
        "schedule: K = {}, epochs/algorithm = {}, subepoch lengths = {:?}",
        probe.k, probe.epochs_per_algo, probe.subepoch_lens
    ));
    r.line(format!(
        "epoch 0: {} sets pre-sampled, {} elements high-degree-marked",
        probe.epoch0_sampled, probe.epoch0_marked
    ));
    r.blank();

    // Lemma 8 + I3 table.
    let mut table = Table::new(
        "per-epoch trace (Lemma 8, I3)",
        &[
            "i",
            "j",
            "specials",
            "bound 1.1·m/2^j",
            "sol added",
            "tracked sets",
            "tracked edges",
            "marked via T",
        ],
    );
    for ep in &probe.epochs {
        let bound = 1.1 * m as f64 / 2f64.powi(ep.j as i32);
        table.row(&[
            ep.i.to_string(),
            ep.j.to_string(),
            ep.specials.to_string(),
            format!("{bound:.0}"),
            ep.sol_added.to_string(),
            ep.tracked_sets.to_string(),
            ep.tracked_edges.to_string(),
            ep.marked_by_tracking.to_string(),
        ]);
    }
    r.table(&table);

    // I3.
    let mut i3 = Table::new(
        "I3: sets added per A^(i)",
        &["i", "sol added", "bound O(√n·log²m)"],
    );
    let logm = setcover_core::math::log2f(m);
    for i in 1..=probe.k {
        let added: usize = probe.sol_events.iter().filter(|e| e.i == i).count();
        i3.row(&[
            i.to_string(),
            added.to_string(),
            format!("{:.0}", sqrt_n as f64 * logm * logm),
        ]);
    }
    r.table(&i3);

    // Lemma 5: monotonicity of specialness. A set special in epoch j >= 2
    // of A^(i) should (w.h.p.) have been special in epoch j-1 too — the
    // increasing thresholds make a late-only signal unlikely.
    let mut special_at: std::collections::HashSet<(u32, u32, u32)> = Default::default();
    for ev in &probe.special_events {
        special_at.insert((ev.set.0, ev.i, ev.j));
    }
    let mut mono_checked = 0usize;
    let mut mono_violations = 0usize;
    for ev in &probe.special_events {
        if ev.j >= 2 {
            mono_checked += 1;
            if !special_at.contains(&(ev.set.0, ev.i, ev.j - 1)) {
                mono_violations += 1;
            }
        }
    }
    r.line(format!(
        "Lemma 5 (monotonicity): {mono_violations} violations over {mono_checked} late-epoch special events"
    ));
    r.blank();

    // I2: missed edges.
    let mut incl: std::collections::HashMap<u32, usize> = Default::default();
    for ev in &probe.sol_events {
        incl.entry(ev.set.0).or_insert(ev.edge_index);
    }
    let mut pos_of: std::collections::HashMap<(u32, u32), usize> = Default::default();
    for (idx, e) in stream_of(inst, order).enumerate() {
        if incl.contains_key(&e.set.0) {
            pos_of.insert((e.set.0, e.elem.0), idx);
        }
    }
    let mut missed: Vec<usize> = Vec::new();
    for (&s, &at) in &incl {
        let sid = SetId(s);
        let count = inst
            .set(sid)
            .iter()
            .filter(|u| {
                pos_of.get(&(s, u.0)).is_some_and(|&pp| pp < at) && cover.witness(**u) != Some(sid)
            })
            .count();
        missed.push(count);
    }
    missed.sort_unstable();
    let max_missed = missed.last().copied().unwrap_or(0);
    let mean_missed = if missed.is_empty() {
        0.0
    } else {
        missed.iter().sum::<usize>() as f64 / missed.len() as f64
    };
    r.line(format!(
        "I2: missed edges over {} solution sets: max = {max_missed}, mean = {mean_missed:.1} \
         (bound Õ(√n) = {sqrt_n}·polylog)",
        missed.len()
    ));
    r.blank();

    // I1.
    let sol_sets: std::collections::HashSet<u32> = incl.keys().copied().collect();
    let mut covered = vec![false; n];
    for &s in &sol_sets {
        for &u in inst.set(SetId(s)) {
            covered[u.index()] = true;
        }
    }
    // The scan over all m sets is embarrassingly parallel; max over
    // fixed chunks is associative, so the result is thread-count-free.
    let chunks: Vec<(u32, u32)> = (0..m as u32)
        .step_by(1024)
        .map(|lo| (lo, (lo + 1024).min(m as u32)))
        .collect();
    let max_outside = runner
        .grid(&chunks, |_, &(lo, hi)| {
            (lo..hi)
                .filter(|s| !sol_sets.contains(s))
                .map(|s| {
                    inst.set(SetId(s))
                        .iter()
                        .filter(|u| !covered[u.index()])
                        .count()
                })
                .max()
                .unwrap_or(0)
        })
        .into_iter()
        .max()
        .unwrap_or(0);
    let bound = n as f64 / 2f64.powi(probe.k as i32);
    r.line(format!(
        "I1: max uncovered-coverage of any non-solution set after A^(K): {max_outside} \
         (bound (n/2^K)·polylog = {bound:.0}·polylog)"
    ));
    r.line(format!(
        "final cover: {} sets (ratio {:.2} vs OPT = {opt})",
        cover.size(),
        cover.size() as f64 / opt as f64
    ));
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_every_invariant() {
        let s = run(&Params {
            n: 1024,
            m: Some(4096),
            opt: 4,
        });
        assert!(s.contains("per-epoch trace"));
        assert!(s.contains("I3: sets added"));
        assert!(s.contains("I2: missed edges"));
        assert!(s.contains("I1: max uncovered-coverage"));
        assert!(s.contains("final cover"));
    }
}
