//! E-L2 — Lemma 2's concentration bounds, validated by simulation.
//!
//! Lemma 2 (paper §4.3 + appendix A.1) is the engine of the random-order
//! analysis: for a random set `I` of `ℓ` stream positions and a fixed
//! subset `X ⊆ S`, the number `Y` of `(S, x ∈ X)` edges landing in `I` is
//! hypergeometric and concentrates:
//!
//! 1. `0.99·ℓ|X|/N ≤ Y ≤ 1.01·ℓ|X|/N` when `ℓ ≤ 0.001·N` and the mean is
//!    large enough;
//! 2. `Y ≤ C·log(m)·max(ℓ|X|/N, 1)` for `ℓ ≤ N/2`;
//! 3. two-sided `μ ± log(m)·√μ`-style bounds for `ℓ ≤ N/√n`.
//!
//! The paper's failure probabilities (`1/m²⁰`) are beyond any empirical
//! reach, so the experiment validates the bounds' *form*: at parameters
//! where the same Chernoff calculation predicts far less than one
//! expected violation across all trials, we observe **zero** violations,
//! and we report the worst observed deviation in σ units next to each
//! bound. The hypergeometric draws use the exact sequential chain (no
//! approximation), so this is a true simulation of sampling stream
//! positions without replacement.

use rand::rngs::SmallRng;
use setcover_core::rng::{coin, derive_seed, seeded_rng};

use crate::par::TrialRunner;
use crate::Table;

use super::Report;

/// Parameters for the concentration experiment.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Trials per bullet (each trial draws one hypergeometric sample).
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { trials: 300 }
    }
}

/// Exact hypergeometric sample: draw `draws` positions without
/// replacement from `total`, of which `marked` are special; count hits.
fn hypergeometric(rng: &mut SmallRng, total: u64, marked: u64, draws: u64) -> u64 {
    debug_assert!(marked <= total && draws <= total);
    let mut hits = 0u64;
    let mut rem_marked = marked as f64;
    let mut rem_total = total as f64;
    for _ in 0..draws {
        if coin(rng, rem_marked / rem_total) {
            hits += 1;
            rem_marked -= 1.0;
        }
        rem_total -= 1.0;
    }
    hits
}

struct BulletOutcome {
    violations: usize,
    worst_sigma: f64,
}

fn run_bullet<F: Fn(u64) -> bool>(
    runner: &TrialRunner,
    bullet_seed: u64,
    total: u64,
    marked: u64,
    draws: u64,
    trials: usize,
    within: F,
) -> BulletOutcome {
    let mu = draws as f64 * marked as f64 / total as f64;
    let p = marked as f64 / total as f64;
    let sigma = (mu * (1.0 - p)).sqrt().max(1e-9);
    // Each trial draws from its own RNG seeded by (bullet, trial) grid
    // coordinates, so the sample set is identical at any thread count.
    let seeds: Vec<u64> = (0..trials as u64)
        .map(|t| derive_seed(bullet_seed, t))
        .collect();
    let ys = runner.grid(&seeds, |_, &s| {
        let mut rng = seeded_rng(s);
        hypergeometric(&mut rng, total, marked, draws)
    });
    let mut violations = 0usize;
    let mut worst: f64 = 0.0;
    for y in ys {
        if !within(y) {
            violations += 1;
        }
        worst = worst.max((y as f64 - mu).abs() / sigma);
    }
    BulletOutcome {
        violations,
        worst_sigma: worst,
    }
}

/// Run the experiment serially and return the report section.
pub fn run(p: &Params) -> String {
    run_with(p, &TrialRunner::serial())
}

/// Run the experiment on `runner`'s worker pool; output is identical at
/// any thread count.
pub fn run_with(p: &Params, runner: &TrialRunner) -> String {
    let trials = p.trials;
    let log_m = 20.0; // m = 2^20 throughout
    let c = 2.0;
    let mut r = Report::new();
    r.line(format!(
        "Lemma 2 concentration (hypergeometric simulation, m = 2^20, C = {c}, \
         {trials} trials per bullet)"
    ));
    r.blank();

    let mut table = Table::new(
        "Lemma 2 bullets, simulated",
        &[
            "bullet",
            "N",
            "ℓ",
            "|X|",
            "mean",
            "bound",
            "violations",
            "worst dev (σ)",
        ],
    );
    let base = 0x001e_44a2_u64;

    // Bullet 1: ℓ = 0.001·N, mean large; band ±1%·μ (≈ 7σ here).
    {
        let (total, draws, marked) = (200_000_000u64, 200_000u64, 100_000_000u64);
        let mu = draws as f64 * marked as f64 / total as f64;
        let out = run_bullet(
            runner,
            derive_seed(base, 0),
            total,
            marked,
            draws,
            trials,
            |y| (y as f64) >= 0.99 * mu && (y as f64) <= 1.01 * mu,
        );
        table.row(&[
            "1 (±1% band)".into(),
            total.to_string(),
            draws.to_string(),
            marked.to_string(),
            format!("{mu:.0}"),
            format!("[{:.0}, {:.0}]", 0.99 * mu, 1.01 * mu),
            out.violations.to_string(),
            format!("{:.2}", out.worst_sigma),
        ]);
    }

    // Bullet 2: tiny mean; Y ≤ C·log m·max(μ, 1).
    for (cfg, (total, draws, marked)) in
        [(1_000_000u64, 1_000u64, 500u64), (1_000_000, 1_000, 10_000)]
            .into_iter()
            .enumerate()
    {
        let mu = draws as f64 * marked as f64 / total as f64;
        let bound = c * log_m * mu.max(1.0);
        let out = run_bullet(
            runner,
            derive_seed(base, 1 + cfg as u64),
            total,
            marked,
            draws,
            trials * 10,
            |y| (y as f64) <= bound,
        );
        table.row(&[
            "2 (upper)".into(),
            total.to_string(),
            draws.to_string(),
            marked.to_string(),
            format!("{mu:.1}"),
            format!("≤ {bound:.0}"),
            out.violations.to_string(),
            format!("{:.2}", out.worst_sigma),
        ]);
    }

    // Bullet 3: ℓ = N/√n (n = 1024), band μ ± log(m)·√μ (≈ 20σ).
    {
        let (total, draws, marked) = (3_200_000u64, 100_000u64, 128_000u64);
        let mu = draws as f64 * marked as f64 / total as f64;
        let band = log_m * mu.sqrt();
        let out = run_bullet(
            runner,
            derive_seed(base, 3),
            total,
            marked,
            draws,
            trials,
            |y| (y as f64) >= mu - band && (y as f64) <= mu + band,
        );
        table.row(&[
            "3 (±logm·√μ)".into(),
            total.to_string(),
            draws.to_string(),
            marked.to_string(),
            format!("{mu:.0}"),
            format!("[{:.0}, {:.0}]", mu - band, mu + band),
            out.violations.to_string(),
            format!("{:.2}", out.worst_sigma),
        ]);
    }

    r.table(&table);
    r.line(
        "Reading: zero violations at scales where the Chernoff calculation behind the\n\
         lemma predicts ≪ 1 expected violation in total; worst observed deviations sit\n\
         at the ~3-4σ level a sample of this size should produce. The paper's 1/m²⁰\n\
         rates are unfalsifiable empirically — the bounds' *form* is what is validated.",
    );
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypergeometric_matches_mean_and_support() {
        let mut rng = seeded_rng(7);
        // Degenerate cases.
        assert_eq!(hypergeometric(&mut rng, 100, 0, 50), 0);
        assert_eq!(hypergeometric(&mut rng, 100, 100, 50), 50);
        // Mean check: Hyp(1000, 300, 100) has mean 30.
        let mut sum = 0u64;
        let trials = 2000;
        for _ in 0..trials {
            sum += hypergeometric(&mut rng, 1000, 300, 100);
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean} far from 30");
    }

    #[test]
    fn section_reports_zero_violations() {
        let s = run(&Params { trials: 40 });
        assert!(s.contains("Lemma 2 bullets"));
        // Every row's violation column should be 0 at these scales; scrape
        // the CSV-free table rows loosely by asserting the word occurs.
        for line in s
            .lines()
            .filter(|l| l.starts_with("1 (") || l.starts_with("3 ("))
        {
            let cols: Vec<&str> = line.split_whitespace().collect();
            let viol = cols[cols.len() - 2];
            assert_eq!(viol, "0", "violations in: {line}");
        }
    }
}
