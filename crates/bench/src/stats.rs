//! Summary statistics for multi-trial experiments.

/// Mean / stddev / min / max summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Empty samples yield zeros.
    ///
    /// NaN values are skipped — they mean "no data for this trial"
    /// (e.g. a sub-timer-resolution throughput), and a single NaN must
    /// not poison a whole aggregate. `n` counts only the values used.
    pub fn of(values: &[f64]) -> Summary {
        let finite: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if finite.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = finite.len();
        let mean = finite.iter().sum::<f64>() / n as f64;
        let var = if n >= 2 {
            finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarize integer samples.
    pub fn of_usize(values: &[usize]) -> Summary {
        let f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&f)
    }

    /// `mean ± std` rendering with sensible precision.
    ///
    /// Multi-trial samples (`n ≥ 2`) always render the `±` term — a
    /// zero-variance `± 0.00` is information ("several trials agreed
    /// exactly"), not noise, and must stay distinguishable from a single
    /// run, which renders the bare mean.
    pub fn display(&self) -> String {
        if self.n == 0 {
            "-".to_string()
        } else if self.n < 2 {
            format!("{:.2}", self.mean)
        } else {
            format!("{:.2} ± {:.2}", self.mean, self.std)
        }
    }
}

/// Least-squares slope of `log2(y)` against `log2(x)` — the exponent `p`
/// of a power law `y ≈ c·x^p`. This is how the experiments check
/// theoretical exponents (space ∝ α^{−2}, ratio ∝ n^{1/2}, ...).
/// Points with non-positive coordinates are skipped; fewer than two valid
/// points yield `None`.
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.log2(), y.log2()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
        assert_eq!(Summary::of(&[]).display(), "-");
        assert_eq!(s.display(), "7.00");
    }

    #[test]
    fn display_distinguishes_agreement_from_single_run() {
        // Three identical trials are not the same observation as one
        // trial: n ≥ 2 always renders the dispersion term.
        assert_eq!(Summary::of(&[5.0, 5.0, 5.0]).display(), "5.00 ± 0.00");
        assert_eq!(Summary::of(&[5.0]).display(), "5.00");
        assert_eq!(Summary::of(&[4.0, 6.0]).display(), "5.00 ± 1.41");
    }

    #[test]
    fn summary_skips_nan_values() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.std.is_finite());
        // All-NaN behaves like empty.
        let all_nan = Summary::of(&[f64::NAN, f64::NAN]);
        assert_eq!(all_nan.n, 0);
        assert_eq!(all_nan.display(), "-");
    }

    #[test]
    fn summary_of_usize() {
        let s = Summary::of_usize(&[2, 4]);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn slope_recovers_exponent() {
        // y = 3 x^2
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * (i * i) as f64)).collect();
        let slope = loglog_slope(&pts).unwrap();
        assert!((slope - 2.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn slope_recovers_negative_exponent() {
        // y = 100 / x^2
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| (i as f64, 100.0 / ((i * i) as f64)))
            .collect();
        let slope = loglog_slope(&pts).unwrap();
        assert!((slope + 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_skips_nonpositive_points() {
        assert_eq!(loglog_slope(&[(0.0, 1.0), (1.0, 1.0)]), None);
        assert_eq!(loglog_slope(&[]), None);
        let s = loglog_slope(&[(-1.0, 5.0), (2.0, 4.0), (4.0, 8.0)]).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
