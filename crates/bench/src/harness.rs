//! Multi-trial experiment runner.
//!
//! Every experiment point is measured over several seeds; each run
//! verifies its cover against the instance (an invalid cover aborts the
//! experiment — correctness is never sacrificed to speed) and records
//! quality, space and throughput.

use setcover_core::math::approx_ratio;
use setcover_core::solver::{run_on_edges, run_streaming, RunOutcome};
use setcover_core::stream::{stream_of, StreamOrder};
use setcover_core::{Edge, SetCoverInstance, StreamingSetCover};

use crate::stats::Summary;

/// One verified run's measurements.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Stream-order name the run consumed (see [`StreamOrder::name`]), or
    /// `"replayed"` for runs over a caller-materialized buffer. Used by
    /// the per-order throughput footers.
    pub order: &'static str,
    /// Final cover size.
    pub cover_size: usize,
    /// `cover_size / opt_reference`.
    pub ratio: f64,
    /// Peak total live words.
    pub peak_words: usize,
    /// Peak words excluding the `Õ(n)` per-element structures the model
    /// grants every algorithm (see `SpaceReport::algorithmic_peak_words`).
    pub algorithmic_words: usize,
    /// Edges processed.
    pub edges: usize,
    /// Wall-clock milliseconds for the pass + finalize.
    pub millis: f64,
}

fn verified(
    out: RunOutcome,
    order: &'static str,
    inst: &SetCoverInstance,
    opt: usize,
) -> MeasuredRun {
    if let Err(e) = out.cover.verify(inst) {
        panic!("{} produced an invalid cover: {e}", out.algorithm);
    }
    MeasuredRun {
        algorithm: out.algorithm,
        order,
        cover_size: out.cover.size(),
        ratio: approx_ratio(out.cover.size(), opt),
        peak_words: out.space.peak_words,
        algorithmic_words: out.space.algorithmic_peak_words(),
        edges: out.edges_processed,
        millis: out.elapsed.as_secs_f64() * 1e3,
    }
}

/// Run a solver over a prepared edge sequence, verify, and measure.
///
/// Panics (with context) if the produced cover is invalid — experiments
/// must never report numbers from broken covers. Prefer [`measure_order`]
/// unless a materialized buffer already exists (replay analyses, stream
/// files): this entry charges Θ(N) harness memory for the buffer.
pub fn measure<A: StreamingSetCover>(
    solver: A,
    edges: &[Edge],
    inst: &SetCoverInstance,
    opt_reference: usize,
) -> MeasuredRun {
    verified(run_on_edges(solver, edges), "replayed", inst, opt_reference)
}

/// Run a solver over the **lazy** stream for `order`, verify, and measure
/// — the default experiment path. No `Vec<Edge>` is materialized: the
/// stream yields edges straight from the instance CSR, so the harness
/// working set per in-flight trial is O(m) (O(N) `u32` indices for the
/// edge-permuted orders) instead of 8·N bytes.
pub fn measure_order<A: StreamingSetCover>(
    solver: A,
    inst: &SetCoverInstance,
    order: StreamOrder,
    opt_reference: usize,
) -> MeasuredRun {
    let out = run_streaming(solver, stream_of(inst, order));
    verified(out, order.name(), inst, opt_reference)
}

/// A collection of runs of the same configuration over different seeds.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// The individual runs.
    pub runs: Vec<MeasuredRun>,
}

impl Measurement {
    /// Append a run.
    pub fn push(&mut self, run: MeasuredRun) {
        self.runs.push(run);
    }

    /// Summary of approximation ratios.
    pub fn ratio(&self) -> Summary {
        Summary::of(&self.runs.iter().map(|r| r.ratio).collect::<Vec<_>>())
    }

    /// Summary of cover sizes.
    pub fn cover_size(&self) -> Summary {
        Summary::of_usize(&self.runs.iter().map(|r| r.cover_size).collect::<Vec<_>>())
    }

    /// Summary of peak space.
    pub fn peak_words(&self) -> Summary {
        Summary::of_usize(&self.runs.iter().map(|r| r.peak_words).collect::<Vec<_>>())
    }

    /// Summary of algorithmic (per-set) space.
    pub fn algorithmic_words(&self) -> Summary {
        Summary::of_usize(
            &self
                .runs
                .iter()
                .map(|r| r.algorithmic_words)
                .collect::<Vec<_>>(),
        )
    }

    /// Mean throughput in million edges per second, over the runs that
    /// were long enough to time. Runs below timer resolution are skipped
    /// (they would otherwise drag the aggregate toward zero); if *no*
    /// run was timeable the result is [`f64::NAN`], which [`Summary`]
    /// and report formatting treat as "no data" rather than a number.
    pub fn medges_per_sec(&self) -> f64 {
        let timed: Vec<&MeasuredRun> = self
            .runs
            .iter()
            .filter(|r| r.millis.is_finite() && r.millis > 0.0)
            .collect();
        let total_ms: f64 = timed.iter().map(|r| r.millis).sum();
        if total_ms <= 0.0 {
            f64::NAN
        } else {
            let total_edges: usize = timed.iter().map(|r| r.edges).sum();
            total_edges as f64 / total_ms / 1e3
        }
    }
}

/// Derive `k` trial seeds from a base seed.
pub fn trial_seeds(base: u64, k: usize) -> Vec<u64> {
    (0..k as u64)
        .map(|i| setcover_core::rng::derive_seed(base, 0xEC0 + i))
        .collect()
}

/// Parse `key=value` style CLI arguments (e.g. `n=1024 trials=5`),
/// returning the value for `key` or the default. Binaries use this for
/// lightweight parameterization without a CLI dependency.
pub fn arg_usize(key: &str, default: usize) -> usize {
    arg_str(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parse a `key=value` CLI argument as a float.
pub fn arg_f64(key: &str, default: f64) -> f64 {
    arg_str(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parse a `key=value` CLI argument as a string (last occurrence wins).
pub fn arg_str(key: &str) -> Option<String> {
    let prefix = format!("{key}=");
    std::env::args()
        .filter_map(|a| a.strip_prefix(&prefix).map(str::to_string))
        .next_back()
}

/// Print `error: {msg}` to stderr and exit with status 1. Binaries use
/// this for user-facing failures (unreadable input file, bad format)
/// instead of panicking with a backtrace.
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// Write `content` to `path`, creating the parent directory first, so
/// `out=some/new/dir/report.md` works without a manual `mkdir -p`.
pub fn try_write_output(path: &str, content: &str) -> std::io::Result<()> {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(p, content)
}

/// [`try_write_output`] for binaries: any failure goes through [`die`]
/// naming the offending path.
pub fn write_output(path: &str, content: &str) {
    if let Err(e) = try_write_output(path, content) {
        die(&format!("cannot write `{path}`: {e}"));
    }
}

/// Create `path`'s parent directory if it is missing, for binaries that
/// stream into a `File` rather than write a prepared string. Failure
/// goes through [`die`] naming the offending path.
pub fn ensure_parent_dir(path: &str) {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                die(&format!("cannot create parent directory of `{path}`: {e}"));
            }
        }
    }
}

/// Validate the process CLI arguments against the binary's known
/// `key=value` keys. An unknown or malformed argument prints an error —
/// with a "did you mean" hint when a known key is within edit distance 2
/// — and exits with status 2.
///
/// Without this check a mistyped knob (`threds=8`) would silently parse
/// as absent and the binary would run with the default, which for a
/// ten-minute sweep is an expensive way to discover a typo.
pub fn check_args(allowed: &[&str]) {
    for a in std::env::args().skip(1) {
        let key = match a.split_once('=') {
            Some((k, _)) => k.to_string(),
            None => a.clone(),
        };
        if allowed.contains(&key.as_str()) {
            continue;
        }
        let mut msg = format!("unknown argument `{a}`");
        if let Some(best) = did_you_mean(&key, allowed) {
            msg.push_str(&format!(" — did you mean `{best}=`?"));
        }
        let mut known: Vec<&str> = allowed.to_vec();
        known.sort_unstable();
        eprintln!("error: {msg} (known keys: {})", known.join(", "));
        std::process::exit(2);
    }
}

/// The closest known key within edit distance 2, if any.
fn did_you_mean<'a>(key: &str, allowed: &[&'a str]) -> Option<&'a str> {
    allowed
        .iter()
        .map(|&k| (edit_distance(key, k), k))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, k)| k)
}

/// Levenshtein distance (insert/delete/substitute, unit costs).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_algos::KkSolver;
    use setcover_core::stream::{order_edges, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn measure_records_everything() {
        let p = planted(&PlantedConfig::exact(64, 128, 8), 1);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Uniform(2));
        let run = measure(KkSolver::new(inst.m(), inst.n(), 3), &edges, inst, 8);
        assert_eq!(run.algorithm, "kk");
        assert_eq!(run.edges, inst.num_edges());
        assert!(run.cover_size >= 8);
        assert!(run.ratio >= 1.0);
        assert!(run.peak_words >= inst.m());
        assert!(run.algorithmic_words <= run.peak_words);
    }

    #[test]
    fn measure_order_tags_the_order_and_sees_every_edge() {
        let p = planted(&PlantedConfig::exact(64, 128, 8), 1);
        let inst = &p.workload.instance;
        let run = measure_order(
            KkSolver::new(inst.m(), inst.n(), 3),
            inst,
            StreamOrder::Interleaved,
            8,
        );
        assert_eq!(run.order, "interleaved");
        assert_eq!(run.edges, inst.num_edges());
        // Lazy and replayed paths are the same computation: identical
        // covers for identical (solver seed, edge sequence).
        let replay = measure(
            KkSolver::new(inst.m(), inst.n(), 3),
            &order_edges(inst, StreamOrder::Interleaved),
            inst,
            8,
        );
        assert_eq!(replay.order, "replayed");
        assert_eq!(run.cover_size, replay.cover_size);
    }

    #[test]
    fn measurement_aggregates() {
        let p = planted(&PlantedConfig::exact(64, 128, 8), 1);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Uniform(2));
        let mut m = Measurement::default();
        for seed in trial_seeds(9, 4) {
            m.push(measure(
                KkSolver::new(inst.m(), inst.n(), seed),
                &edges,
                inst,
                8,
            ));
        }
        assert_eq!(m.runs.len(), 4);
        assert_eq!(m.ratio().n, 4);
        assert!(m.cover_size().mean >= 8.0);
        assert!(m.peak_words().mean >= inst.m() as f64);
        assert!(m.medges_per_sec() >= 0.0);
    }

    #[test]
    fn medges_skips_untimeable_runs() {
        let timed = MeasuredRun {
            algorithm: "a",
            order: "replayed",
            cover_size: 1,
            ratio: 1.0,
            peak_words: 1,
            algorithmic_words: 1,
            edges: 1_000,
            millis: 1.0,
        };
        let untimed = MeasuredRun {
            edges: 999_999_999,
            millis: 0.0,
            ..timed.clone()
        };
        let mut m = Measurement::default();
        m.push(timed);
        m.push(untimed);
        // Only the timed run counts: 1000 edges / 1 ms = 1 Medge/s; the
        // instant run must neither zero the aggregate nor inflate it.
        assert!((m.medges_per_sec() - 1.0).abs() < 1e-9);
        let mut none = Measurement::default();
        none.push(MeasuredRun {
            millis: 0.0,
            ..m.runs[0].clone()
        });
        assert!(none.medges_per_sec().is_nan());
        assert!(Measurement::default().medges_per_sec().is_nan());
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let seeds = trial_seeds(7, 8);
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8);
        assert_eq!(trial_seeds(7, 8), seeds);
    }

    #[test]
    fn arg_usize_falls_back_to_default() {
        assert_eq!(arg_usize("definitely-not-passed", 42), 42);
    }

    #[test]
    fn try_write_output_creates_missing_parents() {
        let dir = std::env::temp_dir().join(format!("sc-write-out-{}", std::process::id()));
        let nested = dir.join("a/b/c.txt");
        let path = nested.to_str().unwrap();
        try_write_output(path, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "hello");
        // Overwrite through the same path still works.
        try_write_output(path, "bye").unwrap();
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "bye");
        // A parent that is a *file* is a real error, not a silent no-op.
        let blocked = dir.join("a/b/c.txt/d.txt");
        assert!(try_write_output(blocked.to_str().unwrap(), "x").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("threads", "threads"), 0);
        assert_eq!(edit_distance("threds", "threads"), 1);
        assert_eq!(edit_distance("trails", "trials"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("xyz", ""), 3);
    }

    #[test]
    fn did_you_mean_prefers_the_closest_key() {
        let keys = ["threads", "trials", "n", "m"];
        assert_eq!(did_you_mean("threds", &keys), Some("threads"));
        assert_eq!(did_you_mean("trals", &keys), Some("trials"));
        assert_eq!(did_you_mean("completely-wrong", &keys), None);
    }
}
