//! # setcover-bench
//!
//! Experiment harness for the PODS'23 reproduction: multi-trial runners,
//! summary statistics, text-table/CSV rendering, and the binaries that
//! regenerate each table/figure of DESIGN.md's per-experiment index:
//!
//! | binary | experiment |
//! |--------|------------|
//! | `table1` | E-T1 — Table 1: measured space & approximation per algorithm/regime |
//! | `alpha_sweep` | E-F1 — Algorithm 2 space vs α (log-log slope ≈ −2) |
//! | `approx_scaling` | E-F2 — ratio vs n for KK & random-order (slope ≈ ½) |
//! | `separation` | E-F3 — adversarial vs random order on the same algorithm |
//! | `lowerbound` | E-F4/E-F6 — Lemma 1 family, Theorem 2 game, simple t-party protocol |
//! | `invariants` | E-F5 — invariants (I1)–(I3), Lemmas 5 & 8 traces |
//! | `report` | everything above, concatenated into `results/REPORT.md` |
//! | `ablation` | E-A1..A4 — design-choice ablations |
//! | `gen_instance` / `solve` | file-based workload interchange (`.sc`/`.scs`) |
//!
//! Run with `cargo run -p setcover-bench --release --bin <name>`. Criterion
//! throughput benches live in `benches/`; the experiment logic itself is a
//! library ([`experiments`]) so tests can exercise it end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod obs;
pub mod par;
pub mod stats;
pub mod table;

pub use harness::{trial_seeds, write_output, MeasuredRun, Measurement};
pub use obs::{emit_obs, manifest_json, trace_jsonl};
pub use par::{
    emit_run_footer, par_grid, timed_report, timed_report_vs_serial, ObsTrial, Task, TrialRunner,
};
pub use stats::{loglog_slope, Summary};
pub use table::Table;
