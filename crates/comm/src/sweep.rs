//! Reusable harness for playing the Theorem 2 distinguishing game over
//! many seeds, with held-out calibration.
//!
//! The binary experiments and integration tests both need the same
//! protocol: calibrate a decision threshold on dedicated seeds (midpoint
//! of the two promise cases' mean best-estimates), then evaluate on fresh
//! seeds and report the success rate and the per-case estimate
//! distributions. Calibration and evaluation seeds are disjoint by
//! construction so the threshold never sees the instances it judges.

use setcover_core::rng::derive_seed;
use setcover_gen::lowerbound::{LbFamily, LbFamilyConfig};

use crate::disjointness::{DisjCase, DisjointnessInstance};
use crate::reduction::{run_reduction, ReductionOutcome, ReductionSolver};

/// Configuration of one game series.
#[derive(Debug, Clone, Copy)]
pub struct GameConfig {
    /// The Lemma 1 family parameters (shared by every run).
    pub family: LbFamilyConfig,
    /// Number of calibration seeds per promise case.
    pub calibration_runs: usize,
    /// Number of evaluation seeds (each plays both cases).
    pub evaluation_runs: usize,
    /// Triples sampled when measuring the family's max part intersection.
    pub maxint_samples: usize,
}

impl GameConfig {
    /// The scale used throughout the experiments: n = 4096, m = 101,
    /// t = 8 (see the reduction module docs for why).
    pub fn standard() -> Self {
        GameConfig {
            family: LbFamilyConfig {
                n: 4096,
                m: 101,
                t: 8,
            },
            calibration_runs: 3,
            evaluation_runs: 5,
            maxint_samples: 500,
        }
    }
}

/// Results of one game series.
#[derive(Debug, Clone)]
pub struct GameStats {
    /// The calibrated decision threshold.
    pub threshold: usize,
    /// Correct decisions over evaluation runs.
    pub correct: usize,
    /// Total evaluation decisions (2 per evaluation seed).
    pub total: usize,
    /// Best estimates of intersecting-case evaluation runs.
    pub intersecting_estimates: Vec<usize>,
    /// Best estimates of disjoint-case evaluation runs.
    pub disjoint_estimates: Vec<usize>,
    /// Largest forwarded state observed (words).
    pub max_state_words: usize,
}

impl GameStats {
    /// Success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Mean of a case's estimates.
    pub fn mean(estimates: &[usize]) -> f64 {
        if estimates.is_empty() {
            0.0
        } else {
            estimates.iter().sum::<usize>() as f64 / estimates.len() as f64
        }
    }

    /// Gap factor: disjoint mean / intersecting mean (∞ if the latter is
    /// 0; 0 if no data).
    pub fn gap(&self) -> f64 {
        let i = Self::mean(&self.intersecting_estimates);
        let d = Self::mean(&self.disjoint_estimates);
        if i <= 0.0 {
            if d > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            d / i
        }
    }
}

/// Run one case of the game with a fresh family/instance per seed.
pub fn play_once<A, F>(cfg: &GameConfig, case: DisjCase, seed: u64, factory: &F) -> ReductionOutcome
where
    A: ReductionSolver,
    F: Fn(usize, usize, u64) -> A,
{
    let fam = LbFamily::generate(cfg.family, seed);
    let disj = DisjointnessInstance::generate(cfg.family.m, cfg.family.t, case, seed);
    debug_assert!(disj.verify_promise());
    let maxint = fam
        .max_part_intersection_sampled(cfg.maxint_samples, seed)
        .max(1);
    run_reduction(&fam, &disj, maxint, |ms, ns| factory(ms, ns, seed))
}

/// Play the full series: calibrate, then evaluate.
///
/// `factory(m, n, seed)` constructs the simulated streaming algorithm for
/// one run (the reduction instance has `m` sets over universe `n`).
pub fn play_series<A, F>(cfg: &GameConfig, base_seed: u64, factory: F) -> GameStats
where
    A: ReductionSolver,
    F: Fn(usize, usize, u64) -> A,
{
    // Calibration on a disjoint seed namespace.
    let cal = |case: DisjCase, salt: u64| -> f64 {
        let runs: Vec<usize> = (0..cfg.calibration_runs as u64)
            .map(|i| play_once(cfg, case, derive_seed(base_seed, salt + i), &factory).best_estimate)
            .collect();
        GameStats::mean(&runs)
    };
    let ci = cal(DisjCase::UniquelyIntersecting, 0x_CA11);
    let cd = cal(DisjCase::PairwiseDisjoint, 0x_CA22);
    let threshold = ((ci + cd) / 2.0).round() as usize;

    let mut stats = GameStats {
        threshold,
        correct: 0,
        total: 0,
        intersecting_estimates: Vec::new(),
        disjoint_estimates: Vec::new(),
        max_state_words: 0,
    };
    for i in 0..cfg.evaluation_runs as u64 {
        let seed = derive_seed(base_seed, 0x_E7A1 + i);
        for case in [DisjCase::UniquelyIntersecting, DisjCase::PairwiseDisjoint] {
            let out = play_once(cfg, case, seed, &factory);
            stats.total += 1;
            stats.correct += usize::from(out.correct(threshold, case));
            stats.max_state_words = stats.max_state_words.max(out.messages.max_message_words());
            match case {
                DisjCase::UniquelyIntersecting => {
                    stats.intersecting_estimates.push(out.best_estimate)
                }
                DisjCase::PairwiseDisjoint => stats.disjoint_estimates.push(out.best_estimate),
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budgeted::BucketedKkSolver;
    use setcover_algos::KkSolver;

    fn quick_cfg() -> GameConfig {
        GameConfig {
            family: LbFamilyConfig {
                n: 4096,
                m: 101,
                t: 8,
            },
            calibration_runs: 2,
            evaluation_runs: 2,
            maxint_samples: 300,
        }
    }

    #[test]
    fn full_state_kk_wins_the_series() {
        let stats = play_series(&quick_cfg(), 42, KkSolver::new);
        assert_eq!(
            stats.correct, stats.total,
            "full-state KK should be perfect"
        );
        assert!(stats.gap() >= 2.0, "gap {} too small", stats.gap());
        assert!(stats.max_state_words >= 102, "KK state is Θ(m)");
        assert!((stats.success_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starved_state_collapses_the_gap() {
        let stats = play_series(&quick_cfg(), 42, |m, n, seed| {
            BucketedKkSolver::with_element_budget(m, n, 2, n / 50, seed)
        });
        // With 2 counters and 2% of element entries, the two cases are
        // nearly indistinguishable: the gap shrinks dramatically vs the
        // full-state series.
        assert!(
            stats.gap() < 1.5,
            "starved gap {} should be near 1",
            stats.gap()
        );
    }

    #[test]
    fn stats_helpers() {
        let s = GameStats {
            threshold: 10,
            correct: 3,
            total: 4,
            intersecting_estimates: vec![5, 7],
            disjoint_estimates: vec![30, 30],
            max_state_words: 99,
        };
        assert!((s.success_rate() - 0.75).abs() < 1e-12);
        assert!((GameStats::mean(&s.intersecting_estimates) - 6.0).abs() < 1e-12);
        assert!((s.gap() - 5.0).abs() < 1e-12);
        let empty = GameStats {
            threshold: 0,
            correct: 0,
            total: 0,
            intersecting_estimates: vec![],
            disjoint_estimates: vec![],
            max_state_words: 0,
        };
        assert_eq!(empty.success_rate(), 0.0);
        assert_eq!(empty.gap(), 0.0);
    }

    #[test]
    fn calibration_and_evaluation_seeds_are_disjoint() {
        // Different base seeds give different thresholds (fresh
        // calibration) but the protocol stays correct for full-state KK.
        let a = play_series(&quick_cfg(), 1, KkSolver::new);
        let b = play_series(&quick_cfg(), 2, KkSolver::new);
        assert_eq!(a.correct, a.total);
        assert_eq!(b.correct, b.total);
    }
}
