//! A space-budgeted KK variant, for measuring the lower bound's content.
//!
//! Theorem 2 says a one-pass algorithm needs Ω̃(mn²/α⁴) space to
//! distinguish the two promise cases through the reduction. To *measure*
//! that, we need a knob that trades the KK-algorithm's Θ(m) counter state
//! for less: [`BucketedKkSolver`] hashes the `m` uncovered-degree
//! counters into `b ≤ m` shared buckets. At `b = m` it is exactly the
//! KK-algorithm; as `b` shrinks, counter collisions blur the statistical
//! signal — colliding sets cross inclusion levels spuriously, covers and
//! cover estimates lose their meaning, and the Theorem 2 distinguishing
//! game's success rate collapses. The `lowerbound` binary sweeps `b` and
//! reports success vs budget: the empirical face of "space is necessary".
//!
//! The hash is a fixed odd-multiplier Fibonacci hash of the set id — the
//! adversary (our harness) does not exploit it, so measured failures are
//! *statistical*, not adversarial, making the demonstration conservative.
//!
//! ## Why the element side must be budgeted too
//!
//! At laptop parameters (`m ≈ n/40`), the Õ(n)-word first-set map `R(u)`
//! alone distinguishes the promise cases: in the intersecting run most of
//! `T_{b*}`'s elements have `R(u) = T_{b*}` (density `m·part/n < 1`), so
//! patching needs ~1 set, while the disjoint case scatters. That is
//! consistent with Theorem 2 — its bound `Ω(m/t²)` is *tiny* when
//! `m ≪ n`; the bound only exceeds the element-side state in the regime
//! `m = Ω̃(n²)`, far beyond feasible game sizes (the `m` forks each carry
//! Θ(m + n) state → Θ(m²) total). The runnable sweep therefore budgets
//! the **total** forwarded state: `counter_budget` shared degree counters
//! *and* an `element_budget`-sized subsample of elements for which
//! `R(u)`/witness information is retained ([`Self::knows_element`]). The
//! solver keeps a full `R` internally only so the generic
//! `StreamingSetCover::finalize` can still emit a valid cover outside the
//! game; the game's estimates consult only the budgeted view.

use rand::rngs::SmallRng;

use setcover_core::math::isqrt;
use setcover_core::rng::{coin, seeded_rng};
use setcover_core::space::{SpaceComponent, SpaceMeter};
use setcover_core::{Cover, Edge, ElemId, SetId, SpaceReport, StreamingSetCover};

use crate::reduction::ReductionSolver;

// Private re-implementation of the small shared structures (the algos
// crate keeps its internals private; the budgeted variant is a comm-side
// measurement device, not a product algorithm).
#[derive(Debug, Clone)]
struct State {
    marked: Vec<bool>,
    first: Vec<Option<SetId>>,
    in_sol: Vec<bool>,
    members: Vec<SetId>,
    certificate: Vec<Option<SetId>>,
}

/// The bucketed KK solver. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct BucketedKkSolver {
    m: usize,
    level_width: usize,
    rng: SmallRng,
    /// `b` shared counters.
    buckets: Vec<u32>,
    /// Elements whose R(u)/witness information the budgeted state keeps.
    known_elem: Vec<bool>,
    element_budget: usize,
    state: State,
    meter: SpaceMeter,
}

impl BucketedKkSolver {
    /// A KK solver with `buckets ≤ m` shared degree counters and the full
    /// element-side state (`element_budget = n`).
    pub fn new(m: usize, n: usize, buckets: usize, seed: u64) -> Self {
        Self::with_element_budget(m, n, buckets, n, seed)
    }

    /// A KK solver whose forwarded state is `buckets` shared counters
    /// plus `R(u)`/witness knowledge for a random `element_budget`-sized
    /// subset of elements.
    pub fn with_element_budget(
        m: usize,
        n: usize,
        buckets: usize,
        element_budget: usize,
        seed: u64,
    ) -> Self {
        assert!(buckets >= 1);
        let buckets = buckets.min(m);
        let element_budget = element_budget.min(n);
        let mut rng = seeded_rng(seed);
        // Reservoir-free subsample: mark the first `element_budget` slots
        // of a seeded permutation.
        let mut known_elem = vec![false; n];
        if element_budget >= n {
            known_elem.iter_mut().for_each(|k| *k = true);
        } else {
            let mut ids: Vec<u32> = (0..n as u32).collect();
            rand::seq::SliceRandom::shuffle(&mut ids[..], &mut rng);
            for &u in ids.iter().take(element_budget) {
                known_elem[u as usize] = true;
            }
        }
        let mut meter = SpaceMeter::new();
        meter.charge(SpaceComponent::Counters, buckets);
        meter.charge(SpaceComponent::Marks, setcover_core::space::bitset_words(n));
        meter.charge(SpaceComponent::FirstSet, element_budget);
        BucketedKkSolver {
            m,
            level_width: isqrt(n).max(1),
            rng,
            buckets: vec![0; buckets],
            known_elem,
            element_budget,
            state: State {
                marked: vec![false; n],
                first: vec![None; n],
                in_sol: vec![false; m],
                members: Vec::new(),
                certificate: vec![None; n],
            },
            meter,
        }
    }

    /// The counter budget `b`.
    pub fn budget(&self) -> usize {
        self.buckets.len()
    }

    /// The element-side budget `r`.
    pub fn element_budget(&self) -> usize {
        self.element_budget
    }

    /// Whether the budgeted state retains element `u`'s R(u)/witness.
    pub fn knows_element(&self, u: ElemId) -> bool {
        self.known_elem[u.index()]
    }

    #[inline]
    fn bucket_of(&self, s: SetId) -> usize {
        // Fibonacci hashing on the set id.
        let h = (s.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.buckets.len()
    }
}

impl StreamingSetCover for BucketedKkSolver {
    fn name(&self) -> &'static str {
        "kk-bucketed"
    }

    fn process_edge(&mut self, e: Edge) {
        let st = &mut self.state;
        if st.first[e.elem.index()].is_none() {
            st.first[e.elem.index()] = Some(e.set);
        }
        if st.marked[e.elem.index()] {
            return;
        }
        if st.in_sol[e.set.index()] {
            st.marked[e.elem.index()] = true;
            if st.certificate[e.elem.index()].is_none() {
                st.certificate[e.elem.index()] = Some(e.set);
                self.meter.charge(SpaceComponent::Solution, 1);
            }
            return;
        }
        let b = self.bucket_of(e.set);
        let d = &mut self.buckets[b];
        *d += 1;
        if (*d as usize).is_multiple_of(self.level_width) {
            let level = (*d as usize / self.level_width) as u32;
            let p = 2f64.powi(level as i32) * self.level_width as f64 / self.m as f64;
            if coin(&mut self.rng, p) && !self.state.in_sol[e.set.index()] {
                let st = &mut self.state;
                st.in_sol[e.set.index()] = true;
                st.members.push(e.set);
                st.marked[e.elem.index()] = true;
                if st.certificate[e.elem.index()].is_none() {
                    st.certificate[e.elem.index()] = Some(e.set);
                }
                self.meter.charge(SpaceComponent::Solution, 2);
            }
        }
    }

    fn finalize(&mut self) -> Cover {
        let st = &mut self.state;
        let n = st.certificate.len();
        let mut cert = Vec::with_capacity(n);
        for u in 0..n {
            let s = match st.certificate[u] {
                Some(s) => s,
                None => {
                    let s = st.first[u].expect("feasible instances patch via R(u)");
                    if !st.in_sol[s.index()] {
                        st.in_sol[s.index()] = true;
                        st.members.push(s);
                    }
                    s
                }
            };
            cert.push(s);
        }
        Cover::new(st.members.clone(), cert)
    }

    fn space(&self) -> SpaceReport {
        self.meter.report()
    }
}

impl ReductionSolver for BucketedKkSolver {
    fn solution_members(&self) -> &[SetId] {
        &self.state.members
    }
    fn has_witness(&self, u: ElemId) -> bool {
        self.known_elem[u.index()] && self.state.certificate[u.index()].is_some()
    }
    fn witness_of(&self, u: ElemId) -> Option<SetId> {
        if self.known_elem[u.index()] {
            self.state.certificate[u.index()]
        } else {
            None
        }
    }
    fn first_set(&self, u: ElemId) -> Option<SetId> {
        if self.known_elem[u.index()] {
            self.state.first[u.index()]
        } else {
            None
        }
    }
    fn state_words(&self) -> usize {
        // Forwarded state: counters + retained element entries + Sol.
        self.budget() + self.element_budget + self.state.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::solver::run_on_edges;
    use setcover_core::stream::{order_edges, StreamOrder};
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn full_budget_behaves_like_kk_quality() {
        let p = planted(&PlantedConfig::exact(144, 1440, 12), 1);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Uniform(2));
        let out = run_on_edges(
            BucketedKkSolver::new(inst.m(), inst.n(), inst.m(), 3),
            &edges,
        );
        out.cover.verify(inst).unwrap();
        assert!(out.cover.size() <= inst.n());
    }

    #[test]
    fn tiny_budget_still_produces_valid_covers() {
        let p = planted(&PlantedConfig::exact(100, 800, 10), 2);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Interleaved);
        for budget in [1usize, 4, 16] {
            let out = run_on_edges(BucketedKkSolver::new(inst.m(), inst.n(), budget, 4), &edges);
            out.cover.verify(inst).unwrap();
        }
    }

    #[test]
    fn budget_caps_counter_space() {
        let s = BucketedKkSolver::new(10_000, 100, 64, 1);
        assert_eq!(s.budget(), 64);
        let r = s.space();
        let counters = r
            .peak_by_component
            .iter()
            .find(|(c, _)| *c == SpaceComponent::Counters)
            .map(|(_, w)| *w)
            .unwrap();
        assert_eq!(counters, 64);
        // Budget is clamped at m.
        assert_eq!(BucketedKkSolver::new(10, 100, 500, 1).budget(), 10);
    }

    #[test]
    fn element_budget_gates_the_reduction_view() {
        let s = BucketedKkSolver::with_element_budget(100, 200, 100, 50, 3);
        assert_eq!(s.element_budget(), 50);
        let known = (0..200u32).filter(|&u| s.knows_element(ElemId(u))).count();
        assert_eq!(known, 50);
        // Unknown elements report no R(u) through the reduction view.
        let unknown = (0..200u32).find(|&u| !s.knows_element(ElemId(u))).unwrap();
        assert_eq!(s.first_set(ElemId(unknown)), None);
        assert!(!s.has_witness(ElemId(unknown)));
    }

    #[test]
    fn bucket_hash_is_stable_and_in_range() {
        let s = BucketedKkSolver::new(1000, 100, 37, 1);
        for id in 0..1000u32 {
            let b = s.bucket_of(SetId(id));
            assert!(b < 37);
            assert_eq!(b, s.bucket_of(SetId(id)));
        }
    }

    #[test]
    fn collisions_inflate_inclusions_at_small_budgets() {
        // With b = 1 every uncovered edge bumps one shared counter, so
        // levels cross constantly and far more sets get sampled than at
        // full budget.
        let p = planted(&PlantedConfig::exact(100, 2000, 10), 5);
        let inst = &p.workload.instance;
        let edges = order_edges(inst, StreamOrder::Uniform(6));
        let sol_len = |b: usize| {
            let mut s = BucketedKkSolver::new(inst.m(), inst.n(), b, 7);
            for &e in &edges {
                s.process_edge(e);
            }
            s.solution_members().len()
        };
        let full = sol_len(inst.m());
        let collapsed = sol_len(1);
        assert!(
            collapsed > 2 * full.max(1),
            "b=1 ({collapsed}) should wildly over-include vs b=m ({full})"
        );
    }
}
