//! One-way multi-party protocol traces and message-size accounting.
//!
//! In the one-way model (paper §3), party 1 sends a message `M₁` to party
//! 2, who sends `M₂` to party 3, and so on; party `t` outputs the answer.
//! A one-pass streaming algorithm with space `s` yields a protocol whose
//! every message has at most `s` words — the algorithm's forwarded memory
//! state. Conversely, a lower bound on the longest message lower-bounds
//! streaming space.
//!
//! When we *run* a reduction in one process, the "message" at the boundary
//! between party `p` and party `p+1` is the simulated algorithm's live
//! state at that instant. [`MessageStats`] records those handoff sizes so
//! experiments can plot distinguishing power against message length.

/// The state size observed at one party boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartyHandoff {
    /// The party that just finished (1-based).
    pub from_party: usize,
    /// Live words of simulated-algorithm state forwarded to the next
    /// party.
    pub state_words: usize,
}

/// Message-size statistics for one protocol execution.
#[derive(Debug, Clone, Default)]
pub struct MessageStats {
    /// All handoffs, in order.
    pub handoffs: Vec<PartyHandoff>,
}

impl MessageStats {
    /// Record a handoff.
    pub fn record(&mut self, from_party: usize, state_words: usize) {
        self.handoffs.push(PartyHandoff {
            from_party,
            state_words,
        });
    }

    /// The longest individual message — the quantity Theorem 5 bounds by
    /// Ω(m/t²).
    pub fn max_message_words(&self) -> usize {
        self.handoffs
            .iter()
            .map(|h| h.state_words)
            .max()
            .unwrap_or(0)
    }

    /// Total communication (sum of messages).
    pub fn total_words(&self) -> usize {
        self.handoffs.iter().map(|h| h.state_words).sum()
    }

    /// Number of messages sent.
    pub fn len(&self) -> usize {
        self.handoffs.len()
    }

    /// Whether no message was sent.
    pub fn is_empty(&self) -> bool {
        self.handoffs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut s = MessageStats::default();
        assert!(s.is_empty());
        s.record(1, 100);
        s.record(2, 250);
        s.record(3, 50);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_message_words(), 250);
        assert_eq!(s.total_words(), 400);
        assert_eq!(
            s.handoffs[1],
            PartyHandoff {
                from_party: 2,
                state_words: 250
            }
        );
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = MessageStats::default();
        assert_eq!(s.max_message_words(), 0);
        assert_eq!(s.total_words(), 0);
    }
}
