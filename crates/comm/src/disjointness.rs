//! t-party Set Disjointness promise instances.
//!
//! Each of `t` parties holds a subset `S_i ⊆ [m]`. The promise (paper §3):
//! either the sets are **pairwise disjoint**, or they **uniquely
//! intersect** — `|⋂_i S_i| = 1` and `|S_i ∩ S_j| = 1` for every `i ≠ j`
//! (the pairwise intersections all equal the common element). Deciding
//! which case holds requires a message of size Ω(m/t²) (Theorem 5,
//! [Chakrabarti–Khot–Sun]); the reduction turns a too-frugal streaming
//! algorithm into a too-frugal disjointness protocol.

use rand::seq::SliceRandom;

use setcover_core::rng::{derive_seed, seeded_rng};

/// Which side of the promise an instance realizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisjCase {
    /// All sets pairwise disjoint.
    PairwiseDisjoint,
    /// A unique common element appears in every set; all pairwise
    /// intersections equal `{x}`.
    UniquelyIntersecting,
}

/// A t-party Set Disjointness promise instance over the universe `[m]`.
#[derive(Debug, Clone)]
pub struct DisjointnessInstance {
    /// Universe size (the `m` of the Set Cover reduction: indices of the
    /// Lemma 1 family).
    pub m: usize,
    /// The parties' sets, `sets.len() == t`, each sorted ascending.
    pub sets: Vec<Vec<u32>>,
    /// Which case was constructed.
    pub case: DisjCase,
    /// The common element in the intersecting case.
    pub intersection: Option<u32>,
}

impl DisjointnessInstance {
    /// Generate an instance with `t` parties over `[m]`. The parties'
    /// private sets fully partition the available pool — all of `[m]` in
    /// the disjoint case, `[m] \ {x}` in the intersecting case, where the
    /// common element `x` is additionally given to every party. Full
    /// coverage of `[m]` mirrors the hard distribution's density and
    /// ensures every index of the Lemma 1 family is present in the
    /// reduction (so every parallel run's set `T_j` actually appears).
    /// Deterministic in `(m, t, case, seed)`.
    pub fn generate(m: usize, t: usize, case: DisjCase, seed: u64) -> Self {
        assert!(t >= 2, "need at least two parties");
        assert!(m > t, "universe must exceed the party count");
        let mut rng = seeded_rng(derive_seed(seed, 0x4449_534a)); // "DISJ"

        let mut universe: Vec<u32> = (0..m as u32).collect();
        universe.shuffle(&mut rng);

        let (common, private): (u32, &[u32]) = match case {
            DisjCase::UniquelyIntersecting => (universe[0], &universe[1..]),
            DisjCase::PairwiseDisjoint => (u32::MAX, &universe[..]),
        };

        // Near-equal split of the private pool across parties.
        let mut sets: Vec<Vec<u32>> = Vec::with_capacity(t);
        let base = private.len() / t;
        let extra = private.len() % t;
        let mut pos = 0usize;
        for p in 0..t {
            let len = base + usize::from(p < extra);
            let mut s: Vec<u32> = private[pos..pos + len].to_vec();
            pos += len;
            if case == DisjCase::UniquelyIntersecting {
                s.push(common);
            }
            s.sort_unstable();
            sets.push(s);
        }

        DisjointnessInstance {
            m,
            sets,
            case,
            intersection: (case == DisjCase::UniquelyIntersecting).then_some(common),
        }
    }

    /// Union coverage: how many of `[m]` appear in some party's set
    /// (always `m` for generated instances).
    pub fn coverage(&self) -> usize {
        let mut seen = vec![false; self.m];
        for s in &self.sets {
            for &b in s {
                seen[b as usize] = true;
            }
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Number of parties `t`.
    pub fn t(&self) -> usize {
        self.sets.len()
    }

    /// Check the promise actually holds (used by tests and as a harness
    /// sanity check).
    pub fn verify_promise(&self) -> bool {
        let t = self.t();
        match self.case {
            DisjCase::PairwiseDisjoint => {
                for i in 0..t {
                    for j in (i + 1)..t {
                        if intersection_size(&self.sets[i], &self.sets[j]) != 0 {
                            return false;
                        }
                    }
                }
                true
            }
            DisjCase::UniquelyIntersecting => {
                let Some(x) = self.intersection else {
                    return false;
                };
                for i in 0..t {
                    if self.sets[i].binary_search(&x).is_err() {
                        return false;
                    }
                    for j in (i + 1)..t {
                        if intersection_size(&self.sets[i], &self.sets[j]) != 1 {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }
}

/// `|a ∩ b|` for sorted slices.
fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_case_promise_holds_and_covers_universe() {
        let inst = DisjointnessInstance::generate(100, 4, DisjCase::PairwiseDisjoint, 1);
        assert_eq!(inst.t(), 4);
        assert!(inst.verify_promise());
        assert_eq!(inst.intersection, None);
        assert_eq!(inst.coverage(), 100);
        for s in &inst.sets {
            assert_eq!(s.len(), 25);
        }
    }

    #[test]
    fn intersecting_case_promise_holds_and_covers_universe() {
        let inst = DisjointnessInstance::generate(101, 4, DisjCase::UniquelyIntersecting, 1);
        assert!(inst.verify_promise());
        assert_eq!(inst.coverage(), 101);
        let x = inst.intersection.unwrap();
        for s in &inst.sets {
            assert!(s.binary_search(&x).is_ok());
            assert_eq!(s.len(), 26);
        }
    }

    #[test]
    fn uneven_pools_distribute_remainders() {
        let inst = DisjointnessInstance::generate(10, 3, DisjCase::PairwiseDisjoint, 2);
        let sizes: Vec<usize> = inst.sets.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        assert!(inst.verify_promise());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = DisjointnessInstance::generate(50, 2, DisjCase::PairwiseDisjoint, 3);
        let b = DisjointnessInstance::generate(50, 2, DisjCase::PairwiseDisjoint, 3);
        assert_eq!(a.sets, b.sets);
    }

    #[test]
    #[should_panic(expected = "universe must exceed")]
    fn rejects_tiny_universe() {
        DisjointnessInstance::generate(3, 3, DisjCase::PairwiseDisjoint, 1);
    }

    #[test]
    fn intersection_size_helper() {
        assert_eq!(intersection_size(&[1, 3, 5], &[2, 3, 4, 5]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
        assert_eq!(intersection_size(&[7], &[7]), 1);
    }
}
