//! The simple deterministic t-party protocol: approximation `2√(nt)`,
//! maximum message Õ(n).
//!
//! The paper (§3, deferred to the full version) notes that a deterministic
//! t-party protocol achieves a `2√(nt)` approximation with messages of
//! length Õ(n) — which is why a lower bound above Θ̃(n) space for
//! approximation α requires `t = Ω(α²/n)` parties. We reconstruct the
//! natural such protocol:
//!
//! * the forwarded message carries the covered-element bitmap, the chosen
//!   set ids, witnesses, and the first-set map `R(u)` — all Õ(n) words;
//! * each party processes its local partial sets in order and picks any
//!   whose *locally new* coverage is at least `τ = √(n/t)`;
//! * the last party patches uncovered (seen) elements via `R(u)`.
//!
//! Analysis: picks cover ≥ τ new elements each, so there are at most
//! `n/τ = √(nt)` picks. An optimal set's elements are split across ≤ t
//! parties, each leaving a residual < τ at processing time, so patching
//! costs < `t·τ·OPT = √(nt)·OPT`. Total ≤ `√(nt) + √(nt)·OPT ≤
//! 2√(nt)·OPT`.

use std::collections::HashSet;

use setcover_core::math::isqrt;
use setcover_core::space::bitset_words;
use setcover_core::{SetCoverInstance, SetId};

use crate::party::MessageStats;

/// One party's input: partial sets `(set id, local elements)`.
pub type PartyInput = Vec<(u32, Vec<u32>)>;

/// Result of a simple-protocol execution.
#[derive(Debug, Clone)]
pub struct SimpleProtocolOutcome {
    /// The output cover (threshold picks + patches), deduplicated.
    pub cover_sets: Vec<SetId>,
    /// Sets chosen by the threshold rule.
    pub picks: usize,
    /// Distinct sets added by patching.
    pub patches: usize,
    /// The pick threshold `τ = √(n/t)`.
    pub threshold: usize,
    /// Message sizes per handoff (Õ(n) each).
    pub messages: MessageStats,
}

impl SimpleProtocolOutcome {
    /// `|cover|`.
    pub fn cover_size(&self) -> usize {
        self.cover_sets.len()
    }
}

/// Run the protocol on per-party edge partitions over universe `[n]`.
pub fn run_simple_protocol(n: usize, parties: &[PartyInput]) -> SimpleProtocolOutcome {
    let t = parties.len().max(1);
    let threshold = isqrt(n / t).max(1);

    let mut covered = vec![false; n];
    let mut witnesses: Vec<Option<SetId>> = vec![None; n];
    let mut first: Vec<Option<SetId>> = vec![None; n];
    let mut picked: Vec<SetId> = Vec::new();
    let mut messages = MessageStats::default();

    for (p, input) in parties.iter().enumerate() {
        for (sid, elems) in input {
            let sid = SetId(*sid);
            for &u in elems {
                if first[u as usize].is_none() {
                    first[u as usize] = Some(sid);
                }
            }
            let new = elems.iter().filter(|&&u| !covered[u as usize]).count();
            if new >= threshold {
                picked.push(sid);
                for &u in elems {
                    if !covered[u as usize] {
                        covered[u as usize] = true;
                        witnesses[u as usize] = Some(sid);
                    }
                }
            }
        }
        // The forwarded state: covered bitmap + picked ids + witnesses +
        // first-set map — Õ(n) words.
        messages.record(p + 1, bitset_words(n) + picked.len() + 2 * n);
    }

    // Patch seen-but-uncovered elements.
    let mut cover: HashSet<SetId> = picked.iter().copied().collect();
    let picks = cover.len();
    let mut patch_sets: HashSet<SetId> = HashSet::new();
    for u in 0..n {
        if !covered[u] {
            if let Some(r) = first[u] {
                if !cover.contains(&r) {
                    patch_sets.insert(r);
                }
            }
        }
    }
    cover.extend(patch_sets.iter().copied());

    let mut cover_sets: Vec<SetId> = cover.into_iter().collect();
    cover_sets.sort_unstable();
    SimpleProtocolOutcome {
        cover_sets,
        picks,
        patches: patch_sets.len(),
        threshold,
        messages,
    }
}

/// Partition an instance's edges across `t` parties: each set's element
/// list is split into `t` (nearly equal, contiguous) chunks, chunk `p`
/// going to party `p`. This is the "sets split across parties" input shape
/// that makes the `√(nt)` factor tight.
pub fn split_instance_across_parties(inst: &SetCoverInstance, t: usize) -> Vec<PartyInput> {
    assert!(t >= 1);
    let mut parties: Vec<PartyInput> = vec![Vec::new(); t];
    for s in 0..inst.m() as u32 {
        let elems = inst.set(SetId(s));
        let chunk = elems.len().div_ceil(t).max(1);
        for (p, part) in elems.chunks(chunk).enumerate() {
            parties[p].push((s, part.iter().map(|u| u.0).collect()));
        }
    }
    parties
}

/// Give each whole set to one party, round-robin — the easier input shape
/// (sets not split), on which the protocol behaves like the `√n` threshold
/// algorithm.
pub fn assign_sets_round_robin(inst: &SetCoverInstance, t: usize) -> Vec<PartyInput> {
    assert!(t >= 1);
    let mut parties: Vec<PartyInput> = vec![Vec::new(); t];
    for s in 0..inst.m() as u32 {
        let elems = inst.set(SetId(s)).iter().map(|u| u.0).collect();
        parties[s as usize % t].push((s, elems));
    }
    parties
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_gen::planted::{planted, PlantedConfig};

    #[test]
    fn covers_everything_seen() {
        let p = planted(&PlantedConfig::exact(256, 512, 8), 1);
        let inst = &p.workload.instance;
        let parties = split_instance_across_parties(inst, 4);
        let out = run_simple_protocol(inst.n(), &parties);
        // Verify: every element is covered by some set in the output.
        let mut covered = vec![false; inst.n()];
        for &s in &out.cover_sets {
            for &u in inst.set(s) {
                covered[u.index()] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "protocol output is not a cover");
    }

    #[test]
    fn ratio_is_sqrt_nt_scale() {
        let p = planted(&PlantedConfig::exact(400, 800, 8), 2);
        let inst = &p.workload.instance;
        let t = 4;
        let parties = split_instance_across_parties(inst, t);
        let out = run_simple_protocol(inst.n(), &parties);
        let bound = 2.0 * ((inst.n() * t) as f64).sqrt();
        let ratio = out.cover_size() as f64 / 8.0;
        assert!(ratio <= bound, "ratio {ratio} above 2√(nt) = {bound}");
    }

    #[test]
    fn messages_are_linear_in_n() {
        let p = planted(&PlantedConfig::exact(300, 3000, 10), 3);
        let inst = &p.workload.instance;
        let parties = split_instance_across_parties(inst, 5);
        let out = run_simple_protocol(inst.n(), &parties);
        assert_eq!(out.messages.len(), 5);
        // Õ(n): far below m = 3000... specifically <= bitmap + picks + 2n.
        let n = inst.n();
        assert!(out.messages.max_message_words() <= bitset_words(n) + n + 2 * n);
    }

    #[test]
    fn threshold_uses_sqrt_n_over_t() {
        let parties: Vec<PartyInput> = vec![Vec::new(); 4];
        let out = run_simple_protocol(100, &parties);
        assert_eq!(out.threshold, 5); // sqrt(100/4)
        assert_eq!(out.cover_size(), 0); // nothing seen, nothing needed
    }

    #[test]
    fn round_robin_assignment_keeps_sets_whole() {
        let p = planted(&PlantedConfig::exact(60, 30, 6), 4);
        let inst = &p.workload.instance;
        let parties = assign_sets_round_robin(inst, 4);
        let total: usize = parties.iter().map(|pp| pp.len()).sum();
        assert_eq!(total, inst.m());
        for (p_idx, party) in parties.iter().enumerate() {
            for (s, elems) in party {
                assert_eq!(*s as usize % 4, p_idx);
                assert_eq!(elems.len(), inst.set_size(SetId(*s)));
            }
        }
    }

    #[test]
    fn split_partition_preserves_all_edges() {
        let p = planted(&PlantedConfig::exact(50, 25, 5), 5);
        let inst = &p.workload.instance;
        let parties = split_instance_across_parties(inst, 3);
        let total: usize = parties
            .iter()
            .flat_map(|pp| pp.iter().map(|(_, e)| e.len()))
            .sum();
        assert_eq!(total, inst.num_edges());
    }
}
