//! # setcover-comm
//!
//! One-way multi-party communication machinery for the PODS'23 lower bound
//! (Theorem 2) and its surrounding constructions.
//!
//! Theorem 2 proves that any one-pass α-approximation streaming algorithm
//! for edge-arrival Set Cover in adversarial order needs Ω̃(mn²/α⁴) space,
//! by reduction from t-party **Set Disjointness** (Theorem 5,
//! [Chakrabarti–Khot–Sun]): if the streaming algorithm used less space,
//! its forwarded memory state would be a too-short message.
//!
//! This crate implements the constructions so the reduction can be *run*:
//!
//! * [`disjointness`] — promise instances of t-party Set Disjointness
//!   (pairwise disjoint vs uniquely intersecting);
//! * [`party`] — the one-way protocol trace: parties, handoffs, and
//!   message-size accounting (a streaming algorithm's message is its
//!   memory state);
//! * [`reduction`] — the full Theorem 2 reduction: each party feeds the
//!   partial sets `T_b^p` (from the Lemma 1 family in `setcover-gen`) for
//!   its disjointness set, the last party forks `m` parallel runs adding
//!   the complement `[n] \ T_j` in run `j`, and the protocol answers
//!   "uniquely intersecting" iff some run reports a cover estimate below
//!   the disjoint-case floor `OPT₀`;
//! * [`budgeted`] — a space-budgeted KK variant (hashed counters) whose
//!   distinguishing success collapses with its budget, the measurable
//!   face of the space lower bound;
//! * [`simple_protocol`] — the deterministic t-party protocol with
//!   approximation `2√(nt)` and message size Õ(n) that the paper mentions
//!   (full version) to motivate why `t = Ω(α²/n)` parties are necessary;
//! * [`sweep`] — the calibrate-then-evaluate game harness shared by the
//!   experiments and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budgeted;
pub mod disjointness;
pub mod party;
pub mod reduction;
pub mod simple_protocol;
pub mod sweep;

pub use budgeted::BucketedKkSolver;
pub use disjointness::{DisjCase, DisjointnessInstance};
pub use party::{MessageStats, PartyHandoff};
pub use reduction::{ReductionOutcome, ReductionSolver};
pub use sweep::{play_once, play_series, GameConfig, GameStats};
