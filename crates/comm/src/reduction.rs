//! The Theorem 2 reduction, runnable.
//!
//! Given a Lemma 1 family `T_1..T_m` (with partitions into `t` parts) and
//! a t-party Set Disjointness instance `(S_1, ..., S_t)` over `[m]`, the
//! parties simulate a streaming Set Cover algorithm `A`:
//!
//! * party `p` feeds the edges of every partial set `T_b^p` with
//!   `b ∈ S_p` into `A`, then forwards `A`'s memory state. Crucially, all
//!   parts of `T_b` carry the *same set id* `b`: in the intersecting case
//!   the common index `b*` is fed by every party, so the instance contains
//!   the full set `T_{b*}` of size `√(nt)` — assembled across parties,
//!   which is exactly what edge arrival permits and set arrival does not;
//!   in the disjoint case every set of the instance has size `√(n/t)`;
//! * the last party **forks** the execution `m` times; parallel run `j`
//!   additionally feeds the complement set `[n] \ T_j`;
//! * if `(S_1, ..., S_t)` uniquely intersect at `b*`, run `j = b*`
//!   contains the full `T_{b*}` (all `t` parts present) plus its
//!   complement — a cover of size 2 exists and a good algorithm reports a
//!   small cover;
//! * if they are pairwise disjoint, every run `j` must cover the `≈ s`
//!   elements of `T_j` using at most one part `T_j^k` plus sets that
//!   intersect `T_j` in only `O(log n)` elements (Lemma 1), so every
//!   estimate is at least `OPT₀ ≈ (s − s/t)/O(log n)`.
//!
//! The protocol answers **uniquely intersecting** iff some run's estimate
//! falls below a decision threshold. Asymptotically the threshold is the
//! disjoint-case floor `OPT₀`; at laptop scale the `O(log n)` slack in
//! Lemma 1 makes the analytic floor loose, so the runnable game exposes
//! [`ReductionOutcome::decide`] with an explicit threshold, and the
//! experiment (E-F4) reports the measured estimates of both promise cases
//! and the gap between them — the quantity the lower bound is really
//! about.
//!
//! ## Cover-size estimates on partial instances
//!
//! A parallel run's stream does not necessarily contain every element of
//! `[n]` (in the disjoint case, elements of `T_j` in absent partial sets
//! never appear). Moreover every run shares the same `[n] \ T_j`-side
//! behaviour (the complement set plus its pre-inclusion stragglers), which
//! is identical across the two promise cases and would drown the signal.
//! The estimate therefore isolates exactly the quantity the proof argues
//! about — *how many sets the algorithm's output uses to cover `T_j`*:
//! `1 (complement) + |{witness(u) or R(u) : u ∈ T_j, u appeared}|`.
//! In the intersecting case's common run this collapses to ≈ 2 (the full
//! `T_{b*}` is one input set and gets picked); in the disjoint case it is
//! ≥ (seen elements of `T_j`)/O(log n) by Lemma 1.

use std::collections::HashSet;

use setcover_core::{Edge, ElemId, SetId, StreamingSetCover};
use setcover_gen::lowerbound::LbFamily;

use crate::disjointness::{DisjCase, DisjointnessInstance};
use crate::party::MessageStats;

/// The solver-side access the reduction needs beyond [`StreamingSetCover`]:
/// forking (Clone), the current solution, witnesses, and the first-set map.
pub trait ReductionSolver: StreamingSetCover + Clone {
    /// Sets currently in the solution.
    fn solution_members(&self) -> &[SetId];
    /// Whether `u` has a covering witness.
    fn has_witness(&self, u: ElemId) -> bool;
    /// The covering witness of `u`, if certified.
    fn witness_of(&self, u: ElemId) -> Option<SetId>;
    /// The first-set map `R(u)`.
    fn first_set(&self, u: ElemId) -> Option<SetId>;
    /// Live state words (the forwarded message size). Defaults to the
    /// space report's peak, an upper bound on every message.
    fn state_words(&self) -> usize {
        self.space().peak_words
    }
}

impl ReductionSolver for setcover_algos::KkSolver {
    fn solution_members(&self) -> &[SetId] {
        self.solution_members()
    }
    fn has_witness(&self, u: ElemId) -> bool {
        self.has_witness(u)
    }
    fn witness_of(&self, u: ElemId) -> Option<SetId> {
        self.witness_of(u)
    }
    fn first_set(&self, u: ElemId) -> Option<SetId> {
        self.first_set(u)
    }
}

impl ReductionSolver for setcover_algos::AdversarialSolver {
    fn solution_members(&self) -> &[SetId] {
        self.solution_members()
    }
    fn has_witness(&self, u: ElemId) -> bool {
        self.has_witness(u)
    }
    fn witness_of(&self, u: ElemId) -> Option<SetId> {
        self.witness_of(u)
    }
    fn first_set(&self, u: ElemId) -> Option<SetId> {
        self.first_set(u)
    }
}

/// Set-id layout of the reduction's Set Cover instance: every part of
/// `T_b` carries set id `b` (parts assemble into one set across parties);
/// the complement set is id `m`.
pub fn family_set_id(b: usize) -> SetId {
    SetId(b as u32)
}

/// The complement set's id.
pub fn complement_set_id(m: usize) -> SetId {
    SetId(m as u32)
}

/// Total number of set ids in the reduction instance (`m + 1`).
pub fn reduction_num_sets(m: usize) -> usize {
    m + 1
}

/// Result of one reduction execution.
#[derive(Debug, Clone)]
pub struct ReductionOutcome {
    /// Per-run estimate: number of distinct sets the algorithm's output
    /// uses to cover the seen part of `T_j`, plus one for the complement.
    pub estimates: Vec<usize>,
    /// The run with the smallest estimate.
    pub best_run: usize,
    /// Its estimate.
    pub best_estimate: usize,
    /// The disjoint-case floor `OPT₀` computed from the family and the
    /// measured maximum part intersection (the asymptotic threshold).
    pub opt0_floor: usize,
    /// Message (state) sizes at each party boundary.
    pub messages: MessageStats,
    /// Number of elements that appeared in each run's stream.
    pub seen_elements: Vec<usize>,
}

impl ReductionOutcome {
    /// The protocol's answer under a decision threshold: intersecting iff
    /// some run's estimate is `<= threshold`.
    pub fn decide(&self, threshold: usize) -> DisjCase {
        if self.best_estimate <= threshold {
            DisjCase::UniquelyIntersecting
        } else {
            DisjCase::PairwiseDisjoint
        }
    }

    /// Whether [`decide`](Self::decide) answers correctly for `truth`.
    pub fn correct(&self, threshold: usize, truth: DisjCase) -> bool {
        self.decide(threshold) == truth
    }
}

/// Execute the reduction with solver instances produced by `factory`
/// (called once with the reduction instance's `(num_sets, n)`).
///
/// `maxint` is the Lemma 1 intersection bound used for the `OPT₀` floor;
/// pass the family's measured value
/// ([`LbFamily::max_part_intersection_sampled`]) or an analytic `O(log n)`
/// estimate.
pub fn run_reduction<A, F>(
    family: &LbFamily,
    disj: &DisjointnessInstance,
    maxint: usize,
    factory: F,
) -> ReductionOutcome
where
    A: ReductionSolver,
    F: FnOnce(usize, usize) -> A,
{
    let cfg = family.config();
    let (m, t, n) = (cfg.m, cfg.t, cfg.n);
    assert_eq!(disj.m, m, "disjointness universe must index the family");
    assert_eq!(disj.t(), t, "party counts must match");

    let _ = t;
    let num_sets = reduction_num_sets(m);
    let mut solver = factory(num_sets, n);
    let mut seen = vec![false; n];
    let mut messages = MessageStats::default();

    // Parties 1..t feed their partial sets in order; part T_b^p carries
    // set id b, so the parts of one set assemble across parties.
    for (p, set_of_party) in disj.sets.iter().enumerate() {
        for &b in set_of_party {
            let sid = family_set_id(b as usize);
            for &u in family.part(b as usize, p) {
                seen[u as usize] = true;
                solver.process_edge(Edge {
                    set: sid,
                    elem: ElemId(u),
                });
            }
        }
        messages.record(p + 1, solver.state_words());
    }

    // Last party forks m parallel runs; run j adds the complement of T_j.
    let comp_id = complement_set_id(m);
    let mut estimates = Vec::with_capacity(m);
    let mut seen_elements = Vec::with_capacity(m);
    for j in 0..m {
        let mut fork = solver.clone();
        let comp = family.complement(j);
        let mut seen_j = seen.clone();
        for &u in &comp {
            seen_j[u as usize] = true;
            fork.process_edge(Edge {
                set: comp_id,
                elem: ElemId(u),
            });
        }
        // Estimate: distinct sets covering the seen elements of T_j
        // (witness if the algorithm certified u, else the patch R(u)),
        // plus 1 for the complement covering [n] \ T_j. An element the
        // algorithm's budgeted state retains nothing about cannot be
        // merged with any other element's covering set, so it costs one
        // cover slot of its own.
        let mut used: HashSet<SetId> = HashSet::new();
        let mut unknown = 0usize;
        for &u in family.set(j) {
            if seen[u as usize] {
                let uid = ElemId(u);
                match fork.witness_of(uid).or_else(|| fork.first_set(uid)) {
                    Some(covering) => {
                        used.insert(covering);
                    }
                    None => unknown += 1,
                }
            }
        }
        estimates.push(1 + used.len() + unknown);
        seen_elements.push(seen_j.iter().filter(|&&b| b).count());
    }

    let (best_run, &best_estimate) = estimates
        .iter()
        .enumerate()
        .min_by_key(|(_, &e)| e)
        .expect("m >= 1 runs");
    let opt0_floor = family.disjoint_case_opt_lower(maxint.max(1));

    ReductionOutcome {
        estimates,
        best_run,
        best_estimate,
        opt0_floor,
        messages,
        seen_elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_algos::KkSolver;
    use setcover_gen::lowerbound::{LbFamily, LbFamilyConfig};

    fn setup(case: DisjCase, seed: u64) -> (LbFamily, DisjointnessInstance, usize) {
        // n = 4096, t = 8: parts of size 22, sets of size 176. The scale
        // is chosen so the Lemma 1 O(log n) slack does not eat the
        // disjoint/intersecting gap and the overlap density m·part/n is
        // high enough that most of each T_j appears (see the lowerbound
        // experiment binary for the full sweep).
        let family = LbFamily::generate(
            LbFamilyConfig {
                n: 4096,
                m: 101,
                t: 8,
            },
            seed,
        );
        let disj = DisjointnessInstance::generate(101, 8, case, seed);
        let maxint = family.max_part_intersection_sampled(400, seed).max(1);
        (family, disj, maxint)
    }

    #[test]
    fn id_layout_is_compact() {
        assert_eq!(family_set_id(7), SetId(7));
        assert_eq!(complement_set_id(10), SetId(10));
        assert_eq!(reduction_num_sets(10), 11);
    }

    #[test]
    fn promise_cases_are_separated_by_a_gap() {
        // The heart of Theorem 2, empirically: the same protocol run on
        // the two promise cases produces clearly separated best
        // estimates — the intersecting case's common run contains the
        // full T_{b*} (assembled across parties under one id) plus its
        // complement, so a capable algorithm reports a small cover there;
        // in the disjoint case every run needs many small-intersection
        // sets.
        let (family, disj_i, maxint) = setup(DisjCase::UniquelyIntersecting, 5);
        let out_i = run_reduction(&family, &disj_i, maxint, |m, n| KkSolver::new(m, n, 9));
        let (_, disj_d, _) = setup(DisjCase::PairwiseDisjoint, 5);
        let out_d = run_reduction(&family, &disj_d, maxint, |m, n| KkSolver::new(m, n, 9));

        let common = disj_i.intersection.unwrap() as usize;
        assert_eq!(
            out_i.best_run, common,
            "smallest estimate must sit at the common run"
        );
        assert!(
            2 * out_i.best_estimate <= out_d.best_estimate,
            "gap too small: intersecting {} vs disjoint {}",
            out_i.best_estimate,
            out_d.best_estimate
        );

        // A threshold at the midpoint decides both cases correctly.
        let threshold = (out_i.best_estimate + out_d.best_estimate) / 2;
        assert!(out_i.correct(threshold, DisjCase::UniquelyIntersecting));
        assert!(out_d.correct(threshold, DisjCase::PairwiseDisjoint));
        // And the analytic floor is reported for reference.
        assert!(out_i.opt0_floor >= 1);
    }

    #[test]
    fn messages_are_recorded_per_party() {
        let (family, disj, maxint) = setup(DisjCase::PairwiseDisjoint, 6);
        let out = run_reduction(&family, &disj, maxint, |m, n| KkSolver::new(m, n, 1));
        assert_eq!(out.messages.len(), disj.t());
        // KK's state is Θ(num_sets) counters.
        assert!(out.messages.max_message_words() >= reduction_num_sets(101));
    }

    #[test]
    fn estimates_exist_for_every_run() {
        let (family, disj, maxint) = setup(DisjCase::UniquelyIntersecting, 7);
        let out = run_reduction(&family, &disj, maxint, |m, n| KkSolver::new(m, n, 2));
        assert_eq!(out.estimates.len(), 101);
        assert_eq!(out.seen_elements.len(), 101);
        // Every run sees at least the complement (n - s elements).
        for &s in &out.seen_elements {
            assert!(s >= 4096 - 176);
        }
        assert_eq!(out.best_estimate, out.estimates[out.best_run]);
    }
}
