//! Offline vendored stand-in for the `criterion` bench harness.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be fetched. The `benches/` targets only use a small slice of
//! its API — groups, `Throughput::Elements`, `BenchmarkId`, `iter` — and
//! this crate implements that slice over plain [`std::time::Instant`]
//! sampling: per benchmark it warms up briefly, takes `sample_size`
//! samples (each batched to outlast timer resolution), and prints
//! `median ns/iter` plus derived element throughput.
//!
//! No statistical outlier analysis, no HTML reports, no baselines — this
//! is a functional measurement harness, not a criterion replacement.
//! `SC_BENCH_QUICK=1` caps sampling for smoke runs in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark's summary, recorded in the in-process results
/// registry so bench binaries can post-process their own measurements
/// (e.g. emit machine-readable JSON or enforce regression gates).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (from `benchmark_group`).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Elements per iteration, when the group declared
    /// [`Throughput::Elements`].
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Median throughput in million elements per second, if the group
    /// declared an element count.
    pub fn melems_per_sec(&self) -> Option<f64> {
        // e elems per median_ns nanoseconds = e/median · 1e9 elems/s,
        // i.e. e/median · 1e3 Melems/s.
        self.elements
            .filter(|_| self.median_ns > 0.0)
            .map(|e| e as f64 / self.median_ns * 1e3)
    }
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drain every benchmark result recorded since the last call (process
/// global; benches run single-threaded so ordering is program order).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().expect("results registry poisoned"))
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. edges) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (the group name provides the context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts plain
/// strings as well as explicit ids.
pub trait IntoBenchmarkId {
    /// Convert to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The bench context; one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n## {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name and throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput (reported as M/s).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Time a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id, self.throughput);
        self
    }

    /// End the group (no-op beyond parity with the real API).
    pub fn finish(self) {}
}

/// Runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
}

fn quick_mode() -> bool {
    std::env::var_os("SC_BENCH_QUICK").is_some_and(|v| v != "0")
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        let sample_size = if quick_mode() { 2 } else { sample_size };
        Bencher {
            sample_size,
            samples_ns_per_iter: Vec::with_capacity(sample_size),
        }
    }

    /// Time `routine`, called repeatedly; its return value is consumed
    /// (and thus not optimized away).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + batch sizing: grow the batch until one batch takes
        // ≥ ~2ms (or a hard cap), so timer resolution is irrelevant.
        let mut batch = 1usize;
        let target = if quick_mode() {
            Duration::from_micros(200)
        } else {
            Duration::from_millis(2)
        };
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let el = t.elapsed();
            if el >= target || batch >= 1 << 20 {
                break;
            }
            batch = if el.is_zero() {
                batch * 16
            } else {
                // Aim directly for the target with 2x headroom.
                let scale = target.as_secs_f64() / el.as_secs_f64();
                (batch as f64 * scale.clamp(1.5, 16.0)).ceil() as usize
            };
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns_per_iter.push(ns);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns_per_iter.is_empty() {
            eprintln!("{group}/{id}: no samples (routine never called iter)");
            return;
        }
        let mut s = self.samples_ns_per_iter.clone();
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        let min = s[0];
        let max = s[s.len() - 1];
        // x per median ns = x/median · 1e9 per second = x/median · 1e3
        // mega-units per second.
        let thr = match throughput {
            Some(Throughput::Elements(e)) => {
                format!("  ({:.2} Melem/s)", e as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(b)) => {
                format!("  ({:.2} MB/s)", b as f64 / median * 1e3)
            }
            None => String::new(),
        };
        eprintln!(
            "{group}/{id}: median {} [min {}, max {}] x{}{}",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            s.len(),
            thr
        );
        RESULTS
            .lock()
            .expect("results registry poisoned")
            .push(BenchResult {
                group: group.to_string(),
                id: id.to_string(),
                median_ns: median,
                min_ns: min,
                max_ns: max,
                samples: s.len(),
                elements: match throughput {
                    Some(Throughput::Elements(e)) => Some(e),
                    _ => None,
                },
            });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Define a bench group function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        std::env::set_var("SC_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-selftest");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| {
                calls += 1;
                (0..64u64).sum::<u64>()
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_function("plain-str-id", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(calls > 0, "routine must actually run");
    }

    #[test]
    fn results_registry_records_medians_and_throughput() {
        std::env::set_var("SC_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("registry-selftest");
        g.sample_size(2);
        g.throughput(Throughput::Elements(1_000));
        g.bench_function("spin", |b| b.iter(|| (0..1_000u64).sum::<u64>()));
        g.finish();
        // Other tests share the process-global registry; filter to ours.
        let ours: Vec<BenchResult> = take_results()
            .into_iter()
            .filter(|r| r.group == "registry-selftest")
            .collect();
        assert_eq!(ours.len(), 1);
        let r = &ours[0];
        assert_eq!(r.id, "spin");
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert_eq!(r.elements, Some(1_000));
        assert!(r.melems_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
