//! Offline vendored stand-in for the `criterion` bench harness.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be fetched. The `benches/` targets only use a small slice of
//! its API — groups, `Throughput::Elements`, `BenchmarkId`, `iter` — and
//! this crate implements that slice over plain [`std::time::Instant`]
//! sampling: per benchmark it warms up briefly, takes `sample_size`
//! samples (each batched to outlast timer resolution), and prints
//! `median ns/iter` plus derived element throughput.
//!
//! No statistical outlier analysis, no HTML reports, no baselines — this
//! is a functional measurement harness, not a criterion replacement.
//! `SC_BENCH_QUICK=1` caps sampling for smoke runs in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. edges) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (the group name provides the context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts plain
/// strings as well as explicit ids.
pub trait IntoBenchmarkId {
    /// Convert to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The bench context; one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n## {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name and throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput (reported as M/s).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Time a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id, self.throughput);
        self
    }

    /// End the group (no-op beyond parity with the real API).
    pub fn finish(self) {}
}

/// Runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
}

fn quick_mode() -> bool {
    std::env::var_os("SC_BENCH_QUICK").is_some_and(|v| v != "0")
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        let sample_size = if quick_mode() { 2 } else { sample_size };
        Bencher {
            sample_size,
            samples_ns_per_iter: Vec::with_capacity(sample_size),
        }
    }

    /// Time `routine`, called repeatedly; its return value is consumed
    /// (and thus not optimized away).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + batch sizing: grow the batch until one batch takes
        // ≥ ~2ms (or a hard cap), so timer resolution is irrelevant.
        let mut batch = 1usize;
        let target = if quick_mode() {
            Duration::from_micros(200)
        } else {
            Duration::from_millis(2)
        };
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let el = t.elapsed();
            if el >= target || batch >= 1 << 20 {
                break;
            }
            batch = if el.is_zero() {
                batch * 16
            } else {
                // Aim directly for the target with 2x headroom.
                let scale = target.as_secs_f64() / el.as_secs_f64();
                (batch as f64 * scale.clamp(1.5, 16.0)).ceil() as usize
            };
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns_per_iter.push(ns);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns_per_iter.is_empty() {
            eprintln!("{group}/{id}: no samples (routine never called iter)");
            return;
        }
        let mut s = self.samples_ns_per_iter.clone();
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        let min = s[0];
        let max = s[s.len() - 1];
        let thr = match throughput {
            Some(Throughput::Elements(e)) => {
                format!("  ({:.2} Melem/s)", e as f64 / median * 1e3 / 1e6)
            }
            Some(Throughput::Bytes(b)) => {
                format!("  ({:.2} MB/s)", b as f64 / median * 1e3 / 1e6)
            }
            None => String::new(),
        };
        eprintln!(
            "{group}/{id}: median {} [min {}, max {}] x{}{}",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            s.len(),
            thr
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Define a bench group function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        std::env::set_var("SC_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-selftest");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| {
                calls += 1;
                (0..64u64).sum::<u64>()
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_function("plain-str-id", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(calls > 0, "routine must actually run");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
