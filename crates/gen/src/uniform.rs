//! Erdős–Rényi-style uniform random bipartite instances.
//!
//! Every set draws a size from a configured range and fills it with
//! uniformly random elements. Elements left uncovered after all sets are
//! drawn are patched into random sets so the instance stays feasible (§2
//! assumes feasibility). OPT is unknown — the harness uses the greedy cover
//! as the reference — so these workloads exercise robustness and
//! throughput rather than tight ratio claims.

use rand::RngExt;

use setcover_core::rng::{derive_seed, seeded_rng};
use setcover_core::{InstanceBuilder, SetId};

use crate::{OptHint, Workload};

/// Configuration for [`uniform`].
#[derive(Debug, Clone, Copy)]
pub struct UniformConfig {
    /// Universe size `n`.
    pub n: usize,
    /// Number of sets `m`.
    pub m: usize,
    /// Inclusive set size range.
    pub set_size: (usize, usize),
}

impl UniformConfig {
    /// Sets of a fixed size.
    pub fn fixed(n: usize, m: usize, size: usize) -> Self {
        UniformConfig {
            n,
            m,
            set_size: (size, size),
        }
    }

    /// Sets with sizes uniform in `[lo, hi]`.
    pub fn ranged(n: usize, m: usize, lo: usize, hi: usize) -> Self {
        assert!(1 <= lo && lo <= hi && hi <= n);
        UniformConfig {
            n,
            m,
            set_size: (lo, hi),
        }
    }
}

/// Generate a uniform random instance. Deterministic in `(config, seed)`.
pub fn uniform(config: &UniformConfig, seed: u64) -> Workload {
    let UniformConfig {
        n,
        m,
        set_size: (lo, hi),
    } = *config;
    assert!(m >= 1 && n >= 1 && lo >= 1 && hi >= lo && hi <= n);
    let mut rng = seeded_rng(derive_seed(seed, 0x0055_4e49_464f_524d)); // "UNIFORM"

    let mut builder = InstanceBuilder::new(m, n);
    let mut covered = vec![false; n];
    for s in 0..m as u32 {
        let size = if lo == hi {
            lo
        } else {
            rng.random_range(lo..=hi)
        };
        for _ in 0..size {
            let u = rng.random_range(0..n as u32);
            covered[u as usize] = true;
            builder.add_edge(SetId(s), u.into());
        }
    }
    // Patch uncovered elements into random sets for feasibility.
    for (u, c) in covered.iter().enumerate() {
        if !c {
            let s = rng.random_range(0..m as u32);
            builder.add_edge(SetId(s), (u as u32).into());
        }
    }

    Workload {
        label: format!("uniform(n={n},m={m},size={lo}..={hi})"),
        instance: builder
            .build()
            .expect("patched uniform instance is feasible"),
        opt: OptHint::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::ElemId;

    #[test]
    fn generates_feasible_instance() {
        let w = uniform(&UniformConfig::ranged(200, 50, 2, 20), 1);
        let inst = &w.instance;
        assert_eq!(inst.n(), 200);
        assert_eq!(inst.m(), 50);
        for u in 0..inst.n() as u32 {
            assert!(inst.elem_degree(ElemId(u)) >= 1);
        }
    }

    #[test]
    fn fixed_sizes_respected_up_to_dedup_and_patching() {
        let w = uniform(&UniformConfig::fixed(1000, 30, 10), 2);
        let patched: usize = (0..30u32).map(|s| w.instance.set_size(SetId(s))).sum();
        for s in 0..30u32 {
            let sz = w.instance.set_size(SetId(s));
            // Duplicates shrink; feasibility patching grows each set by a
            // Binomial(~n·e^{-0.3}, 1/m) share — bound it with a generous
            // Chernoff margin rather than the bare mean.
            let mean_patch = 1000.0 * (-0.3f64).exp() / 30.0;
            let bound = 10.0 + setcover_core::math::chernoff_upper(mean_patch, 1e-9);
            assert!(
                sz >= 1 && (sz as f64) <= bound,
                "set {s} size {sz} above {bound}"
            );
        }
        // Totals are conserved: base draws + one edge per patched element.
        assert!(patched <= 30 * 10 + 1000);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = UniformConfig::ranged(100, 40, 1, 10);
        assert_eq!(
            uniform(&cfg, 5).instance.edge_vec(),
            uniform(&cfg, 5).instance.edge_vec()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = UniformConfig::ranged(100, 40, 1, 10);
        assert_ne!(
            uniform(&cfg, 5).instance.edge_vec(),
            uniform(&cfg, 6).instance.edge_vec()
        );
    }

    #[test]
    fn opt_is_unknown() {
        let w = uniform(&UniformConfig::fixed(10, 5, 2), 0);
        assert_eq!(w.opt, OptHint::Unknown);
        assert_eq!(w.opt_reference(), 1);
    }
}
