//! The Lemma 1 set family and Theorem 2 hard instances.
//!
//! Lemma 1 (paper §3): for `t ≤ n` and `m = poly(n)` there exists a family
//! `T_1, ..., T_m ⊆ [n]`, each of size `s = √(n·t)`, with partitions
//! `T_i = T_i^1 ∪̇ ... ∪̇ T_i^t` into parts of size `s/t = √(n/t)`, such
//! that every *part* of one set intersects every *other set* in only
//! `O(log n)` elements. The proof is probabilistic — random sets work with
//! non-zero probability — and that is exactly how we construct the family;
//! [`LbFamily::max_part_intersection_sampled`] empirically validates the
//! property (experiment E-F4).
//!
//! Theorem 2 builds a hard Set Cover distribution from this family plus a
//! t-party Set Disjointness instance: party `p` contributes the partial
//! sets `T_b^p` for every `b` in its disjointness set `S_p`, and the last
//! party forks `m` parallel runs, adding the complement `[n] \ T_j` in run
//! `j`. The reduction itself (parties, forking, the OPT₀ test) lives in
//! `setcover-comm`; this module provides the combinatorial objects.
//!
//! For integrality we round the part size to `⌊√(n/t)⌋ (≥ 1)` and the set
//! size to `part · t`; the asymptotics are unaffected.

use rand::RngExt;

use setcover_core::math::isqrt;
use setcover_core::rng::{derive_seed, seeded_rng};

/// Configuration of a Lemma 1 family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbFamilyConfig {
    /// Universe size `n`.
    pub n: usize,
    /// Family size `m`.
    pub m: usize,
    /// Number of parties / parts per set `t` (must satisfy `1 ≤ t ≤ n`).
    pub t: usize,
}

impl LbFamilyConfig {
    /// Part size `⌊√(n/t)⌋`, at least 1.
    pub fn part_size(&self) -> usize {
        isqrt(self.n / self.t).max(1)
    }

    /// Set size `part_size · t ≈ √(n·t)`.
    pub fn set_size(&self) -> usize {
        self.part_size() * self.t
    }
}

/// A concrete Lemma 1 family: `m` sets, each stored as `t` consecutive
/// parts of `part_size` elements.
#[derive(Debug, Clone)]
pub struct LbFamily {
    config: LbFamilyConfig,
    /// `elems[i]` holds set `T_i` as `t` consecutive parts.
    elems: Vec<Vec<u32>>,
}

impl LbFamily {
    /// Sample a random family per Lemma 1's probabilistic construction.
    /// Deterministic in `(config, seed)`.
    pub fn generate(config: LbFamilyConfig, seed: u64) -> Self {
        assert!(config.t >= 1 && config.t <= config.n, "need 1 <= t <= n");
        assert!(config.set_size() <= config.n, "set size exceeds universe");
        let mut rng = seeded_rng(derive_seed(seed, 0x004c_4246_414d)); // "LBFAM"
        let s = config.set_size();
        let mut elems = Vec::with_capacity(config.m);
        let mut mark = vec![false; config.n];
        for _ in 0..config.m {
            // Rejection-sample s distinct elements (s = √(nt) ≪ n).
            let mut set = Vec::with_capacity(s);
            while set.len() < s {
                let u = rng.random_range(0..config.n as u32);
                if !mark[u as usize] {
                    mark[u as usize] = true;
                    set.push(u);
                }
            }
            for &u in &set {
                mark[u as usize] = false;
            }
            // The sample is already uniformly ordered, so consecutive
            // chunks form a uniformly random partition into parts.
            elems.push(set);
        }
        LbFamily { config, elems }
    }

    /// The configuration used to build this family.
    pub fn config(&self) -> LbFamilyConfig {
        self.config
    }

    /// The full set `T_i` (all `t` parts, unsorted).
    pub fn set(&self, i: usize) -> &[u32] {
        &self.elems[i]
    }

    /// The part `T_i^r` (0-based `r < t`).
    pub fn part(&self, i: usize, r: usize) -> &[u32] {
        let p = self.config.part_size();
        &self.elems[i][r * p..(r + 1) * p]
    }

    /// The complement `[n] \ T_i`, sorted ascending — the set the last
    /// party injects in parallel run `i`.
    pub fn complement(&self, i: usize) -> Vec<u32> {
        let mut in_set = vec![false; self.config.n];
        for &u in self.set(i) {
            in_set[u as usize] = true;
        }
        (0..self.config.n as u32)
            .filter(|&u| !in_set[u as usize])
            .collect()
    }

    /// `|T_i^r ∩ T_j|` for one triple (the Lemma 1 quantity).
    pub fn part_intersection(&self, i: usize, r: usize, j: usize) -> usize {
        let mut in_j = vec![false; self.config.n];
        for &u in self.set(j) {
            in_j[u as usize] = true;
        }
        self.part(i, r)
            .iter()
            .filter(|&&u| in_j[u as usize])
            .count()
    }

    /// The maximum `|T_i^r ∩ T_j|` over `pairs` random triples `(i, r, j)`
    /// with `i ≠ j`. Lemma 1 predicts `O(log n)`; the experiment harness
    /// compares the returned value against `c·log n`.
    pub fn max_part_intersection_sampled(&self, pairs: usize, seed: u64) -> usize {
        if self.config.m < 2 {
            return 0;
        }
        let mut rng = seeded_rng(derive_seed(seed, 0x004c_4243_484b)); // "LBCHK"
        let mut in_j = vec![0u32; self.config.n]; // generation-stamped marks
        let mut generation = 0u32;
        let mut max = 0usize;
        for _ in 0..pairs {
            let i = rng.random_range(0..self.config.m);
            let mut j = rng.random_range(0..self.config.m);
            while j == i {
                j = rng.random_range(0..self.config.m);
            }
            let r = rng.random_range(0..self.config.t);
            generation += 1;
            for &u in self.set(j) {
                in_j[u as usize] = generation;
            }
            let inter = self
                .part(i, r)
                .iter()
                .filter(|&&u| in_j[u as usize] == generation)
                .count();
            max = max.max(inter);
        }
        max
    }

    /// Exhaustive maximum `|T_i^r ∩ T_j|` over all triples — `O(m²·t·part)`
    /// work, for tests on small families only.
    pub fn max_part_intersection_exhaustive(&self) -> usize {
        let mut max = 0;
        for i in 0..self.config.m {
            for j in 0..self.config.m {
                if i == j {
                    continue;
                }
                for r in 0..self.config.t {
                    max = max.max(self.part_intersection(i, r, j));
                }
            }
        }
        max
    }

    /// Lower bound `OPT₀` on the optimum in the *pairwise disjoint* case of
    /// run `j` (paper, Theorem 2 proof): the `s` elements of `T_j` must be
    /// covered by at most one part `T_j^k` (covering `s/t`) plus sets
    /// intersecting `T_j` in at most `maxint` elements each.
    pub fn disjoint_case_opt_lower(&self, maxint: usize) -> usize {
        let s = self.config.set_size();
        let rest = s - self.config.part_size();
        rest.div_ceil(maxint.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LbFamily {
        LbFamily::generate(
            LbFamilyConfig {
                n: 400,
                m: 30,
                t: 4,
            },
            11,
        )
    }

    #[test]
    fn sizes_match_config() {
        let f = small();
        let cfg = f.config();
        assert_eq!(cfg.part_size(), 10); // sqrt(400/4) = 10
        assert_eq!(cfg.set_size(), 40); // 10 * 4 = sqrt(400*4)
        for i in 0..cfg.m {
            assert_eq!(f.set(i).len(), 40);
            for r in 0..cfg.t {
                assert_eq!(f.part(i, r).len(), 10);
            }
        }
    }

    #[test]
    fn parts_partition_each_set() {
        let f = small();
        for i in 0..f.config().m {
            let mut all: Vec<u32> = f.set(i).to_vec();
            all.sort_unstable();
            let before = all.len();
            all.dedup();
            assert_eq!(all.len(), before, "set {i} has duplicate elements");
            let mut from_parts: Vec<u32> = (0..f.config().t)
                .flat_map(|r| f.part(i, r).iter().copied())
                .collect();
            from_parts.sort_unstable();
            assert_eq!(all, from_parts);
        }
    }

    #[test]
    fn complement_partitions_universe() {
        let f = small();
        let comp = f.complement(3);
        assert_eq!(comp.len(), 400 - 40);
        let mut union: Vec<u32> = comp;
        union.extend_from_slice(f.set(3));
        union.sort_unstable();
        let expect: Vec<u32> = (0..400).collect();
        assert_eq!(union, expect);
    }

    #[test]
    fn pairwise_part_intersections_are_logarithmic() {
        // Lemma 1: E|T_i^r ∩ T_j| = s²/(n·t) = 1; O(log n) w.h.p.
        let f = small();
        let max = f.max_part_intersection_exhaustive();
        // log2(400) ≈ 8.6; allow a generous constant.
        assert!(max <= 26, "max pairwise part intersection {max} too large");
    }

    #[test]
    fn sampled_check_is_bounded_by_exhaustive() {
        let f = small();
        let samp = f.max_part_intersection_sampled(500, 3);
        let exact = f.max_part_intersection_exhaustive();
        assert!(samp <= exact);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = LbFamilyConfig {
            n: 100,
            m: 10,
            t: 4,
        };
        let a = LbFamily::generate(cfg, 5);
        let b = LbFamily::generate(cfg, 5);
        for i in 0..10 {
            assert_eq!(a.set(i), b.set(i));
        }
    }

    #[test]
    fn opt_lower_bound_formula() {
        let f = small();
        // s = 40, part = 10, maxint = 5 -> ceil(30/5) = 6
        assert_eq!(f.disjoint_case_opt_lower(5), 6);
        assert_eq!(f.disjoint_case_opt_lower(0), 30); // clamped divisor
    }

    #[test]
    fn part_size_never_zero() {
        let cfg = LbFamilyConfig { n: 4, m: 2, t: 4 };
        assert_eq!(cfg.part_size(), 1);
        let f = LbFamily::generate(cfg, 1);
        assert_eq!(f.set(0).len(), 4);
    }
}
