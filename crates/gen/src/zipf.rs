//! Skewed (Zipf) degree workloads.
//!
//! Real coverage data — URLs per crawl host, topics per blog — has heavy
//! skew: a few elements are covered by very many sets and a long tail is
//! rare. These are exactly the inputs where Algorithm 1's epoch-0
//! high-degree detection (degree ≥ 1.1·m/√n, paper line 7) triggers, so
//! the Zipf workload exercises that path deliberately.
//!
//! Element `u` (after a random relabelling) receives weight
//! `(rank + 1)^(-theta)`; each set of size `k` draws `k` elements from the
//! weight distribution without replacement (rejection on duplicates).

use rand::RngExt;

use setcover_core::rng::{derive_seed, seeded_rng};
use setcover_core::{InstanceBuilder, SetId};

use crate::{OptHint, Workload};

/// Configuration for [`zipf`].
#[derive(Debug, Clone, Copy)]
pub struct ZipfConfig {
    /// Universe size `n`.
    pub n: usize,
    /// Number of sets `m`.
    pub m: usize,
    /// Set size (each set draws this many distinct elements, or as many as
    /// it can).
    pub set_size: usize,
    /// Skew exponent `theta >= 0`; 0 degenerates to uniform.
    pub theta: f64,
}

/// Generate a Zipf-degree instance. Deterministic in `(config, seed)`.
pub fn zipf(config: &ZipfConfig, seed: u64) -> Workload {
    let ZipfConfig {
        n,
        m,
        set_size,
        theta,
    } = *config;
    assert!(n >= 1 && m >= 1 && set_size >= 1 && set_size <= n && theta >= 0.0);
    let mut rng = seeded_rng(derive_seed(seed, 0x5a49_5046)); // "ZIPF"

    // Cumulative weights over ranks for inverse-CDF sampling.
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for r in 0..n {
        total += 1.0 / ((r + 1) as f64).powf(theta);
        cum.push(total);
    }

    // Random rank -> element relabelling so element ids carry no signal.
    let mut label: Vec<u32> = (0..n as u32).collect();
    rand::seq::SliceRandom::shuffle(&mut label[..], &mut rng);

    let mut builder = InstanceBuilder::new(m, n);
    let mut covered = vec![false; n];
    let mut scratch: Vec<u32> = Vec::with_capacity(set_size);
    for s in 0..m as u32 {
        scratch.clear();
        let mut attempts = 0usize;
        while scratch.len() < set_size && attempts < set_size * 40 {
            attempts += 1;
            let x = rng.random::<f64>() * total;
            let rank = cum.partition_point(|&c| c < x).min(n - 1);
            let u = label[rank];
            if !scratch.contains(&u) {
                scratch.push(u);
            }
        }
        for &u in &scratch {
            covered[u as usize] = true;
            builder.add_edge(SetId(s), u.into());
        }
    }
    // Feasibility patch for tail elements never drawn.
    for (u, c) in covered.iter().enumerate() {
        if !c {
            let s = rng.random_range(0..m as u32);
            builder.add_edge(SetId(s), (u as u32).into());
        }
    }

    Workload {
        label: format!("zipf(n={n},m={m},k={set_size},theta={theta})"),
        instance: builder.build().expect("patched zipf instance is feasible"),
        opt: OptHint::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::ElemId;

    #[test]
    fn generates_feasible_instance() {
        let w = zipf(
            &ZipfConfig {
                n: 300,
                m: 60,
                set_size: 8,
                theta: 1.1,
            },
            3,
        );
        for u in 0..w.instance.n() as u32 {
            assert!(w.instance.elem_degree(ElemId(u)) >= 1);
        }
    }

    #[test]
    fn skew_creates_high_degree_heads() {
        let w = zipf(
            &ZipfConfig {
                n: 500,
                m: 400,
                set_size: 10,
                theta: 1.3,
            },
            7,
        );
        let st = w.instance.stats();
        // With theta = 1.3 the head element's degree should far exceed the
        // mean degree.
        assert!(
            st.max_elem_degree as f64 > 4.0 * st.avg_elem_degree,
            "max {} vs avg {}",
            st.max_elem_degree,
            st.avg_elem_degree
        );
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let w = zipf(
            &ZipfConfig {
                n: 500,
                m: 400,
                set_size: 10,
                theta: 0.0,
            },
            7,
        );
        let st = w.instance.stats();
        assert!((st.max_elem_degree as f64) < 6.0 * st.avg_elem_degree);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ZipfConfig {
            n: 100,
            m: 20,
            set_size: 5,
            theta: 1.0,
        };
        assert_eq!(
            zipf(&cfg, 4).instance.edge_vec(),
            zipf(&cfg, 4).instance.edge_vec()
        );
        assert_ne!(
            zipf(&cfg, 4).instance.edge_vec(),
            zipf(&cfg, 5).instance.edge_vec()
        );
    }

    #[test]
    fn sets_have_requested_size() {
        let w = zipf(
            &ZipfConfig {
                n: 1000,
                m: 50,
                set_size: 12,
                theta: 0.8,
            },
            9,
        );
        let mut at_size = 0;
        for s in 0..50u32 {
            if w.instance.set_size(SetId(s)) >= 12 {
                at_size += 1;
            }
        }
        // The vast majority of sets reach their size (rejection rarely
        // exhausts attempts at this scale).
        assert!(at_size >= 45, "only {at_size}/50 sets reached size");
    }
}
