//! Instances with a planted optimum cover.
//!
//! The universe is partitioned into `opt` blocks; one *planted* set covers
//! each block exactly, so a cover of size `opt` exists. The remaining
//! `m − opt` sets are *decoys* with uniformly random elements. When every
//! decoy is no larger than the largest block, any cover needs at least
//! `n / ⌈n/opt⌉ ≈ opt` sets, and we cap decoy sizes so that the planted
//! value is the exact optimum (see [`PlantedConfig::exact`]).
//!
//! Planted instances are the workhorse of the approximation-ratio
//! experiments (E-T1, E-F1..F3 in DESIGN.md): the denominator of every
//! reported ratio is known by construction rather than estimated.

use rand::seq::SliceRandom;
use rand::RngExt;

use setcover_core::rng::{derive_seed, seeded_rng};
use setcover_core::{InstanceBuilder, SetId};

use crate::{OptHint, Workload};

/// Configuration for [`planted`].
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Universe size `n`.
    pub n: usize,
    /// Number of sets `m` (must be `>= opt`).
    pub opt: usize,
    /// Planted optimum: number of blocks / planted sets.
    pub m: usize,
    /// Decoy set size range `[lo, hi]`, inclusive. When `hi` is at most the
    /// block size `⌈n/opt⌉`, the planted cover is exactly optimal.
    pub decoy_size: (usize, usize),
    /// Shuffle set ids so planted sets are not a recognizable prefix.
    pub shuffle_ids: bool,
}

impl PlantedConfig {
    /// A configuration whose planted cover is provably the exact optimum:
    /// decoys are capped at the block size.
    pub fn exact(n: usize, m: usize, opt: usize) -> Self {
        assert!(opt >= 1 && opt <= n, "need 1 <= opt <= n");
        assert!(m >= opt, "need m >= opt");
        let block = n.div_ceil(opt);
        PlantedConfig {
            n,
            m,
            opt,
            decoy_size: (1.max(block / 4), block),
            shuffle_ids: true,
        }
    }

    /// Like [`exact`](Self::exact) but with a custom decoy size range;
    /// if `hi` exceeds the block size the optimum is only an upper bound.
    pub fn with_decoy_size(mut self, lo: usize, hi: usize) -> Self {
        assert!(1 <= lo && lo <= hi && hi <= self.n);
        self.decoy_size = (lo, hi);
        self
    }
}

/// A planted workload, exposing which sets form the planted optimum.
#[derive(Debug, Clone)]
pub struct PlantedInstance {
    /// The generated workload (instance + opt hint + label).
    pub workload: Workload,
    /// Ids of the planted (optimal) sets after id shuffling.
    pub planted_sets: Vec<SetId>,
}

/// Generate a planted instance. Deterministic in `(config, seed)`.
pub fn planted(config: &PlantedConfig, seed: u64) -> PlantedInstance {
    let PlantedConfig {
        n,
        m,
        opt,
        decoy_size: (dlo, dhi),
        shuffle_ids,
    } = *config;
    assert!(opt >= 1 && m >= opt && n >= opt);

    let mut rng = seeded_rng(derive_seed(seed, xp_lanted()));

    // Permute the universe so blocks are random element subsets.
    let mut elems: Vec<u32> = (0..n as u32).collect();
    elems.shuffle(&mut rng);

    // Assign set ids: a random injection of [m] if shuffling.
    let mut ids: Vec<u32> = (0..m as u32).collect();
    if shuffle_ids {
        ids.shuffle(&mut rng);
    }

    let block = n.div_ceil(opt);
    let mut builder = InstanceBuilder::new(m, n);
    let mut planted_sets = Vec::with_capacity(opt);
    for (b, chunk) in elems.chunks(block).enumerate() {
        let sid = ids[b];
        planted_sets.push(SetId(sid));
        builder.add_set_elems(sid, chunk.iter().copied());
    }

    // Decoys: uniform random elements, sizes uniform in [dlo, dhi].
    for &sid in ids.iter().take(m).skip(opt) {
        let size = if dlo == dhi {
            dlo
        } else {
            rng.random_range(dlo..=dhi)
        };
        for _ in 0..size {
            let u = rng.random_range(0..n as u32);
            builder.add_edge(SetId(sid), u.into());
        }
    }

    let instance = builder
        .build()
        .expect("planted construction is always feasible");
    let opt_hint = if dhi <= block {
        OptHint::Exact(opt)
    } else {
        OptHint::UpperBound(opt)
    };
    planted_sets.sort_unstable();
    PlantedInstance {
        workload: Workload {
            label: format!("planted(n={n},m={m},opt={opt})"),
            instance,
            opt: opt_hint,
        },
        planted_sets,
    }
}

// Salt for seed derivation; spelled as a function to keep the call site
// readable without a stray constant.
#[inline]
fn xp_lanted() -> u64 {
    0x0050_4c41_4e54_4544 // "PLANTED"
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::ElemId;

    #[test]
    fn planted_sets_cover_universe_disjointly() {
        let p = planted(&PlantedConfig::exact(100, 40, 10), 7);
        let inst = &p.workload.instance;
        assert_eq!(p.planted_sets.len(), 10);
        let mut covered = vec![0usize; inst.n()];
        for &s in &p.planted_sets {
            for &u in inst.set(s) {
                covered[u.index()] += 1;
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "planted blocks must partition U"
        );
    }

    #[test]
    fn exact_config_caps_decoys_at_block_size() {
        let cfg = PlantedConfig::exact(100, 200, 10);
        let p = planted(&cfg, 3);
        let inst = &p.workload.instance;
        let block = 10;
        for s in 0..inst.m() as u32 {
            let sid = SetId(s);
            if !p.planted_sets.contains(&sid) {
                assert!(inst.set_size(sid) <= block, "decoy exceeds block size");
            }
        }
        assert_eq!(p.workload.opt, OptHint::Exact(10));
    }

    #[test]
    fn opt_is_truly_optimal_for_exact_config() {
        // Lower bound argument: every set has size <= block, so any cover
        // needs >= n / block = opt sets.
        let p = planted(&PlantedConfig::exact(64, 128, 8), 11);
        let inst = &p.workload.instance;
        let max_size = (0..inst.m() as u32)
            .map(|s| inst.set_size(SetId(s)))
            .max()
            .unwrap();
        assert!(max_size <= 8);
        // n / max_size >= 8 = opt
        assert!(inst.n().div_ceil(max_size) >= 8);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = PlantedConfig::exact(50, 80, 5);
        let a = planted(&cfg, 9);
        let b = planted(&cfg, 9);
        assert_eq!(a.planted_sets, b.planted_sets);
        assert_eq!(
            a.workload.instance.num_edges(),
            b.workload.instance.num_edges()
        );
        let c = planted(&cfg, 10);
        // Different seed should (overwhelmingly) give different decoys.
        assert!(
            a.workload.instance.edge_vec() != c.workload.instance.edge_vec()
                || a.planted_sets != c.planted_sets
        );
    }

    #[test]
    fn shuffled_ids_spread_planted_sets() {
        let cfg = PlantedConfig::exact(256, 512, 16);
        let p = planted(&cfg, 42);
        // With overwhelming probability the planted ids are not 0..16.
        let prefix: Vec<SetId> = (0..16).map(SetId).collect();
        assert_ne!(p.planted_sets, prefix);
    }

    #[test]
    fn oversized_decoys_yield_upper_bound_hint() {
        let cfg = PlantedConfig::exact(100, 50, 10).with_decoy_size(1, 50);
        let p = planted(&cfg, 1);
        assert_eq!(p.workload.opt, OptHint::UpperBound(10));
    }

    #[test]
    fn every_element_has_positive_degree() {
        let p = planted(&PlantedConfig::exact(333, 777, 21), 5);
        let inst = &p.workload.instance;
        for u in 0..inst.n() as u32 {
            assert!(inst.elem_degree(ElemId(u)) >= 1);
        }
    }

    #[test]
    fn label_mentions_parameters() {
        let p = planted(&PlantedConfig::exact(10, 20, 2), 0);
        assert_eq!(p.workload.label, "planted(n=10,m=20,opt=2)");
        assert_eq!(p.workload.opt_reference(), 2);
    }
}
