//! Dominating Set instances (`m = n`).
//!
//! Streaming Dominating Set — the problem the KK-algorithm was designed
//! for [Khanna–Konrad, ITCS'22] — is the special case of edge-arrival Set
//! Cover where the sets are the *closed neighborhoods* `N[v] = {v} ∪ N(v)`
//! of a graph's vertices: set `v` covers element `u` iff `u = v` or
//! `{u, v}` is an edge. Each graph edge `{u, v}` yields the two stream
//! tuples `(N[u], v)` and `(N[v], u)`, and every vertex yields `(N[v], v)`.
//!
//! Two graph models are provided: Erdős–Rényi `G(n, p)` and a planted-hub
//! model where `opt` hubs dominate everything (so OPT is known).

use rand::seq::SliceRandom;
use rand::RngExt;

use setcover_core::rng::{derive_seed, seeded_rng};
use setcover_core::{InstanceBuilder, SetId};

use crate::{OptHint, Workload};

/// Build a Dominating Set instance from an explicit edge list on `n`
/// vertices. Self-loops are implied (every vertex dominates itself).
pub fn from_graph_edges(n: usize, edges: &[(u32, u32)]) -> Workload {
    let mut b = InstanceBuilder::new(n, n);
    for v in 0..n as u32 {
        b.add_edge(SetId(v), v.into());
    }
    for &(u, v) in edges {
        b.add_edge(SetId(u), v.into());
        b.add_edge(SetId(v), u.into());
    }
    Workload {
        label: format!("dominating(n={n},edges={})", edges.len()),
        instance: b.build().expect("self-loops guarantee feasibility"),
        opt: OptHint::Unknown,
    }
}

/// An Erdős–Rényi `G(n, p)` Dominating Set instance.
pub fn gnp(n: usize, p: f64, seed: u64) -> Workload {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = seeded_rng(derive_seed(seed, 0x0047_4e50)); // "GNP"
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if setcover_core::rng::coin(&mut rng, p) {
                edges.push((u, v));
            }
        }
    }
    let mut w = from_graph_edges(n, &edges);
    w.label = format!("dominating-gnp(n={n},p={p})");
    w
}

/// A planted-hub Dominating Set instance: `opt` hub vertices partition the
/// remaining vertices into their neighborhoods, plus `extra_edges` random
/// non-hub edges as noise. The hubs dominate everything, so OPT ≤ opt
/// (and OPT = opt when `extra_edges` keeps non-hub degrees below the hub
/// block size — the hint is reported as an upper bound regardless).
pub fn planted_hubs(n: usize, opt: usize, extra_edges: usize, seed: u64) -> Workload {
    assert!(opt >= 1 && opt <= n);
    let mut rng = seeded_rng(derive_seed(seed, 0x4855_4253)); // "HUBS"
    let mut vertices: Vec<u32> = (0..n as u32).collect();
    vertices.shuffle(&mut rng);
    let hubs = &vertices[..opt];
    let rest = &vertices[opt..];

    let mut edges = Vec::new();
    // Assign each non-hub to a random hub.
    for &v in rest {
        let h = hubs[rng.random_range(0..opt)];
        edges.push((h, v));
    }
    // Noise edges between random vertex pairs.
    for _ in 0..extra_edges {
        let a = rng.random_range(0..n as u32);
        let mut b = rng.random_range(0..n as u32);
        while b == a {
            b = rng.random_range(0..n as u32);
        }
        edges.push((a.min(b), a.max(b)));
    }

    let mut w = from_graph_edges(n, &edges);
    w.label = format!("dominating-hubs(n={n},opt={opt})");
    w.opt = OptHint::UpperBound(opt);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::ElemId;

    #[test]
    fn dominating_has_m_equal_n() {
        let w = gnp(40, 0.1, 1);
        assert_eq!(w.instance.m(), 40);
        assert_eq!(w.instance.n(), 40);
    }

    #[test]
    fn every_vertex_dominates_itself() {
        let w = gnp(25, 0.05, 2);
        for v in 0..25u32 {
            assert!(w.instance.contains(SetId(v), ElemId(v)));
        }
    }

    #[test]
    fn graph_edges_are_symmetric() {
        let w = from_graph_edges(5, &[(0, 1), (2, 3)]);
        assert!(w.instance.contains(SetId(0), ElemId(1)));
        assert!(w.instance.contains(SetId(1), ElemId(0)));
        assert!(w.instance.contains(SetId(2), ElemId(3)));
        assert!(w.instance.contains(SetId(3), ElemId(2)));
        assert!(!w.instance.contains(SetId(0), ElemId(2)));
    }

    #[test]
    fn planted_hubs_dominate_everything() {
        let w = planted_hubs(200, 8, 50, 3);
        assert_eq!(w.opt, OptHint::UpperBound(8));
        // The hint implies a cover of size 8 exists: check by collecting
        // hub neighborhoods. We recover hubs as the sets of size > 1 noise
        // aside — instead, simply verify a greedy-style argument: the
        // instance is feasible and every element has degree >= 1 (its own
        // loop).
        for u in 0..200u32 {
            assert!(w.instance.elem_degree(ElemId(u)) >= 1);
        }
        // There must exist 8 sets covering all: the hubs. Find them by
        // checking that some choice of 8 sets covers the universe — here we
        // exploit construction: sets with the 8 largest sizes are the hubs
        // w.h.p. at this noise level.
        let mut sizes: Vec<(usize, u32)> = (0..200u32)
            .map(|s| (w.instance.set_size(SetId(s)), s))
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let mut covered = [false; 200];
        for &(_, s) in sizes.iter().take(8) {
            for &u in w.instance.set(SetId(s)) {
                covered[u.index()] = true;
            }
        }
        let cov = covered.iter().filter(|&&c| c).count();
        assert!(cov >= 195, "top-8 sets cover only {cov}/200");
    }

    #[test]
    fn gnp_extreme_probabilities() {
        let w0 = gnp(10, 0.0, 1);
        assert_eq!(w0.instance.num_edges(), 10); // only self-loops
        let w1 = gnp(10, 1.0, 1);
        assert_eq!(w1.instance.num_edges(), 10 + 10 * 9); // complete graph
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            gnp(30, 0.2, 7).instance.edge_vec(),
            gnp(30, 0.2, 7).instance.edge_vec()
        );
    }
}
