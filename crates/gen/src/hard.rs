//! Stress instances targeting specific algorithmic mechanisms.
//!
//! Theory lower bounds live in [`crate::lowerbound`]; this module holds
//! *mechanism traps* — instances engineered so a particular rule of a
//! particular algorithm is the binding constraint. They are used by the
//! ablation experiments and the robustness tests.

use rand::seq::SliceRandom;
use rand::RngExt;

use setcover_core::math::isqrt;
use setcover_core::rng::{derive_seed, seeded_rng};
use setcover_core::{InstanceBuilder, SetId};

use crate::{OptHint, Workload};

/// A trap for the KK-algorithm's level rule: all decoys have size exactly
/// `√n − 1`, one short of the level width, so their uncovered-degree
/// counters can *never* trigger an inclusion — only the `opt` planted
/// blocks (size `n/opt`, well above `√n`) are samplable. KK's output is
/// then governed purely by how fast the planted sets cross levels, making
/// the `2^i·√n/m` inclusion schedule the measured object.
pub fn kk_level_trap(n: usize, m: usize, opt: usize, seed: u64) -> Workload {
    assert!(opt >= 1 && m > opt);
    let decoy = isqrt(n).saturating_sub(1).max(1);
    assert!(n / opt > decoy, "planted blocks must exceed the trap size");
    let mut rng = seeded_rng(derive_seed(seed, 0x4b4b_5452)); // "KKTR"

    let mut elems: Vec<u32> = (0..n as u32).collect();
    elems.shuffle(&mut rng);
    let mut ids: Vec<u32> = (0..m as u32).collect();
    ids.shuffle(&mut rng);

    let block = n.div_ceil(opt);
    let mut b = InstanceBuilder::new(m, n);
    for (i, chunk) in elems.chunks(block).enumerate() {
        b.add_set_elems(ids[i], chunk.iter().copied());
    }
    for &sid in ids.iter().take(m).skip(opt) {
        for _ in 0..decoy {
            let u = rng.random_range(0..n as u32);
            b.add_edge(SetId(sid), u.into());
        }
    }
    Workload {
        label: format!("kk-level-trap(n={n},m={m},opt={opt},decoy={decoy})"),
        instance: b.build().expect("planted blocks guarantee feasibility"),
        opt: OptHint::Exact(opt),
    }
}

/// Degree-spike instances: `spikes` designated elements appear in *every*
/// set (degree `m`), the rest follow a planted structure. Stresses the
/// covered-element fast path of every solver and, specifically, Algorithm
/// 1's epoch-0 high-degree detection (degree `≥ 1.1·m/√n` is guaranteed
/// by construction for the spikes).
pub fn degree_spike(n: usize, m: usize, opt: usize, spikes: usize, seed: u64) -> Workload {
    assert!(spikes < n && opt >= 1 && m >= opt);
    let mut rng = seeded_rng(derive_seed(seed, 0x5350_494b)); // "SPIK"

    let mut elems: Vec<u32> = (0..n as u32).collect();
    elems.shuffle(&mut rng);
    let (spike_elems, rest) = elems.split_at(spikes);

    let block = rest.len().div_ceil(opt).max(1);
    let mut b = InstanceBuilder::new(m, n);
    // Planted blocks over the non-spike elements.
    for (i, chunk) in rest.chunks(block).enumerate() {
        b.add_set_elems(i as u32, chunk.iter().copied());
    }
    // Every set contains every spike element.
    for s in 0..m as u32 {
        for &u in spike_elems {
            b.add_edge(SetId(s), u.into());
        }
        // Decoys get a little random fill too.
        if s as usize >= opt {
            for _ in 0..4 {
                let u = rest[rng.random_range(0..rest.len())];
                b.add_edge(SetId(s), u.into());
            }
        }
    }
    Workload {
        label: format!("degree-spike(n={n},m={m},spikes={spikes})"),
        instance: b.build().expect("blocks + spikes cover everything"),
        // The planted blocks cover rest; any single set covers all spikes.
        opt: OptHint::UpperBound(opt.max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::ElemId;

    #[test]
    fn kk_trap_decoys_sit_below_level_width() {
        let w = kk_level_trap(400, 800, 5, 1);
        let inst = &w.instance;
        let width = isqrt(400); // 20
        let mut big = 0;
        for s in 0..inst.m() as u32 {
            let sz = inst.set_size(SetId(s));
            if sz >= width {
                big += 1;
                assert!(sz >= 400 / 5, "only planted blocks may reach the width");
            }
        }
        assert_eq!(big, 5);
        assert_eq!(w.opt, OptHint::Exact(5));
    }

    #[test]
    fn kk_trap_is_feasible_and_deterministic() {
        let a = kk_level_trap(100, 50, 4, 9);
        for u in 0..100u32 {
            assert!(a.instance.elem_degree(ElemId(u)) >= 1);
        }
        let b = kk_level_trap(100, 50, 4, 9);
        assert_eq!(a.instance.edge_vec(), b.instance.edge_vec());
    }

    #[test]
    fn degree_spike_spikes_have_degree_m() {
        let w = degree_spike(200, 60, 8, 3, 2);
        let inst = &w.instance;
        let mut full_degree = 0;
        for u in 0..inst.n() as u32 {
            if inst.elem_degree(ElemId(u)) == inst.m() {
                full_degree += 1;
            }
        }
        assert_eq!(full_degree, 3, "exactly the spikes have degree m");
    }

    #[test]
    fn degree_spike_is_feasible() {
        let w = degree_spike(120, 40, 6, 2, 3);
        for u in 0..w.instance.n() as u32 {
            assert!(w.instance.elem_degree(ElemId(u)) >= 1);
        }
        assert_eq!(w.opt, OptHint::UpperBound(6));
    }
}
