//! "Blog watch" coverage workloads.
//!
//! Saha and Getoor's multi-topic blog-watch application (paper §1.3
//! references [22]) motivates streaming coverage problems: `m` blogs
//! (sets) each cover some topics (elements); topics have skewed
//! popularity, and a few *aggregator* blogs cover many topics while a long
//! tail of niche blogs covers few. We model this with a planted layer of
//! aggregators (guaranteeing a small cover and feasibility) plus a heavy
//! tail of niche blogs whose topics are drawn from a popularity
//! distribution.

use rand::seq::SliceRandom;
use rand::RngExt;

use setcover_core::rng::{derive_seed, seeded_rng};
use setcover_core::{InstanceBuilder, SetId};

use crate::{OptHint, Workload};

/// Configuration for [`blog_watch`].
#[derive(Debug, Clone, Copy)]
pub struct BlogWatchConfig {
    /// Number of topics (universe size `n`).
    pub topics: usize,
    /// Number of blogs (sets `m`).
    pub blogs: usize,
    /// Number of aggregator blogs; together they cover all topics.
    pub aggregators: usize,
    /// Topics per niche blog.
    pub niche_topics: usize,
    /// Popularity skew for niche blog topic selection (Zipf exponent).
    pub skew: f64,
}

impl BlogWatchConfig {
    /// A reasonable default shape: ~1% aggregators, 5 topics per niche
    /// blog, moderate skew.
    pub fn default_shape(topics: usize, blogs: usize) -> Self {
        BlogWatchConfig {
            topics,
            blogs,
            aggregators: (blogs / 100).max(2).min(blogs),
            niche_topics: 5.min(topics),
            skew: 1.0,
        }
    }
}

/// Generate a blog-watch workload. Deterministic in `(config, seed)`.
pub fn blog_watch(config: &BlogWatchConfig, seed: u64) -> Workload {
    let BlogWatchConfig {
        topics,
        blogs,
        aggregators,
        niche_topics,
        skew,
    } = *config;
    assert!(aggregators >= 1 && aggregators <= blogs);
    assert!(niche_topics >= 1 && niche_topics <= topics);
    let mut rng = seeded_rng(derive_seed(seed, 0x424c_4f47)); // "BLOG"

    // Aggregators partition the topic space (cover of size `aggregators`).
    let mut topic_perm: Vec<u32> = (0..topics as u32).collect();
    topic_perm.shuffle(&mut rng);
    let mut blog_ids: Vec<u32> = (0..blogs as u32).collect();
    blog_ids.shuffle(&mut rng);

    let block = topics.div_ceil(aggregators);
    let mut b = InstanceBuilder::new(blogs, topics);
    for (a, chunk) in topic_perm.chunks(block).enumerate() {
        b.add_set_elems(blog_ids[a], chunk.iter().copied());
    }

    // Popularity weights over topics for niche blogs.
    let mut cum = Vec::with_capacity(topics);
    let mut total = 0.0f64;
    for r in 0..topics {
        total += 1.0 / ((r + 1) as f64).powf(skew);
        cum.push(total);
    }

    for &blog in blog_ids.iter().take(blogs).skip(aggregators) {
        for _ in 0..niche_topics {
            let x = rng.random::<f64>() * total;
            let rank = cum.partition_point(|&c| c < x).min(topics - 1);
            b.add_edge(SetId(blog), topic_perm[rank].into());
        }
    }

    Workload {
        label: format!("blog-watch(topics={topics},blogs={blogs},agg={aggregators})"),
        instance: b.build().expect("aggregators guarantee feasibility"),
        opt: OptHint::UpperBound(aggregators),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::ElemId;

    #[test]
    fn aggregators_guarantee_feasibility() {
        let w = blog_watch(&BlogWatchConfig::default_shape(500, 300), 1);
        for u in 0..w.instance.n() as u32 {
            assert!(w.instance.elem_degree(ElemId(u)) >= 1);
        }
        assert_eq!(w.opt, OptHint::UpperBound(3));
    }

    #[test]
    fn niche_blogs_are_small() {
        let cfg = BlogWatchConfig {
            topics: 200,
            blogs: 100,
            aggregators: 4,
            niche_topics: 3,
            skew: 1.2,
        };
        let w = blog_watch(&cfg, 2);
        let mut big = 0;
        for s in 0..100u32 {
            if w.instance.set_size(SetId(s)) > 3 {
                big += 1;
            }
        }
        assert!(
            big <= 4,
            "only aggregators may exceed niche size, got {big}"
        );
    }

    #[test]
    fn default_shape_is_sane() {
        let c = BlogWatchConfig::default_shape(1000, 5000);
        assert_eq!(c.aggregators, 50);
        assert_eq!(c.niche_topics, 5);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = BlogWatchConfig::default_shape(100, 60);
        assert_eq!(
            blog_watch(&cfg, 9).instance.edge_vec(),
            blog_watch(&cfg, 9).instance.edge_vec()
        );
        assert_ne!(
            blog_watch(&cfg, 9).instance.edge_vec(),
            blog_watch(&cfg, 10).instance.edge_vec()
        );
    }
}
