//! Web-scale crawl workloads: double power laws.
//!
//! The practical set-cover systems the paper cites (§1.3 — Cormode,
//! Karloff and Wirth's disk-based greedy; Stergiou and Tsioutsiouliklis'
//! "Set Cover at Web Scale") run on crawl-shaped data where *both*
//! marginals are heavy-tailed: set sizes follow a power law (a few huge
//! hosts, a long tail of small ones) and element frequencies follow a
//! power law (a few URLs/features appear everywhere). This generator
//! produces that double-Zipf shape with a planted feasibility spine, so
//! streaming experiments can be run on realistic-looking inputs with a
//! known cover bound.

use rand::seq::SliceRandom;
use rand::RngExt;

use setcover_core::rng::{derive_seed, seeded_rng};
use setcover_core::{InstanceBuilder, SetId};

use crate::{OptHint, Workload};

/// Configuration for [`web_crawl`].
#[derive(Debug, Clone, Copy)]
pub struct WebConfig {
    /// Universe size `n` (URLs / features).
    pub n: usize,
    /// Number of sets `m` (hosts / documents).
    pub m: usize,
    /// Set-size power-law exponent (sizes ∝ rank^(−beta)); larger = more
    /// skew. Typical crawls: ~1.
    pub beta: f64,
    /// Element-popularity power-law exponent. Typical: ~0.8–1.2.
    pub theta: f64,
    /// Largest set size (the head of the size distribution).
    pub max_set_size: usize,
    /// Number of spine sets that partition the universe (feasibility +
    /// a known cover of this size... the spine sets are the `opt` hint).
    pub spine: usize,
}

impl WebConfig {
    /// A crawl-ish default: head set of ~n/8, exponents ≈ 1.
    pub fn crawl(n: usize, m: usize) -> Self {
        WebConfig {
            n,
            m,
            beta: 1.0,
            theta: 1.0,
            max_set_size: (n / 8).max(4),
            spine: ((n as f64).sqrt() as usize).max(2),
        }
    }
}

/// Generate a double-power-law instance. Deterministic in `(config, seed)`.
pub fn web_crawl(config: &WebConfig, seed: u64) -> Workload {
    let WebConfig {
        n,
        m,
        beta,
        theta,
        max_set_size,
        spine,
    } = *config;
    assert!(spine >= 1 && spine <= m && spine <= n);
    assert!(max_set_size >= 1 && max_set_size <= n);
    let mut rng = seeded_rng(derive_seed(seed, 0x0057_4542)); // "WEB"

    // Element popularity CDF (rank -> weight), with random relabelling.
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for r in 0..n {
        total += 1.0 / ((r + 1) as f64).powf(theta);
        cum.push(total);
    }
    let mut label: Vec<u32> = (0..n as u32).collect();
    label.shuffle(&mut rng);

    let mut ids: Vec<u32> = (0..m as u32).collect();
    ids.shuffle(&mut rng);

    let mut b = InstanceBuilder::new(m, n);

    // Spine: `spine` sets partition the universe (feasibility + known
    // cover).
    let mut elems: Vec<u32> = (0..n as u32).collect();
    elems.shuffle(&mut rng);
    let block = n.div_ceil(spine);
    for (i, chunk) in elems.chunks(block).enumerate() {
        b.add_set_elems(ids[i], chunk.iter().copied());
    }

    // Tail: power-law sizes, power-law element draws.
    for (rank, &sid) in ids.iter().enumerate().skip(spine) {
        let size = ((max_set_size as f64 / ((rank - spine + 1) as f64).powf(beta)).ceil() as usize)
            .clamp(1, max_set_size);
        for _ in 0..size {
            let x = rng.random::<f64>() * total;
            let r = cum.partition_point(|&c| c < x).min(n - 1);
            b.add_edge(SetId(sid), label[r].into());
        }
    }

    Workload {
        label: format!("web-crawl(n={n},m={m},beta={beta},theta={theta})"),
        instance: b.build().expect("spine guarantees feasibility"),
        opt: OptHint::UpperBound(spine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setcover_core::ElemId;

    #[test]
    fn generates_feasible_instance() {
        let w = web_crawl(&WebConfig::crawl(500, 400), 1);
        for u in 0..w.instance.n() as u32 {
            assert!(w.instance.elem_degree(ElemId(u)) >= 1);
        }
        assert_eq!(w.opt, OptHint::UpperBound(22)); // √500 = 22
    }

    #[test]
    fn set_sizes_are_heavy_tailed() {
        let w = web_crawl(&WebConfig::crawl(1000, 800), 2);
        let mut sizes: Vec<usize> = (0..w.instance.m() as u32)
            .map(|s| w.instance.set_size(SetId(s)))
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        // Head much larger than median.
        let head = sizes[0];
        let median = sizes[sizes.len() / 2];
        assert!(
            head >= 10 * median.max(1),
            "no size skew: head {head}, median {median}"
        );
        // And a long tail of tiny sets.
        let tiny = sizes.iter().filter(|&&s| s <= 2).count();
        assert!(tiny >= w.instance.m() / 4, "tail too small: {tiny}");
    }

    #[test]
    fn element_popularity_is_heavy_tailed() {
        let w = web_crawl(&WebConfig::crawl(800, 1000), 3);
        let st = w.instance.stats();
        assert!(
            st.max_elem_degree as f64 >= 8.0 * st.avg_elem_degree,
            "no popularity skew: max {} vs avg {:.1}",
            st.max_elem_degree,
            st.avg_elem_degree
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = WebConfig::crawl(200, 150);
        assert_eq!(
            web_crawl(&cfg, 9).instance.edge_vec(),
            web_crawl(&cfg, 9).instance.edge_vec()
        );
        assert_ne!(
            web_crawl(&cfg, 9).instance.edge_vec(),
            web_crawl(&cfg, 10).instance.edge_vec()
        );
    }
}
