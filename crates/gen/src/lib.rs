//! # setcover-gen
//!
//! Workload and hard-instance generators for edge-arrival streaming Set
//! Cover experiments.
//!
//! All generators are deterministic given a seed and return a [`Workload`]:
//! the instance plus whatever is known about its optimum (planted covers
//! give exact optima; random workloads give bounds). Reference optima are
//! what the experiment harness divides by when reporting approximation
//! ratios, so their provenance matters and is carried in [`OptHint`].
//!
//! Generators:
//! * [`planted`] — instances with a planted optimum cover (the workhorse
//!   for approximation-ratio experiments; OPT is known by construction);
//! * [`uniform`] — Erdős–Rényi-style random bipartite instances;
//! * [`zipf`] — skewed (power-law) element degrees, the shape of real
//!   coverage data (URL/blog-topic workloads of [Saha–Getoor; Barlow et
//!   al.]);
//! * [`lowerbound`] — the Lemma 1 set family with small pairwise
//!   intersections and the Theorem 2 hard instances built from t-party Set
//!   Disjointness;
//! * [`dominating`] — Dominating Set instances (`m = n`), the special case
//!   that motivated the KK-algorithm [Khanna–Konrad ITCS'22];
//! * [`hard`] — mechanism traps (KK level trap, degree spikes) for
//!   ablations and robustness tests;
//! * [`coverage`] — max-coverage-style "blog watch" workloads;
//! * [`web`] — double power-law "web crawl" workloads (the shape of the
//!   practical systems in §1.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod dominating;
pub mod hard;
pub mod lowerbound;
pub mod planted;
pub mod uniform;
pub mod web;
pub mod zipf;

use setcover_core::SetCoverInstance;

/// What is known about the optimum cover size of a generated instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptHint {
    /// The exact optimum (by construction).
    Exact(usize),
    /// A cover of this size exists by construction, so `OPT ≤` this value.
    /// Ratios computed against it are lower bounds on the true achieved
    /// ratio; EXPERIMENTS.md states this wherever it is used.
    UpperBound(usize),
    /// Nothing is known; the harness falls back to the greedy cover size
    /// as a reference.
    Unknown,
}

impl OptHint {
    /// The reference value to divide by when computing ratios, if any.
    pub fn reference(&self) -> Option<usize> {
        match self {
            OptHint::Exact(k) | OptHint::UpperBound(k) => Some(*k),
            OptHint::Unknown => None,
        }
    }
}

/// A generated instance together with its optimum information and a
/// human-readable label for reports.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The instance.
    pub instance: SetCoverInstance,
    /// What is known about OPT.
    pub opt: OptHint,
    /// Short label, e.g. `planted(n=1024,m=65536,opt=32)`.
    pub label: String,
}

impl Workload {
    /// The reference optimum for ratio computation, falling back to 1.
    pub fn opt_reference(&self) -> usize {
        self.opt.reference().unwrap_or(1).max(1)
    }
}
